#include "load/churn.hpp"

#include <algorithm>
#include <cassert>

#include "sim/rng.hpp"

namespace ekbd::load {

using graph::ConflictGraph;
using sim::ProcessId;
using sim::Time;

std::string to_string(ChurnOp::Kind k) {
  switch (k) {
    case ChurnOp::Kind::kAddEdge: return "add_edge";
    case ChurnOp::Kind::kRemoveEdge: return "remove_edge";
    case ChurnOp::Kind::kRecolor: return "recolor";
  }
  return "?";
}

namespace {

bool in_window(const std::vector<CrashWindow>& windows, ProcessId p, Time at) {
  for (const CrashWindow& w : windows) {
    if (w.p != p) continue;
    const Time lo = w.crash_at - w.margin;
    const Time hi = w.recover_at < 0 ? -1 : w.recover_at + w.margin;
    if (at >= lo && (hi < 0 || at <= hi)) return true;
  }
  return false;
}

}  // namespace

ChurnPlan plan_churn(const ConflictGraph& graph, const graph::Coloring& colors,
                     const ChurnParams& params,
                     const std::vector<CrashWindow>& crash_windows,
                     std::uint64_t seed) {
  assert(colors.size() == graph.size());
  ChurnPlan plan;
  plan.final_graph = graph;
  plan.final_colors = colors;
  if (params.mutations == 0 || graph.size() < 2) return plan;
  assert(params.end >= params.start);

  ConflictGraph& g = plan.final_graph;
  graph::Coloring& c = plan.final_colors;
  const auto n = static_cast<std::int64_t>(g.size());
  sim::Rng rng(seed ^ 0xc0a1'e5ce'0000'0000ULL);

  // Op times: uniform draws over the window, then sorted — the plan is a
  // schedule, and applying mutations in time order is what keeps the
  // private copy in lockstep with the run.
  std::vector<Time> times(params.mutations);
  for (Time& t : times) t = rng.uniform_int(params.start, params.end);
  std::sort(times.begin(), times.end());

  for (const Time at : times) {
    // Re-draw until a valid mutation is found; give up after a bounded
    // number of attempts (dense graph with no removable edge, or every
    // candidate endpoint inside a crash window) rather than spin.
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const bool add = rng.uniform_real(0.0, 1.0) < params.add_fraction;
      const auto a = static_cast<ProcessId>(rng.uniform_int(0, n - 1));
      const auto b = static_cast<ProcessId>(rng.uniform_int(0, n - 1));
      if (a == b) continue;
      if (in_window(crash_windows, a, at) || in_window(crash_windows, b, at)) continue;
      if (add) {
        if (g.adjacent(a, b)) continue;
        g.add_edge(a, b);
        // Repair first in the plan order: the repaired color is chosen
        // against the post-add neighborhood, so emitting kRecolor before
        // kAddEdge keeps the live coloring proper at every instant.
        const ProcessId moved = graph::repair_after_edge_add(g, c, a, b);
        if (moved != graph::kNoRecolor) {
          plan.ops.push_back({at, ChurnOp::Kind::kRecolor, moved, 0,
                              c[static_cast<std::size_t>(moved)]});
          ++plan.recolors;
        }
        plan.ops.push_back({at, ChurnOp::Kind::kAddEdge, a, b, 0});
        ++plan.adds;
      } else {
        if (!g.adjacent(a, b)) continue;
        if (params.keep_min_degree_one && (g.degree(a) <= 1 || g.degree(b) <= 1)) continue;
        g.remove_edge(a, b);
        plan.ops.push_back({at, ChurnOp::Kind::kRemoveEdge, a, b, 0});
        ++plan.removes;
        // Freed colors: let both endpoints slide down if the removal
        // opened a lower slot, so the palette shrinks back (§ coloring
        // repair — touches only the endpoint itself).
        for (const ProcessId v : {a, b}) {
          if (graph::lower_color(g, c, v)) {
            plan.ops.push_back({at, ChurnOp::Kind::kRecolor, v, 0,
                                c[static_cast<std::size_t>(v)]});
            ++plan.recolors;
          }
        }
      }
      placed = true;
    }
  }
  assert(graph::is_proper(g, c));
  return plan;
}

}  // namespace ekbd::load
