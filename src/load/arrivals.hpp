/// \file arrivals.hpp
/// Open-loop arrival processes for the workload harness.
///
/// The dining harness is *closed-loop*: a process becomes hungry only
/// after it finished eating and thought for a while, so the offered load
/// can never exceed the service capacity and overload is unobservable.
/// Daemon-as-a-service deployments are the opposite: requests arrive on
/// their own clock, regardless of whether earlier sessions completed.
///
/// An `ArrivalProcess` is a seed-deterministic stream of inter-arrival
/// gaps. Three models:
///
///  * **kPoisson** — exponential gaps with the configured mean rate; the
///    memoryless baseline every queueing result is stated against.
///  * **kUniform** — gaps uniform in [gap_lo, gap_hi]; bounded-jitter
///    periodic load (rate = 2 / (gap_lo + gap_hi)).
///  * **kBursty** — two-phase modulated Poisson: `burst_len` ticks at
///    `rate × burst_factor`, then `idle_len` ticks at `rate ÷
///    burst_factor`, repeating. Overload appears in the bursts while the
///    long-run average stays near `rate` — the regime that separates an
///    eventually-k-bounded daemon from a merely fair one.
///
/// A spec is realized either **per actor** (each process owns an
/// independent stream at `rate`) or **globally** (one stream at `rate`
/// whose arrivals are dealt to uniformly random actors). On the rt
/// engine only per-actor streams exist — a global stream would need
/// cross-actor injection from outside the target's dispatch claim — so
/// `scenario::LoadScenario` realizes a global spec there as n per-actor
/// streams at rate/n (exact for Poisson by superposition, approximate
/// for the other models; see docs/LOADGEN.md).
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ekbd::load {

enum class ArrivalKind {
  kPoisson,  ///< exponential gaps (memoryless)
  kUniform,  ///< gaps uniform in [gap_lo, gap_hi]
  kBursty,   ///< two-phase modulated Poisson (burst / idle)
};

[[nodiscard]] std::string to_string(ArrivalKind k);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;

  /// Mean arrivals per 1000 ticks (per stream). Stated per-mille rather
  /// than per-tick so configs read as integers ("rate 5" ≈ one arrival
  /// every 200 ticks) while still admitting sub-1-per-tick loads.
  double rate_per_kilotick = 5.0;

  /// One independent stream per actor (true) or a single global stream
  /// dealt to random actors (false).
  bool per_actor = true;

  // kUniform only
  sim::Time gap_lo = 100;
  sim::Time gap_hi = 300;

  // kBursty only
  sim::Time burst_len = 2'000;   ///< ticks of elevated rate
  sim::Time idle_len = 8'000;    ///< ticks of depressed rate
  double burst_factor = 8.0;     ///< burst rate = rate × this, idle = rate ÷ this

  /// Mean inter-arrival gap in ticks implied by `rate_per_kilotick`.
  [[nodiscard]] double mean_gap() const { return 1000.0 / rate_per_kilotick; }

  /// Same spec with the rate divided by `n` (global → per-actor split).
  [[nodiscard]] ArrivalSpec split(std::size_t n) const;
};

/// One realized arrival stream. Deterministic in (spec, rng stream):
/// equal seeds replay equal arrival schedules, on either engine.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalSpec spec) : spec_(spec) {}

  /// Absolute time of the next arrival strictly after `now`. Advances the
  /// bursty phase bookkeeping; call with non-decreasing `now`.
  [[nodiscard]] sim::Time next_after(sim::Time now, sim::Rng& rng);

  [[nodiscard]] const ArrivalSpec& spec() const { return spec_; }

 private:
  /// Instantaneous rate (arrivals per tick) at absolute time `t`.
  [[nodiscard]] double rate_at(sim::Time t) const;

  ArrivalSpec spec_;
};

}  // namespace ekbd::load
