#include "load/controller.hpp"

#include <algorithm>
#include <cstdio>

namespace ekbd::load {

void OverloadDetector::observe(const Sample& s) {
  ++total_samples_;
  high_water_ = std::max(high_water_, s.backlog);
  window_.push_back(s);
  if (window_.size() > params_.window + 1) window_.erase(window_.begin());
  // Rates over the window: deltas between the oldest and newest
  // cumulative counts. window+1 samples span exactly `window` intervals.
  if (window_.size() < params_.window + 1) return;
  const Sample& oldest = window_.front();
  const Sample& newest = window_.back();
  const std::uint64_t d_offered = newest.offered - oldest.offered;
  const std::uint64_t d_completed = newest.completed - oldest.completed;
  ratio_ = d_offered == 0 ? 1.0
                          : static_cast<double>(d_completed) / static_cast<double>(d_offered);
  overloaded_ = d_offered >= params_.min_offered && ratio_ < params_.lag_ratio &&
                newest.backlog >= params_.backlog_watermark;
  if (overloaded_) ++overloaded_samples_;
}

std::string OverloadDetector::to_json() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"overloaded\":%s,\"overloaded_samples\":%zu,\"samples\":%zu,"
                "\"backlog_high_water\":%llu,\"completion_ratio\":%.4f}",
                overloaded_ ? "true" : "false", overloaded_samples_, total_samples_,
                static_cast<unsigned long long>(high_water_), ratio_);
  return buf;
}

}  // namespace ekbd::load
