#include "load/arrivals.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ekbd::load {

std::string to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kBursty: return "bursty";
  }
  return "?";
}

ArrivalSpec ArrivalSpec::split(std::size_t n) const {
  assert(n > 0);
  ArrivalSpec out = *this;
  out.rate_per_kilotick = rate_per_kilotick / static_cast<double>(n);
  out.per_actor = true;
  // kUniform realizes rate through the gap bounds, not the rate field.
  out.gap_lo = gap_lo * static_cast<sim::Time>(n);
  out.gap_hi = gap_hi * static_cast<sim::Time>(n);
  return out;
}

double ArrivalProcess::rate_at(sim::Time t) const {
  const double base = spec_.rate_per_kilotick / 1000.0;
  if (spec_.kind != ArrivalKind::kBursty) return base;
  const sim::Time period = spec_.burst_len + spec_.idle_len;
  assert(period > 0);
  const sim::Time phase = t % period;
  return phase < spec_.burst_len ? base * spec_.burst_factor
                                 : base / spec_.burst_factor;
}

sim::Time ArrivalProcess::next_after(sim::Time now, sim::Rng& rng) {
  switch (spec_.kind) {
    case ArrivalKind::kUniform: {
      const sim::Time gap = rng.uniform_int(spec_.gap_lo, spec_.gap_hi);
      return now + std::max<sim::Time>(1, gap);
    }
    case ArrivalKind::kPoisson: {
      const sim::Time gap = rng.exponential(spec_.mean_gap());
      return now + std::max<sim::Time>(1, gap);
    }
    case ArrivalKind::kBursty: {
      // Piecewise-constant-rate Poisson: draw an exponential gap at the
      // current phase's rate; if it crosses the phase boundary, restart
      // the draw from the boundary at the next phase's rate (memoryless,
      // so this is the exact thinning-free construction).
      sim::Time t = now;
      const sim::Time period = spec_.burst_len + spec_.idle_len;
      for (;;) {
        const double rate = rate_at(t);
        const sim::Time gap = rng.exponential(1.0 / rate);
        const sim::Time phase = t % period;
        const sim::Time boundary =
            t - phase + (phase < spec_.burst_len ? spec_.burst_len : period);
        if (t + gap < boundary) return std::max(now + 1, t + gap);
        t = boundary;
      }
    }
  }
  return now + 1;  // unreachable
}

}  // namespace ekbd::load
