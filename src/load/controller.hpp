/// \file controller.hpp
/// Open-loop load bookkeeping and overload detection.
///
/// Engine-neutral: the sim engine drives this from simulator callbacks,
/// the rt engine from dispatch-claim callbacks (see
/// scenario/load_scenario.cpp for both wirings). Two pieces:
///
///  * **LoadBook** — per-actor backlog and the offered/completed
///    counters. An *arrival* for actor p either starts a hungry session
///    immediately (p was thinking) or queues in p's backlog; every
///    session completion (stop-eating) is a drain opportunity that moves
///    one backlog slot into the next hungry session. Offered counts
///    every arrival the instant it arrives — never gated on service —
///    which is what makes the load open-loop.
///  * **OverloadDetector** — fed periodic samples of the cumulative
///    counters, it maintains a sliding window of per-interval offered /
///    completed rates plus the backlog watermark, and flags overload
///    when completions persistently lag arrivals while queues stand
///    above the watermark. Both conditions are required: a transient
///    burst backlogs briefly without lagging for a whole window, and a
///    near-idle run can "lag" on rounding noise with empty queues.
///
/// Thread-safety: LoadBook is shared across rt dispatch claims, so its
/// counters are relaxed atomics (statistics, no ordering needed) and
/// each backlog slot is only touched inside its actor's claim. The
/// OverloadDetector is single-threaded — feed it from one sampling loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ekbd::load {

class LoadBook {
 public:
  explicit LoadBook(std::size_t n)
      : n_(n), backlog_(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {
    for (std::size_t i = 0; i < n_; ++i) backlog_[i].store(0, std::memory_order_relaxed);
  }

  /// An arrival for `p`. Returns true if the caller should start a
  /// hungry session now; false means it was backlogged. `idle` = p is
  /// thinking and able to go hungry.
  bool on_arrival(std::size_t p, bool idle) {
    offered_.fetch_add(1, std::memory_order_relaxed);
    if (idle) return true;
    const std::uint64_t depth = backlog_[p].fetch_add(1, std::memory_order_relaxed) + 1;
    bump_max(depth);
    return false;
  }

  /// An arrival for a crashed actor: counted offered, then dropped (a
  /// dead daemon sheds its queue; the rejoin protocol restores forks,
  /// not requests).
  void on_arrival_dropped() {
    offered_.fetch_add(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// A completed session for `p`.
  void on_complete() { completed_.fetch_add(1, std::memory_order_relaxed); }

  /// Drain opportunity for `p` (it is thinking right now): returns true
  /// if a backlogged arrival was claimed and the caller should start the
  /// next hungry session. Call only from p's engine context.
  bool try_drain(std::size_t p) {
    const std::uint64_t depth = backlog_[p].load(std::memory_order_relaxed);
    if (depth == 0) return false;
    backlog_[p].store(depth - 1, std::memory_order_relaxed);
    return true;
  }

  /// Crash of `p`: its queue dies with it.
  void on_crash(std::size_t p) {
    const std::uint64_t depth = backlog_[p].exchange(0, std::memory_order_relaxed);
    dropped_.fetch_add(depth, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t backlog(std::size_t p) const {
    return backlog_[p].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_backlog() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n_; ++i) sum += backlog_[i].load(std::memory_order_relaxed);
    return sum;
  }
  /// Deepest single-actor queue ever observed.
  [[nodiscard]] std::uint64_t max_backlog() const {
    return max_backlog_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  void bump_max(std::uint64_t depth) {
    std::uint64_t cur = max_backlog_.load(std::memory_order_relaxed);
    while (depth > cur &&
           !max_backlog_.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
    }
  }

  std::size_t n_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> backlog_;
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> max_backlog_{0};
};

struct OverloadParams {
  /// Sliding window length, in samples.
  std::size_t window = 8;
  /// Overload requires completed-rate < `lag_ratio` × offered-rate over
  /// the whole window...
  double lag_ratio = 0.9;
  /// ...and total backlog at or above this watermark at the latest
  /// sample.
  std::uint64_t backlog_watermark = 4;
  /// Ignore windows with fewer offered arrivals than this (rate noise).
  std::uint64_t min_offered = 8;
};

class OverloadDetector {
 public:
  explicit OverloadDetector(OverloadParams params = {}) : params_(params) {}

  struct Sample {
    sim::Time at = 0;
    std::uint64_t offered = 0;    ///< cumulative
    std::uint64_t completed = 0;  ///< cumulative
    std::uint64_t backlog = 0;    ///< instantaneous total
  };

  /// Feed one cumulative sample; call with non-decreasing `at`.
  void observe(const Sample& s);

  /// Overloaded as of the latest sample (needs a full window).
  [[nodiscard]] bool overloaded() const { return overloaded_; }
  /// Samples during which `overloaded()` held.
  [[nodiscard]] std::size_t overloaded_samples() const { return overloaded_samples_; }
  [[nodiscard]] std::size_t samples() const { return total_samples_; }
  /// Highest total backlog ever observed.
  [[nodiscard]] std::uint64_t backlog_high_water() const { return high_water_; }
  /// Completed ÷ offered over the latest full window (1.0 before that).
  [[nodiscard]] double window_completion_ratio() const { return ratio_; }

  [[nodiscard]] const OverloadParams& params() const { return params_; }

  /// `{"overloaded":..,"overloaded_samples":..,"samples":..,
  ///   "backlog_high_water":..,"completion_ratio":..}`
  [[nodiscard]] std::string to_json() const;

 private:
  OverloadParams params_;
  std::vector<Sample> window_;  // oldest first, bounded by params_.window + 1
  std::size_t total_samples_ = 0;
  std::size_t overloaded_samples_ = 0;
  std::uint64_t high_water_ = 0;
  double ratio_ = 1.0;
  bool overloaded_ = false;
};

}  // namespace ekbd::load
