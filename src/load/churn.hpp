/// \file churn.hpp
/// Churn plans: scripted dynamic-conflict-graph mutations.
///
/// A churn plan is a seed-deterministic schedule of edge additions,
/// edge removals and recolorings to apply to a *live* run. The planner
/// works against a private copy of the conflict graph and coloring, so
/// every op in the emitted plan is valid by construction at its point in
/// the sequence (no duplicate adds, no removals of absent edges) and the
/// coloring stays proper after every step **without any global
/// recoloring**:
///
///  * an edge addition whose endpoints share a color is preceded by one
///    `kRecolor` op produced by `graph::repair_after_edge_add`
///    — at most one vertex, chosen inside the affected neighborhood;
///  * an edge removal is followed by `graph::lower_color`
///    probes on both endpoints, so the palette can shrink back.
///
/// The recolor op comes *before* its edge add: the repaired color is
/// free in the vertex's new neighborhood (endpoint included), so the
/// coloring is proper at every intermediate instant, not just between
/// ops.
///
/// Crash windows: endpoints that are crashed (or about to crash /
/// freshly recovered) at an op's time are skipped — the edge handshake
/// (`core::WaitFreeDiner::request_add_edge`) is silently lost when the
/// acceptor is dead, which would desynchronize the planner's graph from
/// the run's. `CrashWindow::margin` pads the exclusion on both sides to
/// cover handshake latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "sim/time.hpp"

namespace ekbd::load {

struct ChurnOp {
  enum class Kind : std::uint8_t {
    kAddEdge,     ///< initiator `a` proposes edge {a, b}
    kRemoveEdge,  ///< initiator `a` drops edge {a, b}
    kRecolor,     ///< actor `a` moves to color `color` (b unused)
  };
  sim::Time at = 0;
  Kind kind = Kind::kAddEdge;
  sim::ProcessId a = 0;
  sim::ProcessId b = 0;
  int color = 0;  ///< kRecolor only
};

[[nodiscard]] std::string to_string(ChurnOp::Kind k);

struct CrashWindow {
  sim::ProcessId p = 0;
  sim::Time crash_at = 0;
  sim::Time recover_at = -1;  ///< -1 = never recovers
  sim::Time margin = 0;       ///< exclusion padding on both sides
};

struct ChurnParams {
  std::size_t mutations = 0;       ///< edge add/remove count (0 = no churn)
  sim::Time start = 0;             ///< first op no earlier than this
  sim::Time end = 0;               ///< last op no later than this
  double add_fraction = 0.5;       ///< P(next mutation is an add)
  /// Never disconnect the graph: removals that would cut the last edge
  /// of either endpoint are re-drawn. Keeps every actor in the dining
  /// community (an isolated actor trivially never waits, which would
  /// dilute the latency percentiles the load harness exists to measure).
  bool keep_min_degree_one = true;
};

struct ChurnPlan {
  std::vector<ChurnOp> ops;     ///< sorted by `at`
  std::size_t adds = 0;         ///< kAddEdge count
  std::size_t removes = 0;      ///< kRemoveEdge count
  std::size_t recolors = 0;     ///< kRecolor count
  /// Colors and graph after the whole plan (the planner's private copy)
  /// — what the run should converge to if every op lands.
  graph::ConflictGraph final_graph{0};
  graph::Coloring final_colors;

  [[nodiscard]] std::size_t mutations() const { return adds + removes; }
};

/// Build a plan of `params.mutations` edge mutations (plus the recolor
/// ops they induce) against `graph`/`colors`, spread uniformly over
/// [params.start, params.end], avoiding endpoints inside any of
/// `crash_windows`. Deterministic in (inputs, seed).
[[nodiscard]] ChurnPlan plan_churn(const graph::ConflictGraph& graph,
                                   const graph::Coloring& colors,
                                   const ChurnParams& params,
                                   const std::vector<CrashWindow>& crash_windows,
                                   std::uint64_t seed);

}  // namespace ekbd::load
