#include "daemon/fault_injector.hpp"

namespace ekbd::daemon {

using ekbd::sim::ProcessId;
using ekbd::sim::Time;

FaultInjector::FaultInjector(ekbd::sim::Simulator& sim, ekbd::stab::StateTable& table,
                             const ekbd::stab::Protocol& protocol,
                             const ekbd::graph::ConflictGraph& graph, std::uint64_t seed)
    : sim_(sim),
      table_(table),
      protocol_(protocol),
      graph_(graph),
      rng_(seed) {}

void FaultInjector::schedule_burst(Time at, std::size_t registers) {
  sim_.schedule(at, [this, registers] { burst(registers); });
}

void FaultInjector::schedule_train(Time first, Time gap, std::size_t count,
                                   std::size_t registers_per_burst) {
  for (std::size_t i = 0; i < count; ++i) {
    schedule_burst(first + gap * static_cast<Time>(i), registers_per_burst);
  }
}

void FaultInjector::burst(std::size_t registers) {
  const auto live = sim_.live_processes();
  if (live.empty()) return;
  const std::int64_t hi = protocol_.corruption_hi(graph_);
  for (std::size_t i = 0; i < registers; ++i) {
    const ProcessId p = live[rng_.index(live.size())];
    const auto r = rng_.index(table_.regs_per_process());
    table_.corrupt(p, r, rng_.uniform_int(0, hi));
    ++applied_;
  }
  last_burst_ = sim_.now();
}

}  // namespace ekbd::daemon
