/// \file fault_injector.hpp
/// Transient-fault injection for the stabilization experiments.
///
/// Self-stabilization's promise is recovery from *any* configuration;
/// the injector exercises it by overwriting randomly chosen registers with
/// random values at scheduled times — one-off bursts, or a finite train of
/// bursts (stabilization only requires convergence after the faults stop).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "stab/protocol.hpp"

namespace ekbd::daemon {

class FaultInjector {
 public:
  /// \param seed explicit seed for the corruption stream. Required: the
  ///   injector must NOT derive randomness from the simulator's master Rng
  ///   (forking it consumes a draw, perturbing every later delay in the
  ///   run — constructing an injector would change the schedule).
  FaultInjector(ekbd::sim::Simulator& sim, ekbd::stab::StateTable& table,
                const ekbd::stab::Protocol& protocol,
                const ekbd::graph::ConflictGraph& graph, std::uint64_t seed);

  /// At time `at`, corrupt `registers` randomly chosen (process, register)
  /// slots of live processes with random in-domain values.
  void schedule_burst(ekbd::sim::Time at, std::size_t registers);

  /// Schedule `count` bursts, `gap` apart, starting at `first`.
  void schedule_train(ekbd::sim::Time first, ekbd::sim::Time gap, std::size_t count,
                      std::size_t registers_per_burst);

  [[nodiscard]] std::uint64_t corruptions_applied() const { return applied_; }
  [[nodiscard]] ekbd::sim::Time last_burst_time() const { return last_burst_; }

 private:
  void burst(std::size_t registers);

  ekbd::sim::Simulator& sim_;
  ekbd::stab::StateTable& table_;
  const ekbd::stab::Protocol& protocol_;
  const ekbd::graph::ConflictGraph& graph_;
  ekbd::sim::Rng rng_;
  std::uint64_t applied_ = 0;
  ekbd::sim::Time last_burst_ = 0;
};

}  // namespace ekbd::daemon
