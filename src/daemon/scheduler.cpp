#include "daemon/scheduler.hpp"

namespace ekbd::daemon {

using ekbd::sim::ProcessId;
using ekbd::sim::Time;

DaemonScheduler::DaemonScheduler(ekbd::dining::Harness& harness,
                                 const ekbd::stab::Protocol& protocol,
                                 ekbd::stab::StateTable& table, Options options)
    : harness_(harness),
      protocol_(protocol),
      table_(table),
      options_(options),
      rng_(harness.simulator().rng().fork(0xDAE4)) {
  harness_.set_eat_hook([this](ProcessId p) { on_eat(p); });
}

std::vector<bool> DaemonScheduler::live_mask() const {
  const auto& sim = harness_.simulator();
  std::vector<bool> live(sim.num_processes(), true);
  for (std::size_t p = 0; p < live.size(); ++p) {
    live[p] = !sim.crashed(static_cast<ProcessId>(p));
  }
  return live;
}

void DaemonScheduler::on_eat(ProcessId p) {
  const auto& g = harness_.graph();

  // A ◇WX scheduling mistake: a neighbor is eating at the same instant.
  bool violation = false;
  for (ProcessId q : g.neighbors(p)) {
    const ekbd::dining::Diner* dq = harness_.diner(q);
    if (dq != nullptr && dq->eating() && !harness_.simulator().crashed(q)) {
      violation = true;
      break;
    }
  }

  if (protocol_.enabled(p, table_, g)) {
    protocol_.step(p, table_, g);
    ++steps_;
  } else {
    ++idle_;
  }

  if (violation) {
    ++violations_;
    // Sharing violation: the overlapping critical sections may have read
    // torn state — model the worst case as a transient fault on p.
    if (rng_.chance(options_.violation_corruption_prob)) {
      const std::int64_t hi = protocol_.corruption_hi(g);
      for (std::size_t r = 0; r < table_.regs_per_process(); ++r) {
        table_.corrupt(p, r, rng_.uniform_int(0, hi));
      }
      ++corruptions_;
    }
  }

  if (!protocol_.legitimate_restricted(table_, g, live_mask())) {
    last_illegitimate_ = harness_.simulator().now();
  }
}

bool DaemonScheduler::converged() const {
  return protocol_.legitimate_restricted(table_, harness_.graph(), live_mask());
}

}  // namespace ekbd::daemon
