/// \file critical_section.hpp
/// Work-queue facade: the daemon as a library API.
///
/// `DaemonScheduler` (scheduler.hpp) is specialized to shared-variable
/// stabilizing protocols; this facade exposes the scheduling core the way
/// a downstream user would want it: *submit arbitrary work for process p;
/// it runs inside p's next critical section*, with the dining layer
/// guaranteeing that no conflicting (conflict-graph-adjacent) work runs
/// concurrently — eventually (◇WX), and wait-free under crashes when the
/// underlying diners use ◇P₁.
///
/// Hunger becomes demand-driven: processes stay thinking until work is
/// queued, go hungry to acquire their section, execute up to
/// `max_per_section` items, and re-enter the queue if work remains. With
/// no work anywhere, the dining layer is silent (and with an on-demand
/// detector, the whole stack is).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dining/harness.hpp"

namespace ekbd::daemon {

class CriticalSectionScheduler {
 public:
  /// Work item; runs at the moment `p` starts eating (inside the section).
  using Work = std::function<void(ekbd::sim::ProcessId p)>;

  struct Options {
    /// Work items executed per acquired section (daemons schedule
    /// processes, not unbounded batches; 1 mirrors the daemon model).
    std::size_t max_per_section = 1;
  };

  /// Takes over the harness's eat/exit hooks and suppresses its automatic
  /// hunger cycle (every process is set think-forever; the facade makes
  /// processes hungry exactly when they have work).
  CriticalSectionScheduler(ekbd::dining::Harness& harness, Options options);
  explicit CriticalSectionScheduler(ekbd::dining::Harness& harness)
      : CriticalSectionScheduler(harness, Options{}) {}

  /// Enqueue work for `p`. Ignored (returns false) if `p` has crashed.
  bool submit(ekbd::sim::ProcessId p, Work work);

  [[nodiscard]] std::size_t pending(ekbd::sim::ProcessId p) const {
    return queues_[static_cast<std::size_t>(p)].size();
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::uint64_t sections_acquired() const { return sections_; }

  /// True when no work is queued anywhere (dead processes' leftovers are
  /// ignored — they will never run).
  [[nodiscard]] bool drained() const;

 private:
  void on_eat(ekbd::sim::ProcessId p);
  void on_exit(ekbd::sim::ProcessId p);
  void wake(ekbd::sim::ProcessId p);

  ekbd::dining::Harness& harness_;
  Options options_;
  std::vector<std::deque<Work>> queues_;
  std::uint64_t executed_ = 0;
  std::uint64_t sections_ = 0;
};

}  // namespace ekbd::daemon
