/// \file scheduler.hpp
/// The distributed daemon: a dining algorithm scheduling a self-stabilizing
/// protocol (the paper's motivating application, §1).
///
/// Every diner represents one protocol process. Whenever a diner starts
/// eating, the daemon executes one enabled action of the protocol on that
/// process's registers — the mutual exclusion of dining guarantees no
/// conflicting (neighboring) action runs concurrently... *except* during a
/// ◇WX scheduling mistake. Mistakes are modeled the way the paper argues
/// they should be: a step that overlaps with an eating neighbor is a
/// sharing violation and may corrupt the stepping process's registers —
/// "at worst a transient fault on the stabilization layer". A wait-free
/// daemon makes finitely many such mistakes and keeps scheduling every
/// correct process forever, so the protocol still converges; a non-wait-
/// free daemon starves processes after a crash and convergence is lost.
#pragma once

#include <cstdint>
#include <vector>

#include "dining/harness.hpp"
#include "stab/protocol.hpp"

namespace ekbd::daemon {

class DaemonScheduler {
 public:
  struct Options {
    /// Probability that a step overlapping an eating neighbor corrupts
    /// this process's registers (the transient-fault model for mistakes).
    double violation_corruption_prob = 1.0;
  };

  /// Wires itself into `harness`'s eat hook. The protocol and table must
  /// outlive the scheduler. Registers are randomized by the caller (or a
  /// FaultInjector) to model the arbitrary initial configuration.
  DaemonScheduler(ekbd::dining::Harness& harness, const ekbd::stab::Protocol& protocol,
                  ekbd::stab::StateTable& table, Options options);

  DaemonScheduler(ekbd::dining::Harness& harness, const ekbd::stab::Protocol& protocol,
                  ekbd::stab::StateTable& table)
      : DaemonScheduler(harness, protocol, table, Options{}) {}

  // -- results ----------------------------------------------------------

  /// Protocol steps executed (eating sessions with an enabled guard).
  [[nodiscard]] std::uint64_t steps_executed() const { return steps_; }

  /// Eating sessions where no guard was enabled (still counted as
  /// scheduled — daemons select processes, not actions).
  [[nodiscard]] std::uint64_t idle_schedules() const { return idle_; }

  /// Scheduling mistakes observed: steps taken while a neighbor was
  /// eating simultaneously.
  [[nodiscard]] std::uint64_t sharing_violations() const { return violations_; }

  /// Register corruptions caused by sharing violations.
  [[nodiscard]] std::uint64_t violation_corruptions() const { return corruptions_; }

  /// Is the protocol state legitimate *for the live processes* right now?
  [[nodiscard]] bool converged() const;

  /// Latest time the live-restricted legitimacy predicate was observed
  /// false->anything (i.e., the last time the system was seen illegitimate
  /// after a step); 0 if never illegitimate. The convergence time reported
  /// by E7.
  [[nodiscard]] ekbd::sim::Time last_illegitimate() const { return last_illegitimate_; }

 private:
  void on_eat(ekbd::sim::ProcessId p);
  [[nodiscard]] std::vector<bool> live_mask() const;

  ekbd::dining::Harness& harness_;
  const ekbd::stab::Protocol& protocol_;
  ekbd::stab::StateTable& table_;
  Options options_;
  ekbd::sim::Rng rng_;
  std::vector<bool> eating_now_;
  std::uint64_t steps_ = 0;
  std::uint64_t idle_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t corruptions_ = 0;
  ekbd::sim::Time last_illegitimate_ = 0;
};

}  // namespace ekbd::daemon
