#include "daemon/critical_section.hpp"

namespace ekbd::daemon {

using ekbd::sim::ProcessId;

CriticalSectionScheduler::CriticalSectionScheduler(ekbd::dining::Harness& harness,
                                                   Options options)
    : harness_(harness),
      options_(options),
      queues_(harness.simulator().num_processes()) {
  for (std::size_t p = 0; p < queues_.size(); ++p) {
    harness_.set_think_forever(static_cast<ProcessId>(p), true);
  }
  harness_.set_eat_hook([this](ProcessId p) { on_eat(p); });
  harness_.set_exit_hook([this](ProcessId p) { on_exit(p); });
}

bool CriticalSectionScheduler::submit(ProcessId p, Work work) {
  auto& sim = harness_.simulator();
  if (sim.crashed(p)) return false;
  queues_[static_cast<std::size_t>(p)].push_back(std::move(work));
  wake(p);
  return true;
}

void CriticalSectionScheduler::wake(ProcessId p) {
  // Request the critical section if the process is idle. Deferred by one
  // tick so a submit() from inside a dining callback never re-enters the
  // diner's state machine mid-action.
  auto& sim = harness_.simulator();
  sim.schedule_in(1, [this, p] {
    auto& s = harness_.simulator();
    if (s.crashed(p)) return;
    ekbd::dining::Diner* d = harness_.diner(p);
    if (d != nullptr && d->thinking() && !queues_[static_cast<std::size_t>(p)].empty()) {
      d->become_hungry();
    }
  });
}

void CriticalSectionScheduler::on_eat(ProcessId p) {
  ++sections_;
  auto& queue = queues_[static_cast<std::size_t>(p)];
  for (std::size_t i = 0; i < options_.max_per_section && !queue.empty(); ++i) {
    Work work = std::move(queue.front());
    queue.pop_front();
    work(p);
    ++executed_;
  }
}

void CriticalSectionScheduler::on_exit(ProcessId p) {
  if (!queues_[static_cast<std::size_t>(p)].empty()) wake(p);
}

bool CriticalSectionScheduler::drained() const {
  const auto& sim = harness_.simulator();
  for (std::size_t p = 0; p < queues_.size(); ++p) {
    if (!queues_[p].empty() && !sim.crashed(static_cast<ProcessId>(p))) return false;
  }
  return true;
}

}  // namespace ekbd::daemon
