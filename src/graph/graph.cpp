#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

namespace ekbd::graph {

ConflictGraph::ConflictGraph(std::size_t n) : adj_(n) {}

void ConflictGraph::add_edge(ProcessId a, ProcessId b) {
  assert(a >= 0 && static_cast<std::size_t>(a) < adj_.size());
  assert(b >= 0 && static_cast<std::size_t>(b) < adj_.size());
  assert(a != b && "self-loops are not conflicts");
  if (adjacent(a, b)) return;
  auto& na = adj_[static_cast<std::size_t>(a)];
  auto& nb = adj_[static_cast<std::size_t>(b)];
  na.insert(std::lower_bound(na.begin(), na.end(), b), b);
  nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
  ++num_edges_;
}

void ConflictGraph::remove_edge(ProcessId a, ProcessId b) {
  assert(a >= 0 && static_cast<std::size_t>(a) < adj_.size());
  assert(b >= 0 && static_cast<std::size_t>(b) < adj_.size());
  if (a == b || !adjacent(a, b)) return;
  auto& na = adj_[static_cast<std::size_t>(a)];
  auto& nb = adj_[static_cast<std::size_t>(b)];
  na.erase(std::lower_bound(na.begin(), na.end(), b));
  nb.erase(std::lower_bound(nb.begin(), nb.end(), a));
  --num_edges_;
}

bool ConflictGraph::adjacent(ProcessId a, ProcessId b) const {
  const auto& na = adj_[static_cast<std::size_t>(a)];
  return std::binary_search(na.begin(), na.end(), b);
}

std::size_t ConflictGraph::max_degree() const {
  std::size_t d = 0;
  for (const auto& n : adj_) d = std::max(d, n.size());
  return d;
}

std::vector<std::pair<ProcessId, ProcessId>> ConflictGraph::edges() const {
  std::vector<std::pair<ProcessId, ProcessId>> out;
  out.reserve(num_edges_);
  for (std::size_t a = 0; a < adj_.size(); ++a) {
    for (ProcessId b : adj_[a]) {
      if (static_cast<ProcessId>(a) < b) out.emplace_back(static_cast<ProcessId>(a), b);
    }
  }
  return out;
}

bool ConflictGraph::connected() const {
  if (adj_.size() <= 1) return true;
  std::vector<bool> seen(adj_.size(), false);
  std::vector<ProcessId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    ProcessId v = stack.back();
    stack.pop_back();
    for (ProcessId w : adj_[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == adj_.size();
}

}  // namespace ekbd::graph
