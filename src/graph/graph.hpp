/// \file graph.hpp
/// Conflict graphs.
///
/// A dining instance is an undirected graph C = (Π, E): vertices are
/// processes, an edge {i, j} means i and j have conflicting actions and
/// must never (eventually never, under ◇WX) be scheduled simultaneously.
/// Every edge also names one shared fork and one shared token.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ekbd::graph {

using ekbd::sim::ProcessId;

class ConflictGraph {
 public:
  /// Graph on vertices 0..n-1, initially edgeless.
  explicit ConflictGraph(std::size_t n);

  /// Add undirected edge {a, b}. Self-loops are rejected; duplicate edges
  /// are ignored.
  void add_edge(ProcessId a, ProcessId b);

  /// Remove undirected edge {a, b}. Removing an absent edge is a no-op.
  /// Dynamic-graph scenarios (load churn) mutate a live graph through this
  /// plus `add_edge`; both keep the adjacency lists sorted.
  void remove_edge(ProcessId a, ProcessId b);

  [[nodiscard]] std::size_t size() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] bool adjacent(ProcessId a, ProcessId b) const;

  /// Sorted neighbor list of `p`.
  [[nodiscard]] const std::vector<ProcessId>& neighbors(ProcessId p) const {
    return adj_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] std::size_t degree(ProcessId p) const {
    return adj_[static_cast<std::size_t>(p)].size();
  }

  /// Maximum degree δ of the graph (0 for an edgeless graph).
  [[nodiscard]] std::size_t max_degree() const;

  /// All edges as (a, b) pairs with a < b, lexicographically sorted.
  [[nodiscard]] std::vector<std::pair<ProcessId, ProcessId>> edges() const;

  /// True if the graph is connected (vacuously true for n <= 1).
  [[nodiscard]] bool connected() const;

 private:
  std::vector<std::vector<ProcessId>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace ekbd::graph
