#include "graph/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ekbd::graph {

using ekbd::sim::Rng;

ConflictGraph ring(std::size_t n) {
  ConflictGraph g(n);
  if (n < 2) return g;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(i + 1));
  }
  if (n >= 3) g.add_edge(static_cast<ProcessId>(n - 1), 0);
  return g;
}

ConflictGraph path(std::size_t n) {
  ConflictGraph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(i + 1));
  }
  return g;
}

ConflictGraph clique(std::size_t n) {
  ConflictGraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(j));
    }
  }
  return g;
}

ConflictGraph star(std::size_t n) {
  ConflictGraph g(n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(0, static_cast<ProcessId>(i));
  return g;
}

ConflictGraph grid(std::size_t rows, std::size_t cols) {
  ConflictGraph g(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<ProcessId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) g.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return g;
}

ConflictGraph binary_tree(std::size_t n) {
  ConflictGraph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>((i - 1) / 2));
  }
  return g;
}

ConflictGraph random_connected(std::size_t n, double p, Rng& rng) {
  ConflictGraph g(n);
  // Random spanning tree: attach each new vertex to a uniformly chosen
  // earlier vertex (random recursive tree) — guarantees connectivity.
  for (std::size_t i = 1; i < n; ++i) {
    auto parent = static_cast<ProcessId>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    g.add_edge(static_cast<ProcessId>(i), parent);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!g.adjacent(static_cast<ProcessId>(i), static_cast<ProcessId>(j)) && rng.chance(p)) {
        g.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(j));
      }
    }
  }
  return g;
}

ConflictGraph random_sparse(std::size_t n, double avg_degree, Rng& rng) {
  ConflictGraph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    auto parent = static_cast<ProcessId>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    g.add_edge(static_cast<ProcessId>(i), parent);
  }
  if (n < 3) return g;
  // The tree contributes average degree 2·(n-1)/n ≈ 2; top up with random
  // pairs. Collisions with existing edges are simply skipped, so the
  // realized average degree is a slight underestimate at high density.
  const double want = std::max(0.0, avg_degree - 2.0);
  const auto extra = static_cast<std::size_t>(want * static_cast<double>(n) / 2.0);
  const auto hi = static_cast<std::int64_t>(n) - 1;
  for (std::size_t e = 0; e < extra; ++e) {
    auto a = static_cast<ProcessId>(rng.uniform_int(0, hi));
    auto b = static_cast<ProcessId>(rng.uniform_int(0, hi));
    if (a != b && !g.adjacent(a, b)) g.add_edge(a, b);
  }
  return g;
}

ConflictGraph hypercube(std::size_t dims) {
  const std::size_t n = std::size_t{1} << dims;
  ConflictGraph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t d = 0; d < dims; ++d) {
      const std::size_t w = v ^ (std::size_t{1} << d);
      if (v < w) g.add_edge(static_cast<ProcessId>(v), static_cast<ProcessId>(w));
    }
  }
  return g;
}

ConflictGraph torus(std::size_t rows, std::size_t cols) {
  ConflictGraph g(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<ProcessId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(at(r, c), at(r, (c + 1) % cols));
      g.add_edge(at(r, c), at((r + 1) % rows, c));
    }
  }
  return g;
}

ConflictGraph complete_bipartite(std::size_t a, std::size_t b) {
  ConflictGraph g(a + b);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      g.add_edge(static_cast<ProcessId>(i), static_cast<ProcessId>(a + j));
    }
  }
  return g;
}

ConflictGraph by_name(const std::string& name, std::size_t n, Rng& rng) {
  if (name == "ring") return ring(n);
  if (name == "path") return path(n);
  if (name == "clique") return clique(n);
  if (name == "star") return star(n);
  if (name == "tree") return binary_tree(n);
  if (name == "random") return random_connected(n, 0.2, rng);
  if (name == "sparse") return random_sparse(n, 4.0, rng);
  if (name == "grid") {
    auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
    std::size_t rows = side;
    std::size_t cols = (n + side - 1) / side;
    return grid(rows, cols);
  }
  if (name == "torus") {
    auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
    side = std::max<std::size_t>(side, 3);
    std::size_t cols = std::max<std::size_t>((n + side - 1) / side, 3);
    return torus(side, cols);
  }
  if (name == "hypercube") {
    std::size_t dims = 0;
    while ((std::size_t{1} << dims) < n) ++dims;
    return hypercube(dims);
  }
  if (name == "bipartite") return complete_bipartite(n / 2, n - n / 2);
  throw std::invalid_argument("unknown topology: " + name);
}

}  // namespace ekbd::graph
