#include "graph/coloring.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace ekbd::graph {

namespace {
Coloring greedy_in_order(const ConflictGraph& g, const std::vector<ProcessId>& order) {
  Coloring colors(g.size(), -1);
  std::vector<bool> taken;
  for (ProcessId v : order) {
    taken.assign(g.degree(v) + 1, false);
    for (ProcessId w : g.neighbors(v)) {
      int cw = colors[static_cast<std::size_t>(w)];
      if (cw >= 0 && static_cast<std::size_t>(cw) < taken.size()) {
        taken[static_cast<std::size_t>(cw)] = true;
      }
    }
    int c = 0;
    while (taken[static_cast<std::size_t>(c)]) ++c;
    colors[static_cast<std::size_t>(v)] = c;
  }
  return colors;
}
}  // namespace

Coloring greedy_coloring(const ConflictGraph& g) {
  std::vector<ProcessId> order(g.size());
  std::iota(order.begin(), order.end(), 0);
  return greedy_in_order(g, order);
}

Coloring welsh_powell_coloring(const ConflictGraph& g) {
  std::vector<ProcessId> order(g.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ProcessId a, ProcessId b) {
    return g.degree(a) > g.degree(b);
  });
  return greedy_in_order(g, order);
}

bool is_proper(const ConflictGraph& g, const Coloring& c) {
  if (c.size() != g.size()) return false;
  for (const auto& [a, b] : g.edges()) {
    if (c[static_cast<std::size_t>(a)] == c[static_cast<std::size_t>(b)]) return false;
    if (c[static_cast<std::size_t>(a)] < 0 || c[static_cast<std::size_t>(b)] < 0) return false;
  }
  return true;
}

int smallest_free_color(const ConflictGraph& g, const Coloring& c, ProcessId v) {
  std::vector<bool> taken(g.degree(v) + 1, false);
  for (ProcessId w : g.neighbors(v)) {
    int cw = c[static_cast<std::size_t>(w)];
    if (cw >= 0 && static_cast<std::size_t>(cw) < taken.size()) {
      taken[static_cast<std::size_t>(cw)] = true;
    }
  }
  int color = 0;
  while (taken[static_cast<std::size_t>(color)]) ++color;
  return color;
}

ProcessId repair_after_edge_add(const ConflictGraph& g, Coloring& c, ProcessId a,
                                ProcessId b) {
  if (c[static_cast<std::size_t>(a)] != c[static_cast<std::size_t>(b)]) {
    return kNoRecolor;
  }
  // Recolor the endpoint whose neighborhood is smaller (cheapest repair,
  // smallest chance of bumping the palette); ties go to the higher id so
  // the choice is deterministic.
  ProcessId v = b;
  if (g.degree(a) < g.degree(b) || (g.degree(a) == g.degree(b) && a > b)) v = a;
  c[static_cast<std::size_t>(v)] = smallest_free_color(g, c, v);
  return v;
}

bool lower_color(const ConflictGraph& g, Coloring& c, ProcessId v) {
  int best = smallest_free_color(g, c, v);
  if (best >= c[static_cast<std::size_t>(v)]) return false;
  c[static_cast<std::size_t>(v)] = best;
  return true;
}

std::size_t num_colors(const Coloring& c) {
  std::unordered_set<int> distinct(c.begin(), c.end());
  distinct.erase(-1);
  return distinct.size();
}

}  // namespace ekbd::graph
