/// \file topology.hpp
/// Standard conflict-graph families used by tests, examples and benches.
///
/// Dijkstra's original dining problem is `ring(5)`; Lynch's generalization
/// covers arbitrary graphs, so the experiments sweep over several shapes
/// with very different degree/contention profiles:
///   ring/path  — δ = 2, long dependency chains;
///   clique     — δ = n-1, global contention (worst case for space bound);
///   star       — one hub contending with everyone (worst single-process δ);
///   grid       — moderate δ = 4, planar locality;
///   tree       — hierarchical, δ varies;
///   random     — connected G(n, p), irregular contention.
#pragma once

#include <cstddef>
#include <string>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace ekbd::graph {

/// Cycle 0-1-...-(n-1)-0. Requires n >= 3 (n <= 2 degenerates to a path).
ConflictGraph ring(std::size_t n);

/// Path 0-1-...-(n-1).
ConflictGraph path(std::size_t n);

/// Complete graph K_n.
ConflictGraph clique(std::size_t n);

/// Star: vertex 0 adjacent to all others.
ConflictGraph star(std::size_t n);

/// rows x cols grid, 4-neighborhood.
ConflictGraph grid(std::size_t rows, std::size_t cols);

/// Complete binary tree on n vertices (vertex 0 the root, heap layout).
ConflictGraph binary_tree(std::size_t n);

/// Connected Erdős–Rényi-style graph: a uniform random spanning tree plus
/// each remaining pair independently with probability `p`.
ConflictGraph random_connected(std::size_t n, double p, ekbd::sim::Rng& rng);

/// Connected sparse random graph with average degree ≈ `avg_degree`:
/// a random recursive tree plus ~n·(avg_degree-2)/2 uniformly chosen
/// extra pairs. O(n·avg_degree) construction, so it scales to the
/// 10⁵–10⁶-node graphs of E9/E25 where random_connected's O(n²) pair
/// loop would dominate the run.
ConflictGraph random_sparse(std::size_t n, double avg_degree, ekbd::sim::Rng& rng);

/// d-dimensional hypercube (2^d vertices; neighbors differ in one bit).
/// Regular with δ = d = log₂ n: logarithmic-degree contention.
ConflictGraph hypercube(std::size_t dims);

/// rows x cols torus (grid with wraparound): 4-regular, no boundary
/// effects. Requires rows, cols >= 3 to avoid parallel edges.
ConflictGraph torus(std::size_t rows, std::size_t cols);

/// Complete bipartite K_{a,b}: two thinking camps where every conflict
/// crosses sides — the worst case for two-coloring-based priorities.
ConflictGraph complete_bipartite(std::size_t a, std::size_t b);

/// Named lookup used by benches ("ring", "path", "clique", "star", "grid",
/// "tree", "random", "sparse", "hypercube", "torus", "bipartite");
/// grid/torus use the most square shape covering n, hypercube rounds n up
/// to a power of two, bipartite splits n in half, random uses p = 0.2,
/// sparse uses avg_degree = 4. Throws std::invalid_argument for unknown
/// names.
ConflictGraph by_name(const std::string& name, std::size_t n, ekbd::sim::Rng& rng);

}  // namespace ekbd::graph
