/// \file coloring.hpp
/// Proper node colorings — the static priority scheme of the paper (§3.1).
///
/// Algorithm 1 assigns each process a locally unique integer color at
/// initialization; between neighbors, the higher color wins fork conflicts.
/// The paper notes standard approximation algorithms produce colorings with
/// O(δ) distinct values in polynomial time; we provide sequential greedy
/// coloring under two orderings, both guaranteed to use at most δ+1 colors.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ekbd::graph {

/// A proper coloring: color[v] differs from color[w] for every edge {v,w}.
using Coloring = std::vector<int>;

/// Greedy coloring in vertex-id order. Uses <= δ+1 colors.
Coloring greedy_coloring(const ConflictGraph& g);

/// Welsh–Powell: greedy in non-increasing degree order. Uses <= δ+1 colors
/// and often fewer than id-order greedy on irregular graphs.
Coloring welsh_powell_coloring(const ConflictGraph& g);

/// True iff `c` assigns distinct colors to every pair of neighbors.
bool is_proper(const ConflictGraph& g, const Coloring& c);

/// Number of distinct colors used (0 for an empty coloring).
std::size_t num_colors(const Coloring& c);

// -- incremental repair (dynamic conflict graphs) ---------------------------
//
// Churn scenarios mutate a live graph one edge at a time; recomputing a
// global coloring would reshuffle every process's priority mid-run (and
// with it the fairness argument of §5). Instead each mutation is repaired
// *locally*: at most one vertex changes color per edge addition, chosen
// greedily as the smallest color absent from its neighborhood — the same
// rule sequential greedy uses, so the ≤ δ+1 palette bound is preserved.
// Edge/node removals never invalidate properness; `lower_color` optionally
// tightens the freed vertices so the palette can shrink back.

/// Returned by `repair_after_edge_add` when the coloring was already proper.
inline constexpr ProcessId kNoRecolor = -1;

/// Smallest color not used by any neighbor of `v` (>= 0, <= degree(v)).
int smallest_free_color(const ConflictGraph& g, const Coloring& c, ProcessId v);

/// Repair `c` after `g.add_edge(a, b)` was applied. If the endpoints now
/// share a color, exactly one of them — the lower-degree endpoint, ties
/// broken toward the higher id — is recolored to its smallest free color.
/// Returns the recolored vertex, or kNoRecolor if `c` was still proper.
/// Never touches any vertex outside {a, b}.
ProcessId repair_after_edge_add(const ConflictGraph& g, Coloring& c, ProcessId a,
                                ProcessId b);

/// Greedily lower `v`'s color to its smallest free color. Returns true if
/// the color changed. Used after edge/node removals to shrink the palette;
/// touches only `v`.
bool lower_color(const ConflictGraph& g, Coloring& c, ProcessId v);

}  // namespace ekbd::graph
