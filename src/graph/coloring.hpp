/// \file coloring.hpp
/// Proper node colorings — the static priority scheme of the paper (§3.1).
///
/// Algorithm 1 assigns each process a locally unique integer color at
/// initialization; between neighbors, the higher color wins fork conflicts.
/// The paper notes standard approximation algorithms produce colorings with
/// O(δ) distinct values in polynomial time; we provide sequential greedy
/// coloring under two orderings, both guaranteed to use at most δ+1 colors.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ekbd::graph {

/// A proper coloring: color[v] differs from color[w] for every edge {v,w}.
using Coloring = std::vector<int>;

/// Greedy coloring in vertex-id order. Uses <= δ+1 colors.
Coloring greedy_coloring(const ConflictGraph& g);

/// Welsh–Powell: greedy in non-increasing degree order. Uses <= δ+1 colors
/// and often fewer than id-order greedy on irregular graphs.
Coloring welsh_powell_coloring(const ConflictGraph& g);

/// True iff `c` assigns distinct colors to every pair of neighbors.
bool is_proper(const ConflictGraph& g, const Coloring& c);

/// Number of distinct colors used (0 for an empty coloring).
std::size_t num_colors(const Coloring& c);

}  // namespace ekbd::graph
