/// \file node.hpp
/// One process of the multi-process socket engine.
///
/// `NodeEngine` is the third implementation of `sim::TransportIface` (after
/// `sim::Simulator` and `rt::Runtime`): it hosts exactly ONE actor — this
/// OS process *is* that process of the distributed system — and carries
/// every message over real UDP datagrams on the loopback interface, one
/// checksummed codec frame per datagram. Crashes are real here too: the
/// orchestrator (cluster.hpp) SIGKILLs the process mid-run, which is why
/// the engine streams its Recorder history to disk as it goes (rt/log_io)
/// instead of keeping it in memory.
///
/// Layering, bottom to top:
///
///  * `UdpSocket` — genuinely lossy, genuinely reordering wire;
///  * `net::LinkFaultModel` — the *injected* adversary at the socket
///    boundary: seed-deterministic drop/dup coins and partition/edge-cut
///    windows (preloaded from the config or injected at runtime by the
///    orchestrator's control frames), applied before a datagram is handed
///    to the kernel, so fault plans replay per seed exactly like the
///    simulator's;
///  * `net::ReliableTransport` (optional) — the same Stenning ARQ the
///    other engines use, driven through `net::ArqEnv`; here the
///    environment is single-threaded, so no lock is needed at all;
///  * the actor — an unmodified diner (plus its hosted ◇P₁ module),
///    byte-for-byte the code the simulator runs.
///
/// Single-threadedness is the engine's whole concurrency story: socket
/// pump, timer heap, ARQ and actor handlers all run on the one main
/// thread, so handler atomicity is trivial and the Recorder mutex is
/// never contended. Real concurrency happens *between* processes — which
/// is exactly the granularity the paper's model quantifies over.
///
/// Time: every node rebases its `TickClock` to the orchestrator-chosen
/// CLOCK_MONOTONIC epoch (Start frame), and the engine defaults to 1 ns
/// ticks, so causally ordered cross-node events carry strictly increasing
/// stamps and the shipped logs merge into a valid linearization
/// (rt/log_io.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fd/detector.hpp"
#include "net/arq_env.hpp"
#include "net/link_fault_model.hpp"
#include "net/reliable_transport.hpp"
#include "netproc/control.hpp"
#include "netproc/udp.hpp"
#include "rt/clock.hpp"
#include "rt/log_io.hpp"
#include "rt/recorder.hpp"
#include "sim/actor.hpp"
#include "sim/rng.hpp"
#include "sim/transport_iface.hpp"

namespace ekbd::netproc {

struct NodeConfig {
  sim::ProcessId self = 0;      ///< this process's id (0-based)
  std::size_t n = 0;            ///< cluster size
  std::uint64_t seed = 1;       ///< master seed (same discipline as sim/rt)
  std::uint64_t tick_ns = 1;    ///< nanosecond ticks: merged logs linearize
  sim::Time horizon = 0;        ///< run end, in ticks

  /// Injected socket-boundary faults (drop/dup coins; reorder is what the
  /// real wire already does). Partitions/edge cuts may also arrive at
  /// runtime as control frames.
  net::LinkFaultParams link_faults{};
  std::vector<net::Partition> partitions;
  std::vector<net::EdgeCut> edge_cuts;

  std::string log_path;         ///< shipped Recorder log (rt/log_io framing)
  std::uint16_t orch_port = 0;  ///< orchestrator's control socket
  int handshake_timeout_ms = 10'000;

  /// Supervision-test hook: enter an infinite loop instead of finishing,
  /// so the orchestrator's per-node timeout has something to catch.
  bool wedge = false;
};

/// Exit codes NodeEngine::run returns (the orchestrator collects them).
enum NodeExit : int {
  kNodeOk = 0,
  kNodeHandshakeTimeout = 2,
  kNodeSetupFailed = 3,
};

class NodeEngine final : public sim::TransportIface, public net::ArqEnv {
 public:
  explicit NodeEngine(NodeConfig cfg);
  ~NodeEngine() override;

  NodeEngine(const NodeEngine&) = delete;
  NodeEngine& operator=(const NodeEngine&) = delete;

  // -- wiring (before run()) ---------------------------------------------

  /// Register this process's actor (bound to id = cfg.self).
  void set_actor(std::unique_ptr<sim::Actor> actor);

  template <typename T, typename... Args>
  T* make_actor(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    set_actor(std::move(owned));
    return raw;
  }

  /// Interpose the ARQ under the dining/other layers (detector traffic
  /// stays raw, as everywhere else). `detector` (may be null) gates
  /// retransmission quiescence; pass the same oracle the diner uses.
  void install_arq(net::ReliableTransport::Params params,
                   const fd::FailureDetector* detector = nullptr);

  /// Run `fn` on the main thread `delay` ticks from now — the node-local
  /// analogue of Runtime::call_after, used by the environment driver
  /// (think/eat scheduling). Callable before run() or from handlers.
  void call_after(sim::Time delay, std::function<void()> fn);

  /// Keep child-side wiring (detectors, environment drivers built inside
  /// the NodeSetup callback) alive for the engine's lifetime.
  void retain(std::shared_ptr<void> obj) { retained_.push_back(std::move(obj)); }

  // -- execution ----------------------------------------------------------

  /// Handshake with the orchestrator, run to the horizon (or a Stop
  /// frame), write the clean-shutdown trailer. Returns a NodeExit code.
  int run();

  // -- queries -------------------------------------------------------------

  [[nodiscard]] const NodeConfig& config() const { return cfg_; }
  [[nodiscard]] rt::Recorder& recorder() { return rec_; }
  /// Ground truth from the orchestrator's CrashNotice frames.
  [[nodiscard]] bool peer_crashed(sim::ProcessId p) const {
    return p >= 0 && static_cast<std::size_t>(p) < crashed_.size() &&
           crashed_[static_cast<std::size_t>(p)] != 0;
  }
  [[nodiscard]] net::LinkFaultModel& fault_model() { return filter_; }
  [[nodiscard]] net::ReliableTransport* arq() { return arq_.get(); }

  // -- sim::TransportIface -------------------------------------------------

  void send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
            sim::MsgLayer layer) override;
  sim::TimerId set_timer(sim::ProcessId owner, sim::Time delay) override;
  void cancel_timer(sim::ProcessId owner, sim::TimerId id) override;
  [[nodiscard]] sim::Time now() const override {
    return started_ ? clock_.now_ticks() : 0;
  }
  sim::Rng& actor_rng(sim::ProcessId p) override;

  // -- net::ArqEnv ---------------------------------------------------------

  [[nodiscard]] bool crashed(sim::ProcessId p) const override { return peer_crashed(p); }
  std::uint64_t book_logical_send(sim::ProcessId from, sim::ProcessId to,
                                  const sim::Payload& payload,
                                  sim::MsgLayer layer) override;
  void book_logical_drop(sim::ProcessId from, sim::ProcessId to,
                         const sim::Payload& payload, sim::MsgLayer layer,
                         std::uint64_t logical_seq) override;
  void physical_send(sim::ProcessId from, sim::ProcessId to,
                     const sim::Payload& payload) override;
  void deliver_logical(sim::ProcessId from, sim::ProcessId to,
                       const sim::Payload& payload, sim::MsgLayer layer,
                       std::uint64_t logical_seq, sim::Time sent_at) override;
  void schedule_on(sim::ProcessId owner, sim::Time delay,
                   std::function<void()> fn) override;

 private:
  struct TimerEntry {
    sim::Time at = 0;
    sim::TimerId id = 0;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.at > b.at || (a.at == b.at && a.id > b.id);
    }
  };

  /// The raw datagram path: fault filter → record → encode → sendto.
  void raw_send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                sim::MsgLayer layer);
  void transmit(const sim::Message& m);

  bool handshake();
  void drain_socket();
  void handle_frame(std::uint8_t kind, const std::uint8_t* body, std::size_t len);
  void handle_data(sim::Message m);
  void handle_control(std::uint8_t kind, const std::uint8_t* body, std::size_t len);
  /// Fire every timer due at `now`; returns when the heap's head is in the
  /// future (or a Stop arrived).
  void fire_due_timers();

  NodeConfig cfg_;
  UdpSocket sock_;
  rt::TickClock clock_;
  rt::Recorder rec_;
  rt::LogWriter writer_;
  net::LinkFaultModel filter_;
  sim::Rng rng_;  ///< actor stream: Rng(seed).fork(self + 1)

  std::vector<std::shared_ptr<void>> retained_;
  std::unique_ptr<sim::Actor> actor_;
  std::unique_ptr<net::ReliableTransport> arq_;
  const fd::FailureDetector* detector_ = nullptr;

  std::vector<std::uint16_t> ports_;  ///< data port of node i (Start frame)
  std::vector<std::uint8_t> crashed_;  ///< CrashNotice ground truth

  // Timer state (main thread only) — mirrors one rt::Runtime Worker.
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timers_;
  std::unordered_set<sim::TimerId> active_;
  std::unordered_map<sim::TimerId, std::function<void()>> calls_;
  sim::TimerId next_timer_id_ = 1;

  bool started_ = false;
  bool stop_ = false;
  std::uint8_t buf_[codec::kMaxFrameSize] = {};
};

/// ◇P₁ backed by the orchestrator's CrashNotice ground truth: suspects
/// exactly the SIGKILLed, as soon as the notice datagram lands. The
/// socket-engine counterpart of `rt::RtPerfectDetector` (accurate, and
/// complete up to one control-frame latency).
class CrashNoticeDetector final : public fd::FailureDetector {
 public:
  explicit CrashNoticeDetector(const NodeEngine& node) : node_(node) {}
  [[nodiscard]] bool suspects(sim::ProcessId, sim::ProcessId target) const override {
    return node_.peer_crashed(target);
  }

 private:
  const NodeEngine& node_;
};

}  // namespace ekbd::netproc
