#include "netproc/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ekbd::netproc {

UdpSocket::UdpSocket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: the kernel picks a free port
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close();
    return;
  }
  port_ = ntohs(bound.sin_port);

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    close();
    return;
  }
}

UdpSocket::~UdpSocket() { close(); }

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

bool UdpSocket::send_to(std::uint16_t port, const std::uint8_t* data, std::size_t len) {
  if (fd_ < 0) return false;
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(port);
  const ssize_t n = ::sendto(fd_, data, len, 0, reinterpret_cast<const sockaddr*>(&dst),
                             sizeof(dst));
  return n == static_cast<ssize_t>(len);
}

int UdpSocket::recv(std::uint8_t* buf, std::size_t cap) {
  if (fd_ < 0) return -1;
  const ssize_t n = ::recvfrom(fd_, buf, cap, 0, nullptr, nullptr);
  if (n >= 0) return static_cast<int>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  return -1;
}

bool UdpSocket::wait_readable(int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int r = ::poll(&pfd, 1, timeout_ms);
  return r > 0 && (pfd.revents & POLLIN) != 0;
}

}  // namespace ekbd::netproc
