/// \file udp.hpp
/// Minimal nonblocking UDP loopback socket for the multi-process engine.
///
/// Every node (and the orchestrator) owns exactly one socket, bound to
/// 127.0.0.1 with port 0 — the kernel assigns an ephemeral port, so tests
/// and parallel `ctest -j` runs never collide on a hardcoded number. One
/// codec frame per datagram: UDP's own boundaries do the framing-
/// alignment work, and a datagram either arrives whole or not at all
/// (loss and reordering are real here — that is the point; the ARQ above
/// absorbs them).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ekbd::netproc {

class UdpSocket {
 public:
  /// Opens an AF_INET/SOCK_DGRAM socket, binds 127.0.0.1:0 (ephemeral),
  /// sets O_NONBLOCK. Check ok() before use.
  UdpSocket();
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  /// The kernel-assigned port (host byte order); 0 if not bound.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Fire one datagram at 127.0.0.1:`port`. Best-effort: a full socket
  /// buffer or any transient error is reported as false and otherwise
  /// ignored — to the layers above it is indistinguishable from loss.
  bool send_to(std::uint16_t port, const std::uint8_t* data, std::size_t len);

  /// Nonblocking receive of one datagram. Returns its length, 0 if
  /// nothing is pending, -1 on error. A datagram longer than `cap` is
  /// truncated by the kernel — the codec's checksum then rejects it.
  int recv(std::uint8_t* buf, std::size_t cap);

  /// Block until readable or `timeout_ms` elapses (0 = just poll).
  /// Returns true if readable.
  bool wait_readable(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ekbd::netproc
