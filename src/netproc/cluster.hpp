/// \file cluster.hpp
/// Launcher/orchestrator for the multi-process socket engine.
///
/// `run_cluster` forks one OS process per node (each running a
/// `NodeEngine`), performs the Hello/Start handshake over the control
/// socket, and then supervises the run:
///
///  * **real crashes** — the crash plan is executed with SIGKILL at the
///    scripted ticks: the victim dies mid-whatever-it-was-doing, its log
///    file ends mid-frame, its peers find out the hard way (plus a
///    best-effort CrashNotice broadcast, the ground-truth oracle feed);
///  * **runtime partitions** — partition/edge-cut windows are injected
///    while the cluster runs, as control frames to every node's filter
///    (duplicated against UDP loss; the windows carry absolute ticks, so
///    early arrival is exact and a lost duplicate harmless);
///  * **supervision** — every node is reaped with `waitpid`; nodes still
///    alive `node_timeout_ms` after the horizon are SIGKILLed and marked
///    timed out, so a wedged node fails the run instead of hanging it;
///  * **log shipping** — each node's streamed Recorder log is loaded and
///    merged (rt/log_io) into the one Trace + EventLog + Network history
///    the MonitorHub and the post-hoc checkers consume, with the
///    orchestrator's ground-truth crash times inserted.
///
/// fork() without exec: the child runs the `NodeSetup` callback (which
/// builds the actor and optional ARQ inside the child), runs the engine,
/// and `_Exit`s with its return code — no atexit handlers, no sanitizer
/// leak pass, no sharing of the parent's stdio buffers. The parent MUST
/// be single-threaded when `run_cluster` is called (POSIX fork +
/// multithreading do not mix); the proc scenario runner keeps it so.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/link_fault_model.hpp"
#include "netproc/node.hpp"
#include "rt/log_io.hpp"

namespace ekbd::netproc {

struct ClusterOptions {
  std::size_t n = 3;
  std::uint64_t seed = 1;
  std::uint64_t tick_ns = 1;  ///< keep 1 ns so merged logs linearize
  sim::Time horizon = 0;      ///< run end, in ticks

  net::LinkFaultParams link_faults{};
  /// Injected at runtime through the control channel (not preloaded):
  /// each window is broadcast while the cluster runs, slightly before its
  /// `from` tick.
  std::vector<net::Partition> partitions;
  std::vector<net::EdgeCut> edge_cuts;

  /// SIGKILL plan: (node, tick). Real crashes — no cooperation from the
  /// victim whatsoever.
  std::vector<std::pair<sim::ProcessId, sim::Time>> crashes;

  std::string log_dir = ".";
  int handshake_timeout_ms = 10'000;
  /// Grace after the horizon before a still-running node is SIGKILLed
  /// and marked timed out.
  int node_timeout_ms = 10'000;

  /// Supervision-test hook: this node wedges (never finishes) — the run
  /// must still complete, with the node marked timed out.
  sim::ProcessId wedge_node = sim::kNoProcess;
};

struct NodeOutcome {
  long pid = -1;
  int exit_code = -1;           ///< valid when !signaled
  bool signaled = false;
  int term_signal = 0;
  bool timed_out = false;       ///< SIGKILLed by the supervisor after grace
  bool killed_by_plan = false;  ///< SIGKILLed by the crash plan
  sim::Time crash_tick = -1;    ///< plan tick when killed_by_plan
  std::string log_path;
};

struct ClusterResult {
  /// True iff the handshake converged and every node either was killed by
  /// the crash plan or exited cleanly (code 0, no timeout).
  bool ok = false;
  std::string error;  ///< first failure, "" when ok

  std::vector<NodeOutcome> nodes;
  std::vector<rt::Recording> parts;  ///< per-node shipped logs, as loaded
  rt::Recording merged;              ///< the cluster-wide linearization
  /// Ground-truth crash times as injected (plan ticks), the list
  /// merge_recordings already consumed.
  std::vector<std::pair<sim::ProcessId, sim::Time>> crashes;
};

/// Child-side wiring: runs inside the forked node process, must register
/// the actor (NodeEngine::set_actor / make_actor) and may install the ARQ
/// and schedule environment callbacks. Everything it captures must be
/// fork-safe (plain values; no threads, no locks held at fork time).
using NodeSetup = std::function<void(NodeEngine&)>;

/// Fork, handshake, supervise, ship and merge. Blocks until every node is
/// reaped (bounded by horizon + node_timeout_ms + handshake timeout).
[[nodiscard]] ClusterResult run_cluster(const ClusterOptions& opt, const NodeSetup& setup);

}  // namespace ekbd::netproc
