/// \file control.hpp
/// Orchestrator ↔ node control frames, on the same checksummed codec
/// framing as the data plane (kind bytes >= codec::FrameKind::kControlBase
/// so a stray control datagram can never be misparsed as a Message).
///
/// The protocol is deliberately tiny and connectionless:
///
///   node → orch:  Hello{node, port}        (repeated until Start arrives)
///   orch → node:  Start{epoch_ns, ports[]} (the barrier: everyone's port
///                                           table + the shared clock epoch)
///   orch → node:  CrashNotice{node}        (ground truth: `node` was
///                                           SIGKILLed — feeds ◇P₁'s
///                                           crashed() oracle, NOT the
///                                           suspicion stream)
///   orch → node:  Cut{a, b, from, until}   (edge cut, runtime injection)
///   orch → node:  Split{mask, from, until} (partition by side bitmask)
///   orch → node:  Stop{}                   (finish: write trailer, exit)
///
/// Everything is sent over lossy-by-nature UDP, so the orchestrator
/// repeats important frames (the nodes treat them idempotently) and the
/// Hello/Start handshake retries until it converges or times out.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/codec.hpp"
#include "sim/time.hpp"

namespace ekbd::netproc {

namespace codec = ekbd::sim::codec;

enum class ControlKind : std::uint8_t {
  kHello = 16,
  kStart = 17,
  kCrashNotice = 18,
  kCut = 19,
  kSplit = 20,
  kStop = 21,
};

struct Hello {
  sim::ProcessId node = sim::kNoProcess;
  std::uint16_t port = 0;
};

struct Start {
  std::int64_t epoch_ns = 0;          ///< shared CLOCK_MONOTONIC tick origin
  std::vector<std::uint16_t> ports;   ///< data-plane port of node i
};

struct CrashNotice {
  sim::ProcessId node = sim::kNoProcess;
};

struct Cut {
  sim::ProcessId a = sim::kNoProcess;
  sim::ProcessId b = sim::kNoProcess;
  sim::Time from = 0;
  sim::Time until = -1;  ///< < 0 = permanent
};

struct Split {
  std::uint64_t side_mask = 0;  ///< bit i set = node i on the cut-off side
  sim::Time from = 0;
  sim::Time until = -1;
};

// -- encoding (each returns the full frame length, 0 if it didn't fit) -----

inline std::size_t encode_hello(const Hello& h, std::uint8_t* buf, std::size_t cap) {
  if (cap < codec::kHeaderSize) return 0;
  codec::Writer w(buf + codec::kHeaderSize, cap - codec::kHeaderSize);
  w.i32(h.node);
  w.u16(h.port);
  if (!w.ok()) return 0;
  return codec::seal_frame(buf, cap, static_cast<std::uint8_t>(ControlKind::kHello),
                           w.size());
}

inline bool decode_hello(const std::uint8_t* body, std::size_t len, Hello& out) {
  codec::Reader r(body, len);
  out.node = r.i32();
  out.port = r.u16();
  return r.exhausted();
}

inline std::size_t encode_start(const Start& s, std::uint8_t* buf, std::size_t cap) {
  if (cap < codec::kHeaderSize) return 0;
  codec::Writer w(buf + codec::kHeaderSize, cap - codec::kHeaderSize);
  w.i64(s.epoch_ns);
  w.u16(static_cast<std::uint16_t>(s.ports.size()));
  for (const std::uint16_t p : s.ports) w.u16(p);
  if (!w.ok()) return 0;
  return codec::seal_frame(buf, cap, static_cast<std::uint8_t>(ControlKind::kStart),
                           w.size());
}

inline bool decode_start(const std::uint8_t* body, std::size_t len, Start& out) {
  codec::Reader r(body, len);
  out.epoch_ns = r.i64();
  const std::uint16_t n = r.u16();
  if (!r.ok() || r.remaining() != static_cast<std::size_t>(n) * 2) return false;
  out.ports.clear();
  out.ports.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) out.ports.push_back(r.u16());
  return r.exhausted();
}

inline std::size_t encode_crash_notice(const CrashNotice& c, std::uint8_t* buf,
                                       std::size_t cap) {
  if (cap < codec::kHeaderSize) return 0;
  codec::Writer w(buf + codec::kHeaderSize, cap - codec::kHeaderSize);
  w.i32(c.node);
  if (!w.ok()) return 0;
  return codec::seal_frame(buf, cap, static_cast<std::uint8_t>(ControlKind::kCrashNotice),
                           w.size());
}

inline bool decode_crash_notice(const std::uint8_t* body, std::size_t len,
                                CrashNotice& out) {
  codec::Reader r(body, len);
  out.node = r.i32();
  return r.exhausted();
}

inline std::size_t encode_cut(const Cut& c, std::uint8_t* buf, std::size_t cap) {
  if (cap < codec::kHeaderSize) return 0;
  codec::Writer w(buf + codec::kHeaderSize, cap - codec::kHeaderSize);
  w.i32(c.a);
  w.i32(c.b);
  w.i64(c.from);
  w.i64(c.until);
  if (!w.ok()) return 0;
  return codec::seal_frame(buf, cap, static_cast<std::uint8_t>(ControlKind::kCut),
                           w.size());
}

inline bool decode_cut(const std::uint8_t* body, std::size_t len, Cut& out) {
  codec::Reader r(body, len);
  out.a = r.i32();
  out.b = r.i32();
  out.from = r.i64();
  out.until = r.i64();
  return r.exhausted();
}

inline std::size_t encode_split(const Split& s, std::uint8_t* buf, std::size_t cap) {
  if (cap < codec::kHeaderSize) return 0;
  codec::Writer w(buf + codec::kHeaderSize, cap - codec::kHeaderSize);
  w.u64(s.side_mask);
  w.i64(s.from);
  w.i64(s.until);
  if (!w.ok()) return 0;
  return codec::seal_frame(buf, cap, static_cast<std::uint8_t>(ControlKind::kSplit),
                           w.size());
}

inline bool decode_split(const std::uint8_t* body, std::size_t len, Split& out) {
  codec::Reader r(body, len);
  out.side_mask = r.u64();
  out.from = r.i64();
  out.until = r.i64();
  return r.exhausted();
}

inline std::size_t encode_stop(std::uint8_t* buf, std::size_t cap) {
  if (cap < codec::kHeaderSize) return 0;
  return codec::seal_frame(buf, cap, static_cast<std::uint8_t>(ControlKind::kStop), 0);
}

}  // namespace ekbd::netproc
