#include "netproc/cluster.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "rt/clock.hpp"

namespace ekbd::netproc {

namespace {

using Clock = std::chrono::steady_clock;

/// Wall lead for runtime partition commands: broadcast this much before
/// the window's `from` tick so the frame is in every filter when the
/// window opens (the window itself is tick-exact regardless).
constexpr std::int64_t kInjectLeadNs = 5'000'000;  // 5 ms
/// Margin between the Start broadcast and the shared epoch: every node
/// should hold the port table before tick 0.
constexpr std::int64_t kEpochMarginNs = 25'000'000;  // 25 ms

struct Action {
  enum class Kind { kKill, kCut, kSplit };
  std::int64_t wall_ns = 0;  ///< CLOCK_MONOTONIC deadline
  Kind kind = Kind::kKill;
  std::size_t index = 0;  ///< into crashes / edge_cuts / partitions
};

void decode_status(NodeOutcome& out, int status) {
  if (WIFEXITED(status)) {
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(status);
  }
}

/// Broadcast one already-sealed control frame to every live node, twice
/// (idempotent receivers; two independent loopback datagrams make a lost
/// command vanishingly unlikely).
void broadcast(UdpSocket& orch, const std::vector<std::uint16_t>& ports,
               const std::vector<bool>& reaped, const std::uint8_t* frame,
               std::size_t len) {
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < ports.size(); ++i) {
      if (!reaped[i] && ports[i] != 0) (void)orch.send_to(ports[i], frame, len);
    }
  }
}

std::uint64_t side_mask_of(const net::Partition& p) {
  std::uint64_t mask = 0;
  for (const sim::ProcessId id : p.side) {
    if (id >= 0 && id < 64) mask |= 1ULL << id;
  }
  return mask;
}

}  // namespace

ClusterResult run_cluster(const ClusterOptions& opt, const NodeSetup& setup) {
  ClusterResult res;
  res.nodes.resize(opt.n);

  UdpSocket orch;
  if (!orch.ok()) {
    res.error = "orchestrator socket failed";
    return res;
  }

  // -- fork the nodes ------------------------------------------------------
  std::vector<bool> reaped(opt.n, false);
  for (std::size_t i = 0; i < opt.n; ++i) {
    NodeConfig cfg;
    cfg.self = static_cast<sim::ProcessId>(i);
    cfg.n = opt.n;
    cfg.seed = opt.seed;
    cfg.tick_ns = opt.tick_ns;
    cfg.horizon = opt.horizon;
    cfg.link_faults = opt.link_faults;
    cfg.log_path = opt.log_dir + "/node_" + std::to_string(i) + ".log";
    cfg.orch_port = orch.port();
    cfg.handshake_timeout_ms = opt.handshake_timeout_ms;
    cfg.wedge = (opt.wedge_node == cfg.self);
    res.nodes[i].log_path = cfg.log_path;

    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: this process IS node i from here on. _Exit skips atexit
      // handlers and sanitizer leak reporting — the parent owns those.
      NodeEngine engine(std::move(cfg));
      setup(engine);
      std::_Exit(engine.run());
    }
    if (pid < 0) {
      res.error = "fork failed";
      for (std::size_t j = 0; j < i; ++j) {
        ::kill(static_cast<pid_t>(res.nodes[j].pid), SIGKILL);
        int status = 0;
        ::waitpid(static_cast<pid_t>(res.nodes[j].pid), &status, 0);
        decode_status(res.nodes[j], status);
        reaped[j] = true;
      }
      return res;
    }
    res.nodes[i].pid = pid;
  }

  auto kill_and_reap = [&](std::size_t i) {
    if (reaped[i]) return;
    ::kill(static_cast<pid_t>(res.nodes[i].pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(res.nodes[i].pid), &status, 0);
    decode_status(res.nodes[i], status);
    reaped[i] = true;
  };

  // -- handshake: collect one Hello per node -------------------------------
  std::vector<std::uint16_t> ports(opt.n, 0);
  std::size_t have = 0;
  std::uint8_t buf[codec::kMaxFrameSize];
  const auto hs_deadline = Clock::now() + std::chrono::milliseconds(opt.handshake_timeout_ms);
  while (have < opt.n && Clock::now() < hs_deadline) {
    orch.wait_readable(20);
    int len = 0;
    while ((len = orch.recv(buf, sizeof buf)) > 0) {
      std::uint8_t kind = 0;
      const std::uint8_t* body = nullptr;
      std::size_t body_len = 0;
      if (codec::open_frame(buf, static_cast<std::size_t>(len), kind, body, body_len) !=
          codec::DecodeStatus::kOk) {
        continue;
      }
      if (kind != static_cast<std::uint8_t>(ControlKind::kHello)) continue;
      Hello h;
      if (!decode_hello(body, body_len, h)) continue;
      if (h.node < 0 || static_cast<std::size_t>(h.node) >= opt.n) continue;
      auto& slot = ports[static_cast<std::size_t>(h.node)];
      if (slot == 0) {
        slot = h.port;
        ++have;
      }
    }
  }
  if (have < opt.n) {
    res.error = "handshake timeout (" + std::to_string(have) + "/" +
                std::to_string(opt.n) + " nodes reported)";
    for (std::size_t i = 0; i < opt.n; ++i) kill_and_reap(i);
    return res;
  }

  // -- Start: shared epoch + port table ------------------------------------
  const std::int64_t epoch_ns = rt::TickClock::epoch_now_ns() + kEpochMarginNs;
  {
    Start start;
    start.epoch_ns = epoch_ns;
    start.ports = ports;
    const std::size_t len = encode_start(start, buf, sizeof buf);
    broadcast(orch, ports, reaped, buf, len);
  }

  // -- action schedule ------------------------------------------------------
  const auto tick_wall = [&](sim::Time t) {
    return epoch_ns + t * static_cast<std::int64_t>(opt.tick_ns);
  };
  std::vector<Action> actions;
  for (std::size_t i = 0; i < opt.crashes.size(); ++i) {
    actions.push_back({tick_wall(opt.crashes[i].second), Action::Kind::kKill, i});
  }
  for (std::size_t i = 0; i < opt.edge_cuts.size(); ++i) {
    const std::int64_t w = tick_wall(opt.edge_cuts[i].from) - kInjectLeadNs;
    actions.push_back({std::max(w, epoch_ns), Action::Kind::kCut, i});
  }
  for (std::size_t i = 0; i < opt.partitions.size(); ++i) {
    const std::int64_t w = tick_wall(opt.partitions[i].from) - kInjectLeadNs;
    actions.push_back({std::max(w, epoch_ns), Action::Kind::kSplit, i});
  }
  std::sort(actions.begin(), actions.end(),
            [](const Action& a, const Action& b) { return a.wall_ns < b.wall_ns; });

  // -- supervise to the horizon ---------------------------------------------
  const std::int64_t horizon_wall = tick_wall(opt.horizon);
  std::size_t next_action = 0;
  for (;;) {
    const std::int64_t now_ns = rt::TickClock::epoch_now_ns();

    while (next_action < actions.size() && actions[next_action].wall_ns <= now_ns) {
      const Action& a = actions[next_action++];
      switch (a.kind) {
        case Action::Kind::kKill: {
          const auto [node, tick] = opt.crashes[a.index];
          const auto ni = static_cast<std::size_t>(node);
          if (ni < opt.n && !reaped[ni]) {
            ::kill(static_cast<pid_t>(res.nodes[ni].pid), SIGKILL);
            int status = 0;
            ::waitpid(static_cast<pid_t>(res.nodes[ni].pid), &status, 0);
            decode_status(res.nodes[ni], status);
            reaped[ni] = true;
            res.nodes[ni].killed_by_plan = true;
            res.nodes[ni].crash_tick = tick;
            res.crashes.emplace_back(node, tick);
            CrashNotice notice{node};
            const std::size_t len = encode_crash_notice(notice, buf, sizeof buf);
            broadcast(orch, ports, reaped, buf, len);
          }
          break;
        }
        case Action::Kind::kCut: {
          const net::EdgeCut& c = opt.edge_cuts[a.index];
          Cut cmd{c.a, c.b, c.from, c.until};
          const std::size_t len = encode_cut(cmd, buf, sizeof buf);
          broadcast(orch, ports, reaped, buf, len);
          break;
        }
        case Action::Kind::kSplit: {
          const net::Partition& p = opt.partitions[a.index];
          Split cmd{side_mask_of(p), p.from, p.until};
          const std::size_t len = encode_split(cmd, buf, sizeof buf);
          broadcast(orch, ports, reaped, buf, len);
          break;
        }
      }
    }

    // Reap early deaths without blocking (a node that crashed on its own
    // — setup failure, handshake timeout — must not stall the schedule).
    for (std::size_t i = 0; i < opt.n; ++i) {
      if (reaped[i]) continue;
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(res.nodes[i].pid), &status, WNOHANG);
      if (r > 0) {
        decode_status(res.nodes[i], status);
        reaped[i] = true;
      }
    }

    if (now_ns >= horizon_wall) break;

    std::int64_t next_ns = horizon_wall;
    if (next_action < actions.size()) next_ns = std::min(next_ns, actions[next_action].wall_ns);
    int wait_ms = static_cast<int>((next_ns - now_ns) / 1'000'000);
    wait_ms = std::max(1, std::min(wait_ms, 20));
    if (orch.wait_readable(wait_ms)) {
      // Drain late handshake duplicates so the socket never stays hot.
      while (orch.recv(buf, sizeof buf) > 0) {
      }
    }
  }

  // -- shutdown: Stop, then bounded reap ------------------------------------
  {
    const std::size_t len = encode_stop(buf, sizeof buf);
    broadcast(orch, ports, reaped, buf, len);
  }
  const auto grace_deadline = Clock::now() + std::chrono::milliseconds(opt.node_timeout_ms);
  for (std::size_t i = 0; i < opt.n; ++i) {
    while (!reaped[i]) {
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(res.nodes[i].pid), &status, WNOHANG);
      if (r > 0) {
        decode_status(res.nodes[i], status);
        reaped[i] = true;
        break;
      }
      if (Clock::now() >= grace_deadline) {
        // Wedged (or just too slow): the supervisor guarantee — a stuck
        // node fails the run, it never hangs it.
        kill_and_reap(i);
        res.nodes[i].timed_out = true;
        break;
      }
      ::usleep(2'000);
    }
  }

  // -- ship + merge the logs ------------------------------------------------
  res.parts.reserve(opt.n);
  for (std::size_t i = 0; i < opt.n; ++i) {
    res.parts.push_back(rt::load_recording(res.nodes[i].log_path));
  }
  res.merged = rt::merge_recordings(res.parts, res.crashes);

  res.ok = true;
  for (std::size_t i = 0; i < opt.n; ++i) {
    const NodeOutcome& o = res.nodes[i];
    if (o.killed_by_plan) continue;
    if (o.timed_out || o.signaled || o.exit_code != 0) {
      res.ok = false;
      if (res.error.empty()) {
        res.error = "node " + std::to_string(i) +
                    (o.timed_out ? " timed out"
                     : o.signaled
                         ? " died on signal " + std::to_string(o.term_signal)
                         : " exited with code " + std::to_string(o.exit_code));
      }
    }
  }
  return res;
}

}  // namespace ekbd::netproc
