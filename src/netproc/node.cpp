#include "netproc/node.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace ekbd::netproc {

namespace {
/// Same salt as the rt engine's per-sender fault streams: the socket
/// filter's coins are forked per sender id from (seed ^ salt), so each
/// node's drop/dup schedule is independent and seed-deterministic.
constexpr std::uint64_t kFaultSalt = 0x9e3779b97f4a7c15ULL;

std::uint64_t fault_seed(std::uint64_t seed, sim::ProcessId self) {
  return sim::Rng(seed ^ kFaultSalt).fork(static_cast<std::uint64_t>(self) + 1).u64();
}
}  // namespace

NodeEngine::NodeEngine(NodeConfig cfg)
    : cfg_(std::move(cfg)),
      clock_(cfg_.tick_ns),
      writer_(cfg_.log_path),
      filter_(fault_seed(cfg_.seed, cfg_.self), cfg_.link_faults),
      rng_(sim::Rng(cfg_.seed).fork(static_cast<std::uint64_t>(cfg_.self) + 1)),
      crashed_(cfg_.n, 0) {
  for (const net::Partition& p : cfg_.partitions) filter_.add_partition(p);
  for (const net::EdgeCut& c : cfg_.edge_cuts) filter_.add_edge_cut(c);
  // Stream every record to disk as it happens: a SIGKILL mid-run loses at
  // most the record being written (rt/log_io is frame-per-record).
  rec_.set_event_sink(&writer_);
  rec_.set_trace_observer(&writer_);
}

NodeEngine::~NodeEngine() = default;

void NodeEngine::set_actor(std::unique_ptr<sim::Actor> actor) {
  assert(actor_ == nullptr && "one actor per node process");
  bind(*actor, this, cfg_.self);
  actor_ = std::move(actor);
}

void NodeEngine::install_arq(net::ReliableTransport::Params params,
                             const fd::FailureDetector* detector) {
  assert(arq_ == nullptr && !started_);
  detector_ = detector;
  arq_ = std::make_unique<net::ReliableTransport>(static_cast<net::ArqEnv&>(*this),
                                                  params, detector);
}

void NodeEngine::call_after(sim::Time delay, std::function<void()> fn) {
  const sim::TimerId id = next_timer_id_++;
  calls_.emplace(id, std::move(fn));
  timers_.push(TimerEntry{now() + (delay < 0 ? 0 : delay), id});
}

// -- sim::TransportIface -----------------------------------------------------

void NodeEngine::send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                      sim::MsgLayer layer) {
  if (to < 0 || static_cast<std::size_t>(to) >= cfg_.n) return;
  if (arq_ != nullptr && arq_->covers(layer)) {
    arq_->logical_send(from, to, payload, layer);
    return;
  }
  raw_send(from, to, payload, layer);
}

sim::TimerId NodeEngine::set_timer(sim::ProcessId owner, sim::Time delay) {
  assert(owner == cfg_.self && "only this node's actor arms timers here");
  (void)owner;
  const sim::TimerId id = next_timer_id_++;
  active_.insert(id);
  timers_.push(TimerEntry{now() + (delay < 0 ? 0 : delay), id});
  return id;
}

void NodeEngine::cancel_timer(sim::ProcessId owner, sim::TimerId id) {
  (void)owner;
  active_.erase(id);
}

sim::Rng& NodeEngine::actor_rng(sim::ProcessId p) {
  assert(p == cfg_.self && "only this node's actor draws here");
  (void)p;
  return rng_;
}

// -- raw datagram path -------------------------------------------------------

void NodeEngine::raw_send(sim::ProcessId from, sim::ProcessId to,
                          const sim::Payload& payload, sim::MsgLayer layer) {
  const sim::Time t = now();
  sim::Message m;
  m.from = from;
  m.to = to;
  m.layer = layer;
  m.payload = payload;

  // The injected adversary decides at the socket boundary, before the
  // kernel sees the datagram; the wire underneath adds whatever loss and
  // reordering it genuinely has (the reorder coin is redundant here and
  // only keeps the counters comparable across engines).
  const sim::FaultDecision d = filter_.on_send(from, to, layer, t);

  // The local books stamp the send; the matching settle happens in the
  // *receiver's* process. Each node's Network is a local ledger — the
  // cluster-wide books are rebuilt from the merged logs (rt/log_io), so
  // an in-flight entry that never settles locally is expected, and
  // Network::delivered on a direction this node never stamped is a no-op.
  rec_.on_send(m, t, peer_crashed(to), d.drop, d.partitioned);
  if (d.drop) return;
  transmit(m);
  if (d.duplicate) {
    sim::Message copy = m;
    rec_.on_duplicate(copy, now(), peer_crashed(to));
    transmit(copy);
  }
}

void NodeEngine::transmit(const sim::Message& m) {
  const std::size_t len = codec::encode_message(m, buf_, sizeof buf_);
  if (len == 0) return;  // payload refused by the codec (cannot happen for
                         // the closed wire set; belt and braces)
  // Best-effort: a failed sendto is one more lost datagram, which the
  // layers above already absorb.
  (void)sock_.send_to(ports_[static_cast<std::size_t>(m.to)], buf_, len);
}

// -- net::ArqEnv -------------------------------------------------------------

std::uint64_t NodeEngine::book_logical_send(sim::ProcessId from, sim::ProcessId to,
                                            const sim::Payload& payload,
                                            sim::MsgLayer layer) {
  return rec_.on_logical_send(from, to, sim::payload_tag(payload), layer, now(),
                              peer_crashed(to));
}

void NodeEngine::book_logical_drop(sim::ProcessId from, sim::ProcessId to,
                                   const sim::Payload& payload, sim::MsgLayer layer,
                                   std::uint64_t logical_seq) {
  rec_.on_logical_drop(from, to, sim::payload_tag(payload), layer, logical_seq, now());
}

void NodeEngine::physical_send(sim::ProcessId from, sim::ProcessId to,
                               const sim::Payload& payload) {
  raw_send(from, to, payload, sim::MsgLayer::kTransport);
}

void NodeEngine::deliver_logical(sim::ProcessId from, sim::ProcessId to,
                                 const sim::Payload& payload, sim::MsgLayer layer,
                                 std::uint64_t logical_seq, sim::Time sent_at) {
  const sim::Time t =
      rec_.on_logical_deliver(from, to, sim::payload_tag(payload), layer, logical_seq,
                              now());
  sim::Message m;
  m.from = from;
  m.to = to;
  m.sent_at = sent_at;
  m.deliver_at = t;
  m.layer = layer;
  m.seq = logical_seq;
  m.payload = payload;
  actor_->on_message(m);
}

void NodeEngine::schedule_on(sim::ProcessId owner, sim::Time delay,
                             std::function<void()> fn) {
  assert(owner == cfg_.self);
  (void)owner;
  call_after(delay, std::move(fn));
}

// -- socket pump -------------------------------------------------------------

void NodeEngine::drain_socket() {
  std::uint8_t in[codec::kMaxFrameSize];
  int len = 0;
  while ((len = sock_.recv(in, sizeof in)) > 0) {
    std::uint8_t kind = 0;
    const std::uint8_t* body = nullptr;
    std::size_t body_len = 0;
    // A frame that fails the checksum (bit flip, kernel truncation, stray
    // datagram) is rejected wholesale — never parsed, never UB.
    if (codec::open_frame(in, static_cast<std::size_t>(len), kind, body, body_len) !=
        codec::DecodeStatus::kOk) {
      continue;
    }
    handle_frame(kind, body, body_len);
    if (stop_) return;
  }
}

void NodeEngine::handle_frame(std::uint8_t kind, const std::uint8_t* body,
                              std::size_t len) {
  if (kind >= static_cast<std::uint8_t>(codec::FrameKind::kControlBase)) {
    handle_control(kind, body, len);
    return;
  }
  if (kind == static_cast<std::uint8_t>(codec::FrameKind::kMessage)) {
    sim::Message m;
    if (codec::decode_message(body, len, m) == codec::DecodeStatus::kOk &&
        m.to == cfg_.self) {
      handle_data(std::move(m));
    }
  }
  // Other data-plane kinds (kEvent/kTrace/kEndTime) never travel between
  // nodes; ignore them like any other stray datagram.
}

void NodeEngine::handle_data(sim::Message m) {
  // This node is self-evidently alive to receive; kDrop-on-corpse cannot
  // happen here (a SIGKILLed node simply stops reading its socket).
  rec_.on_deliver(m, now(), /*target_crashed=*/false);
  if (arq_ != nullptr && m.layer == sim::MsgLayer::kTransport &&
      arq_->on_physical_deliver(m)) {
    return;  // ARQ segment, consumed (logical deliveries were dispatched)
  }
  actor_->on_message(m);
}

void NodeEngine::handle_control(std::uint8_t kind, const std::uint8_t* body,
                                std::size_t len) {
  switch (static_cast<ControlKind>(kind)) {
    case ControlKind::kCrashNotice: {
      CrashNotice c;
      if (decode_crash_notice(body, len, c) && c.node >= 0 &&
          static_cast<std::size_t>(c.node) < crashed_.size()) {
        crashed_[static_cast<std::size_t>(c.node)] = 1;
      }
      break;
    }
    case ControlKind::kCut: {
      Cut c;
      if (decode_cut(body, len, c)) {
        filter_.add_edge_cut(net::EdgeCut{c.a, c.b, c.from, c.until});
      }
      break;
    }
    case ControlKind::kSplit: {
      Split s;
      if (decode_split(body, len, s)) {
        net::Partition p;
        p.from = s.from;
        p.until = s.until;
        for (std::size_t i = 0; i < cfg_.n && i < 64; ++i) {
          if ((s.side_mask >> i) & 1ULL) p.side.push_back(static_cast<sim::ProcessId>(i));
        }
        filter_.add_partition(std::move(p));
      }
      break;
    }
    case ControlKind::kStop:
      stop_ = true;
      break;
    case ControlKind::kStart:   // late duplicate of the handshake reply
    case ControlKind::kHello:   // not ours to answer
      break;
  }
}

// -- timers ------------------------------------------------------------------

void NodeEngine::fire_due_timers() {
  while (!stop_ && !timers_.empty()) {
    const TimerEntry e = timers_.top();
    if (e.at > now()) return;
    timers_.pop();
    auto c = calls_.find(e.id);
    if (c != calls_.end()) {
      auto fn = std::move(c->second);
      calls_.erase(c);
      fn();
      continue;
    }
    if (active_.erase(e.id) > 0) {
      rec_.on_timer(cfg_.self, now());
      actor_->on_timer(e.id);
    }
  }
}

// -- run ---------------------------------------------------------------------

bool NodeEngine::handshake() {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(cfg_.handshake_timeout_ms);
  Hello hello{cfg_.self, sock_.port()};

  while (Clock::now() < deadline) {
    std::uint8_t out[64];
    const std::size_t len = encode_hello(hello, out, sizeof out);
    (void)sock_.send_to(cfg_.orch_port, out, len);

    const auto resend_at = Clock::now() + std::chrono::milliseconds(50);
    while (Clock::now() < resend_at) {
      sock_.wait_readable(10);
      std::uint8_t in[codec::kMaxFrameSize];
      int r = 0;
      while ((r = sock_.recv(in, sizeof in)) > 0) {
        std::uint8_t kind = 0;
        const std::uint8_t* body = nullptr;
        std::size_t body_len = 0;
        if (codec::open_frame(in, static_cast<std::size_t>(r), kind, body, body_len) !=
            codec::DecodeStatus::kOk) {
          continue;
        }
        if (kind != static_cast<std::uint8_t>(ControlKind::kStart)) continue;
        Start start;
        if (!decode_start(body, body_len, start) || start.ports.size() != cfg_.n) continue;
        ports_ = start.ports;
        // All nodes rebase to the same CLOCK_MONOTONIC instant: their tick
        // streams share an origin and the merged logs linearize.
        clock_.rebase_to_epoch(start.epoch_ns);
        return true;
      }
    }
  }
  return false;
}

int NodeEngine::run() {
  if (!sock_.ok() || !writer_.ok() || actor_ == nullptr) return kNodeSetupFailed;
  if (!handshake()) return kNodeHandshakeTimeout;

  started_ = true;
  actor_->on_start();

  while (!stop_) {
    if (now() >= cfg_.horizon) break;
    fire_due_timers();
    drain_socket();
    if (stop_) break;

    sim::Time next = cfg_.horizon;
    if (!timers_.empty() && timers_.top().at < next) next = timers_.top().at;
    const sim::Time cur = now();
    if (next <= cur) continue;
    const std::int64_t ns =
        (next - cur) * static_cast<std::int64_t>(cfg_.tick_ns);
    int wait_ms = static_cast<int>(ns / 1'000'000);
    if (wait_ms > 5) wait_ms = 5;  // stay responsive to control frames
    sock_.wait_readable(wait_ms);
  }

  if (cfg_.wedge) {
    // Supervision-test mode: never finish. The orchestrator's per-node
    // timeout must SIGKILL us — if it doesn't, the test hangs, which is
    // exactly the failure the timeout exists to prevent.
    for (;;) sock_.wait_readable(1000);
  }

  rec_.set_end_time(cfg_.horizon);
  writer_.append_end_time(cfg_.horizon);
  writer_.close();
  return kNodeOk;
}

}  // namespace ekbd::netproc
