#include "net/link_fault_model.hpp"

#include <algorithm>

namespace ekbd::net {

LinkFaultModel::LinkFaultModel(std::uint64_t seed, LinkFaultParams defaults)
    : rng_(seed), defaults_(defaults) {}

void LinkFaultModel::set_link_params(ProcessId a, ProcessId b, LinkFaultParams params) {
  per_link_[undirected_key(a, b)] = params;
}

const LinkFaultParams& LinkFaultModel::params_for(ProcessId a, ProcessId b) const {
  const auto it = per_link_.find(undirected_key(a, b));
  return it == per_link_.end() ? defaults_ : it->second;
}

bool LinkFaultModel::cut(ProcessId from, ProcessId to, Time now) const {
  for (const Partition& p : partitions_) {
    if (now < p.from || (p.until >= 0 && now >= p.until)) continue;
    bool from_inside = false;
    bool to_inside = false;
    for (ProcessId v : p.side) {
      if (v == from) from_inside = true;
      if (v == to) to_inside = true;
    }
    if (from_inside != to_inside) return true;  // the message crosses the cut
  }
  for (const EdgeCut& c : edge_cuts_) {
    if (now < c.from || (c.until >= 0 && now >= c.until)) continue;
    if ((c.a == from && c.b == to) || (c.a == to && c.b == from)) return true;
  }
  return false;
}

Time LinkFaultModel::last_heal_time() const {
  Time heal = 0;
  for (const Partition& p : partitions_) {
    if (p.until < 0) return -1;
    heal = std::max(heal, p.until);
  }
  for (const EdgeCut& c : edge_cuts_) {
    if (c.until < 0) return -1;
    heal = std::max(heal, c.until);
  }
  return heal;
}

void LinkFaultModel::notify(FaultEvent::Kind kind, ProcessId from, ProcessId to, Time at) {
  if (observer_) observer_(FaultEvent{kind, from, to, at});
}

ekbd::sim::FaultDecision LinkFaultModel::on_send(ProcessId from, ProcessId to,
                                                 MsgLayer layer, Time now) {
  (void)layer;  // the adversary is layer-blind: it attacks the wire
  ++sends_seen_;
  ekbd::sim::FaultDecision d;
  if (cut(from, to, now)) {
    d.drop = true;
    d.partitioned = true;
    ++partition_drops_;
    notify(FaultEvent::Kind::kPartitionDrop, from, to, now);
    return d;
  }
  // Draw the coins in a fixed order (drop, dup, reorder) so the schedule
  // is a pure function of (seed, send order, params).
  const LinkFaultParams& p = params_for(from, to);
  const bool drop = rng_.chance(p.drop_prob);
  const bool dup = rng_.chance(p.dup_prob);
  const bool reorder = rng_.chance(p.reorder_prob);
  if (drop) {
    d.drop = true;
    ++drops_;
    notify(FaultEvent::Kind::kDrop, from, to, now);
    return d;
  }
  if (dup) {
    d.duplicate = true;
    ++duplicates_;
    notify(FaultEvent::Kind::kDuplicate, from, to, now);
  }
  if (reorder) {
    d.reorder = true;
    ++reorders_;
    notify(FaultEvent::Kind::kReorder, from, to, now);
  }
  return d;
}

}  // namespace ekbd::net
