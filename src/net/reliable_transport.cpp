#include "net/reliable_transport.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ekbd::net {

using ekbd::sim::LoggedEvent;
using ekbd::sim::Payload;

// -- SimEnv: the deterministic-simulator adapter ---------------------------

std::uint64_t ReliableTransport::SimEnv::book_logical_send(ProcessId from, ProcessId to,
                                                           const Payload& payload,
                                                           MsgLayer layer) {
  const Time now = sim_.now();
  const std::uint64_t logical_seq =
      sim_.network().logical_sent(from, to, layer, now, sim_.crashed(to));
  sim_.append_log(LoggedEvent{now, LoggedEvent::Kind::kSend, from, to, layer, logical_seq,
                              sim::payload_tag(payload)});
  return logical_seq;
}

void ReliableTransport::SimEnv::book_logical_drop(ProcessId from, ProcessId to,
                                                  const Payload& payload, MsgLayer layer,
                                                  std::uint64_t logical_seq) {
  sim_.network().logical_dropped(from, to, layer);
  sim_.append_log(LoggedEvent{sim_.now(), LoggedEvent::Kind::kDrop, from, to, layer,
                              logical_seq, sim::payload_tag(payload)});
}

void ReliableTransport::SimEnv::physical_send(ProcessId from, ProcessId to,
                                              const Payload& payload) {
  sim_.raw_send(from, to, payload, MsgLayer::kTransport);
}

void ReliableTransport::SimEnv::deliver_logical(ProcessId from, ProcessId to,
                                                const Payload& payload, MsgLayer layer,
                                                std::uint64_t logical_seq, Time sent_at) {
  sim_.deliver_logical(from, to, payload, layer, logical_seq, sent_at);
}

void ReliableTransport::SimEnv::schedule_on(ProcessId /*owner*/, Time delay,
                                            std::function<void()> fn) {
  // One event loop for everyone: the owner is irrelevant here.
  sim_.schedule_in(delay, std::move(fn));
}

// -- ReliableTransport -----------------------------------------------------

ReliableTransport::ReliableTransport(ekbd::sim::Simulator& sim, Params params,
                                     const ekbd::fd::FailureDetector* detector)
    : sim_env_(std::make_unique<SimEnv>(sim)),
      env_(sim_env_.get()),
      sim_(&sim),
      params_(params),
      detector_(detector) {
  sim_->set_transport(this);
}

ReliableTransport::ReliableTransport(ArqEnv& env, Params params,
                                     const ekbd::fd::FailureDetector* detector)
    : env_(&env), params_(params), detector_(detector) {}

ReliableTransport::~ReliableTransport() {
  // The shim must be torn down before the simulator (both the scenario
  // layer and stack usage guarantee this); detach so a later run of the
  // same simulator cannot touch a dead transport.
  if (sim_ != nullptr && sim_->transport() == this) sim_->set_transport(nullptr);
}

bool ReliableTransport::covers(MsgLayer layer) const {
  switch (layer) {
    case MsgLayer::kDining: return params_.cover_dining;
    case MsgLayer::kOther: return params_.cover_other;
    case MsgLayer::kDetector:
    case MsgLayer::kTransport: return false;
  }
  return false;
}

bool ReliableTransport::suspected(ProcessId owner, ProcessId target) const {
  return detector_ != nullptr && detector_->suspects(owner, target);
}

void ReliableTransport::logical_send(ProcessId from, ProcessId to, const Payload& payload,
                                     MsgLayer layer) {
  ++logical_sends_;
  const Time now = env_->now();
  const std::uint64_t logical_seq = env_->book_logical_send(from, to, payload, layer);

  EdgeTx& tx = tx_[edge_key(from, to)];
  const std::uint64_t seq = tx.next_seq++;
  tx.unacked.emplace(seq, PendingMsg{payload, layer, logical_seq, now});
  // While ◇P₁ suspects the peer, NOTHING goes on the wire — not even the
  // first copy. The message waits in the queue; the timer loop transmits
  // it if/when the suspicion is retracted.
  if (!suspected(from, to)) transmit(from, to, tx, seq);
  if (!tx.timer_armed) {
    tx.rto = params_.rto_initial;
    arm_timer(from, to, tx, tx.rto);
  }
}

void ReliableTransport::transmit(ProcessId from, ProcessId to, EdgeTx& tx,
                                 std::uint64_t seq) {
  const auto it = tx.unacked.find(seq);
  if (it == tx.unacked.end()) return;
  const PendingMsg& pm = it->second;
  // Nest the logical payload as (tag, bits): covered layers only ever
  // carry word-sized wire types (§7 constant-size records), so the pack
  // cannot fail; the bit-packed counters bound a run far above any
  // experiment here (see sim/payload.hpp).
  std::uint8_t tag = 0;
  std::uint64_t bits = 0;
  [[maybe_unused]] const bool packed = sim::pack_payload(pm.payload, tag, bits);
  assert(packed && "transported payloads must fit the 8-byte inline encoding");
  assert(seq <= DataSegment::kMaxSeq && pm.logical_seq <= DataSegment::kMaxLogicalSeq);
  env_->physical_send(
      from, to,
      DataSegment{seq, pm.layer, pm.logical_seq, pm.logical_sent_at, tag, bits});
  ++physical_data_sends_;
  tx.last_data_send = env_->now();
  last_data_send_to_[to] = env_->now();
}

Time ReliableTransport::jittered(EdgeTx& tx, std::uint64_t key, Time delay) {
  if (params_.rto_jitter <= 0.0) return delay;
  if (tx.jitter == nullptr) {
    // Stream identity = (jitter_seed, edge): independent of arrival order
    // across edges, reproducible per edge for a fixed seed.
    tx.jitter = std::make_unique<sim::Rng>(sim::Rng(params_.jitter_seed).fork(key));
  }
  const double stretch = 1.0 + tx.jitter->uniform_real(0.0, params_.rto_jitter);
  return std::max<Time>(static_cast<Time>(static_cast<double>(delay) * stretch), 1);
}

void ReliableTransport::arm_timer(ProcessId from, ProcessId to, EdgeTx& tx, Time delay) {
  tx.timer_armed = true;
  const std::uint64_t gen = ++tx.timer_gen;
  delay = jittered(tx, edge_key(from, to), delay);
  tx.armed_delays.push_back(delay);
  env_->schedule_on(from, delay, [this, from, to, gen] { on_timer(from, to, gen); });
}

void ReliableTransport::on_timer(ProcessId from, ProcessId to, std::uint64_t gen) {
  EdgeTx& tx = tx_[edge_key(from, to)];
  if (gen != tx.timer_gen) return;  // superseded by an ack or a re-arm
  tx.timer_armed = false;
  if (tx.unacked.empty()) return;
  if (env_->crashed(from)) {
    // The sender died: whatever it had queued left no trace on the wire.
    abandon(from, to, tx);
    return;
  }
  if (suspected(from, to)) {
    if (env_->crashed(to)) {
      // Suspected and actually dead — crash-stop means the peer can never
      // return, so the queue is garbage; discard it and go fully quiet.
      // (Traffic already quiesced the moment suspicion was raised.)
      abandon(from, to, tx);
      return;
    }
    // ◇P₁ may be lying about a live peer: transmit nothing while the
    // suspicion stands, but keep the queue and keep checking at the
    // capped cadence — accuracy guarantees the suspicion is eventually
    // retracted, and then delivery resumes. No message to a correct
    // process is ever lost.
    arm_timer(from, to, tx, params_.rto_max);
    return;
  }
  // Go-back-N: retransmit everything outstanding (cumulative acks make
  // redundant copies harmless), then back off exponentially up to the cap.
  for (const auto& [seq, pm] : tx.unacked) {
    transmit(from, to, tx, seq);
    ++retransmissions_;
  }
  tx.rto = std::min<Time>(static_cast<Time>(static_cast<double>(tx.rto) * params_.rto_backoff),
                          params_.rto_max);
  tx.rto = std::max<Time>(tx.rto, 1);
  if (tx.rto > max_rto_reached_) max_rto_reached_ = tx.rto;
  arm_timer(from, to, tx, tx.rto);
}

void ReliableTransport::abandon(ProcessId from, ProcessId to, EdgeTx& tx) {
  // A queued segment may be unacked yet already delivered (the data made
  // it, the ack was lost): the receiver's in-order cursor is the ground
  // truth, and those segments settled their books at delivery time — only
  // genuinely undelivered ones are written off here.
  const auto rx_it = rx_.find(edge_key(from, to));
  const std::uint64_t delivered_below = rx_it == rx_.end() ? 0 : rx_it->second.expected;
  for (const auto& [seq, pm] : tx.unacked) {
    if (seq < delivered_below) continue;
    env_->book_logical_drop(from, to, pm.payload, pm.layer, pm.logical_seq);
    ++abandoned_to_dead_;
  }
  tx.unacked.clear();
  tx.timer_armed = false;
  ++tx.timer_gen;
  // Copies of the written-off segments may still be on the wire (e.g. the
  // sender crashed with data in flight). Their fate is sealed — refuse
  // delivery so no message is booked both dropped and delivered.
  dead_edges_.insert(edge_key(from, to));
}

bool ReliableTransport::on_physical_deliver(const ekbd::sim::Message& m) {
  if (m.layer != MsgLayer::kTransport) return false;
  if (const auto* ds = m.as<DataSegment>()) {
    handle_data(m, *ds);
    return true;
  }
  if (const auto* ack = m.as<AckSegment>()) {
    handle_ack(m, *ack);
    return true;
  }
  return false;
}

void ReliableTransport::handle_data(const ekbd::sim::Message& m, const DataSegment& ds) {
  if (dead_edges_.count(edge_key(m.from, m.to)) != 0) {
    // The edge was abandoned (sender or receiver dead); anything still
    // arriving was already booked as dropped.
    ++duplicates_suppressed_;
    return;
  }
  EdgeRx& rx = rx_[edge_key(m.from, m.to)];
  if (ds.seq() < rx.expected || rx.buffered.count(ds.seq()) != 0) {
    ++duplicates_suppressed_;  // retransmit or adversary copy — drop it
  } else {
    rx.buffered.emplace(ds.seq(),
                        PendingMsg{sim::unpack_payload(ds.inner_tag(), ds.inner_bits),
                                   ds.layer(), ds.logical_seq(), ds.logical_sent_at});
    // Release the in-order prefix to the actor (reliable FIFO restored).
    while (!rx.buffered.empty() && rx.buffered.begin()->first == rx.expected) {
      auto node = rx.buffered.extract(rx.buffered.begin());
      PendingMsg pm = std::move(node.mapped());
      ++rx.expected;
      ++logical_deliveries_;
      env_->deliver_logical(m.from, m.to, pm.payload, pm.layer, pm.logical_seq,
                            pm.logical_sent_at);
    }
  }
  // Always (re-)acknowledge: a duplicate usually means our previous ack
  // was lost, and cumulative acks are idempotent.
  env_->physical_send(m.to, m.from, AckSegment{rx.expected});
  ++physical_ack_sends_;
}

void ReliableTransport::handle_ack(const ekbd::sim::Message& m, const AckSegment& ack) {
  // The ack traveled m.from -> m.to about data flowing m.to -> m.from.
  const auto it = tx_.find(edge_key(m.to, m.from));
  if (it == tx_.end()) return;
  EdgeTx& tx = it->second;
  bool progress = false;
  while (!tx.unacked.empty() && tx.unacked.begin()->first < ack.cumulative) {
    tx.unacked.erase(tx.unacked.begin());
    progress = true;
  }
  if (tx.unacked.empty()) {
    tx.timer_armed = false;
    ++tx.timer_gen;  // cancel the pending retransmission
    tx.rto = params_.rto_initial;
  } else if (progress) {
    // Fresh evidence the link works: reset the backoff and restart the
    // clock for the remaining queue.
    tx.rto = params_.rto_initial;
    arm_timer(m.to, m.from, tx, tx.rto);
  }
}

Time ReliableTransport::last_data_send_to(ProcessId to) const {
  const auto it = last_data_send_to_.find(to);
  return it == last_data_send_to_.end() ? -1 : it->second;
}

Time ReliableTransport::last_data_send(ProcessId from, ProcessId to) const {
  const auto it = tx_.find(edge_key(from, to));
  return it == tx_.end() ? -1 : it->second.last_data_send;
}

const std::vector<Time>& ReliableTransport::armed_delays(ProcessId from,
                                                         ProcessId to) const {
  static const std::vector<Time> kEmpty;
  const auto it = tx_.find(edge_key(from, to));
  return it == tx_.end() ? kEmpty : it->second.armed_delays;
}

}  // namespace ekbd::net
