/// \file reliable_transport.hpp
/// ARQ shim: reliable FIFO channels over a fair-lossy, duplicating,
/// reordering network.
///
/// The standard construction (Aspnes, *Notes on Theory of Distributed
/// Systems*; Stenning's protocol): per directed edge the sender numbers
/// logical messages 0, 1, 2, ..., keeps everything unacknowledged in a
/// retransmission queue, and retransmits on a timeout with exponential
/// backoff capped at `rto_max`; the receiver delivers strictly in sequence
/// order (buffering out-of-order arrivals, suppressing duplicates) and
/// answers every data segment with a cumulative acknowledgement. The
/// dining/doorway/fork layers above see exactly the reliable FIFO channel
/// the paper assumes — loss, duplication and reordering are absorbed here.
///
/// The protocol state machine is engine-agnostic: every interaction with
/// the world goes through `ArqEnv` (net/arq_env.hpp), so the same shim
/// runs under the deterministic simulator, the real-threads runtime
/// (rt::RtArq) and the multi-process socket engine (netproc::NodeEngine).
/// The Simulator constructor below builds the sim adapter internally and
/// installs itself with `set_transport`, preserving the historical
/// behavior bit for bit.
///
/// Accounting: physical segments travel on MsgLayer::kTransport; the
/// *logical* messages are booked on their own layer via
/// Network::logical_sent / logical_delivered, so the §7 bound (≤ 4 dining
/// messages in transit per edge) and the quiescence checker read off the
/// same Network API in raw and transport modes, and retransmit overhead is
/// the visible difference between the kTransport and logical books.
///
/// Quiescence toward dead peers: a retransmission loop consults the ◇P₁
/// oracle. While the sender suspects the peer it transmits nothing (the
/// loop idles at the capped timeout); if the suspicion is a ◇P₁ mistake it
/// is eventually retracted and retransmission resumes — no logical message
/// to a correct process is ever abandoned. Only when the peer is suspected
/// *and* has actually crashed (crash-stop: it can never return) is the
/// queue discarded and the loop stopped — the ground truth is used purely
/// to garbage-collect state; traffic quiescence is driven by suspicion
/// alone, so a permanently partitioned (live but unreachable) peer also
/// goes quiet as soon as ◇P₁ suspects it.
///
/// Retransmit desynchronization: after a partition heals, every cut edge's
/// backoff clock would fire in lockstep (they all saturated at `rto_max`
/// on the same schedule), hammering the just-healed link with a
/// synchronized retransmit storm. `rto_jitter` stretches each armed
/// timeout by an independent per-edge random factor in
/// [1, 1 + rto_jitter] — drawn from a stream seeded by (jitter_seed, edge)
/// only, so the schedule is bit-deterministic per edge for a fixed seed
/// while distinct edges decorrelate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fd/detector.hpp"
#include "net/arq_env.hpp"
#include "sim/net_hooks.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ekbd::net {

using ekbd::sim::MsgLayer;
using ekbd::sim::ProcessId;
using ekbd::sim::Time;

// The DataSegment / AckSegment wire structs are defined in
// sim/payload.hpp (every wire type is an alternative of the closed
// sim::Payload variant). A DataSegment carries one logical message per
// segment, nested as (variant tag, raw bytes) via sim::pack_payload.

class ReliableTransport final : public ekbd::sim::Transport {
 public:
  struct Params {
    Time rto_initial = 40;    ///< first retransmission timeout
    double rto_backoff = 2.0; ///< multiplicative backoff per retry
    Time rto_max = 1'500;     ///< backoff cap (also the idle-probe cadence)
    /// Per-edge timeout stretch: each armed timeout is multiplied by an
    /// independent draw from [1, 1 + rto_jitter]. 0 disables (exact
    /// legacy schedule); ~0.3 is plenty to break post-heal storms.
    double rto_jitter = 0.0;
    /// Seed of the per-edge jitter streams (independent of every other
    /// stream in the run; only consulted when rto_jitter > 0).
    std::uint64_t jitter_seed = 1;
    /// Layers carried by the ARQ. Detector traffic deliberately stays raw:
    /// ◇P₁ implementations are loss-tolerant by design and retransmitting
    /// heartbeats would falsify their timing assumptions.
    bool cover_dining = true;
    bool cover_other = true;
  };

  /// Installs itself on `sim` (set_transport). `detector` (may be null)
  /// gates retransmission quiescence; pass the same oracle the diners use.
  ReliableTransport(ekbd::sim::Simulator& sim, Params params,
                    const ekbd::fd::FailureDetector* detector = nullptr);

  /// Engine-agnostic: run the ARQ over an arbitrary environment (rt, the
  /// socket engine, tests). The caller owns the wiring — it must route
  /// covered logical sends into `logical_send` and physical kTransport
  /// deliveries into `on_physical_deliver`; `env` must outlive the shim.
  ReliableTransport(ArqEnv& env, Params params,
                    const ekbd::fd::FailureDetector* detector = nullptr);

  ~ReliableTransport() override;

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  // -- sim::Transport ----------------------------------------------------

  [[nodiscard]] bool covers(MsgLayer layer) const override;
  void logical_send(ProcessId from, ProcessId to, const ekbd::sim::Payload& payload,
                    MsgLayer layer) override;
  bool on_physical_deliver(const ekbd::sim::Message& m) override;

  // -- instrumentation ---------------------------------------------------

  [[nodiscard]] std::uint64_t logical_sends() const { return logical_sends_; }
  [[nodiscard]] std::uint64_t logical_deliveries() const { return logical_deliveries_; }
  [[nodiscard]] std::uint64_t physical_data_sends() const { return physical_data_sends_; }
  [[nodiscard]] std::uint64_t physical_ack_sends() const { return physical_ack_sends_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  [[nodiscard]] std::uint64_t abandoned_to_dead() const { return abandoned_to_dead_; }

  /// Highest RTO the exponential backoff ever reached on any edge (0 if
  /// no retransmission round backed off): the "backoff level" telemetry
  /// signal — params_.rto_max here means some link stayed bad long
  /// enough to saturate the cap.
  [[nodiscard]] Time max_rto_reached() const { return max_rto_reached_; }

  /// Physical overhead factor: data segments sent per logical message
  /// (1.0 = no retransmissions; loss-free link).
  [[nodiscard]] double overhead() const {
    return logical_sends_ == 0
               ? 1.0
               : static_cast<double>(physical_data_sends_) /
                     static_cast<double>(logical_sends_);
  }

  /// Time of the most recent *data* transmission (first send or
  /// retransmit) toward `to` from anyone; -1 if none. The quiescence
  /// checks assert this stops advancing once ◇P₁ suspects a dead peer.
  [[nodiscard]] Time last_data_send_to(ProcessId to) const;

  /// Same clock for one directed edge only (-1 if it never carried data) —
  /// lets partition tests watch a single cut link while same-side traffic
  /// to the same receiver continues.
  [[nodiscard]] Time last_data_send(ProcessId from, ProcessId to) const;

  /// Logical messages accepted but neither delivered nor abandoned yet
  /// (in the sender queue or the receiver reorder buffer).
  [[nodiscard]] std::uint64_t logical_in_flight() const {
    return logical_sends_ - logical_deliveries_ - abandoned_to_dead_;
  }

  /// Every retransmission-timer arming on one directed edge, in order
  /// (the armed *delay*, after jitter). Test instrumentation for the
  /// desynchronization property; cheap enough to keep always on (a few
  /// words per timer arm, bounded by the run length).
  [[nodiscard]] const std::vector<Time>& armed_delays(ProcessId from, ProcessId to) const;

 private:
  struct PendingMsg {
    ekbd::sim::Payload payload;
    MsgLayer layer = MsgLayer::kOther;
    std::uint64_t logical_seq = 0;
    Time logical_sent_at = 0;
  };

  /// Sender half of one directed edge.
  struct EdgeTx {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, PendingMsg> unacked;  // seq -> message
    Time rto = 0;              ///< current timeout (0 = not initialized)
    std::uint64_t timer_gen = 0;  ///< invalidates stale scheduled closures
    bool timer_armed = false;
    Time last_data_send = -1;
    /// Per-edge jitter stream, created on first arm (rto_jitter > 0 only):
    /// seeded from (jitter_seed, edge) so the stretch sequence depends on
    /// nothing but the seed and this edge's own arm count.
    std::unique_ptr<ekbd::sim::Rng> jitter;
    std::vector<Time> armed_delays;  ///< instrumentation (see armed_delays())
  };

  /// Receiver half of one directed edge.
  struct EdgeRx {
    std::uint64_t expected = 0;                    // next in-order seq
    std::map<std::uint64_t, PendingMsg> buffered;  // out-of-order arrivals
  };

  static std::uint64_t edge_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(to));
  }

  void transmit(ProcessId from, ProcessId to, EdgeTx& tx, std::uint64_t seq);
  void arm_timer(ProcessId from, ProcessId to, EdgeTx& tx, Time delay);
  void on_timer(ProcessId from, ProcessId to, std::uint64_t gen);
  void handle_data(const ekbd::sim::Message& m, const DataSegment& ds);
  void handle_ack(const ekbd::sim::Message& m, const AckSegment& ack);
  void abandon(ProcessId from, ProcessId to, EdgeTx& tx);
  [[nodiscard]] bool suspected(ProcessId owner, ProcessId target) const;
  [[nodiscard]] Time jittered(EdgeTx& tx, std::uint64_t key, Time delay);

  /// Adapter welding the shim to the deterministic simulator (the
  /// historical coupling, now one implementation among three).
  class SimEnv final : public ArqEnv {
   public:
    explicit SimEnv(ekbd::sim::Simulator& sim) : sim_(sim) {}
    [[nodiscard]] Time now() const override { return sim_.now(); }
    [[nodiscard]] bool crashed(ProcessId p) const override { return sim_.crashed(p); }
    std::uint64_t book_logical_send(ProcessId from, ProcessId to,
                                    const ekbd::sim::Payload& payload,
                                    MsgLayer layer) override;
    void book_logical_drop(ProcessId from, ProcessId to, const ekbd::sim::Payload& payload,
                           MsgLayer layer, std::uint64_t logical_seq) override;
    void physical_send(ProcessId from, ProcessId to,
                       const ekbd::sim::Payload& payload) override;
    void deliver_logical(ProcessId from, ProcessId to, const ekbd::sim::Payload& payload,
                         MsgLayer layer, std::uint64_t logical_seq, Time sent_at) override;
    void schedule_on(ProcessId owner, Time delay, std::function<void()> fn) override;

   private:
    ekbd::sim::Simulator& sim_;
  };

  // sim_env_ before env_: env_ may point at it.
  std::unique_ptr<SimEnv> sim_env_;
  ArqEnv* env_;
  ekbd::sim::Simulator* sim_ = nullptr;  ///< install/detach only (sim ctor)
  Params params_;
  const ekbd::fd::FailureDetector* detector_;
  std::unordered_map<std::uint64_t, EdgeTx> tx_;
  std::unordered_map<std::uint64_t, EdgeRx> rx_;
  std::unordered_set<std::uint64_t> dead_edges_;  ///< abandoned directed edges
  std::unordered_map<ProcessId, Time> last_data_send_to_;
  std::uint64_t logical_sends_ = 0;
  std::uint64_t logical_deliveries_ = 0;
  std::uint64_t physical_data_sends_ = 0;
  std::uint64_t physical_ack_sends_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t abandoned_to_dead_ = 0;
  Time max_rto_reached_ = 0;
};

}  // namespace ekbd::net
