/// \file arq_env.hpp
/// The environment seam under the ARQ shim.
///
/// `ReliableTransport` implements Stenning's protocol — per-edge sequence
/// numbers, go-back-N retransmission, cumulative acks — and none of that
/// logic cares *where* the physical segments travel. Historically the
/// transport was welded to `sim::Simulator`; this interface extracts the
/// seven operations it actually uses, so the same ARQ state machine runs
/// under three engines:
///
///  * the deterministic simulator (`ReliableTransport`'s Simulator
///    constructor builds the adapter internally — behavior, logs and
///    digests are unchanged);
///  * the real-threads runtime (`rt::RtArq`, src/rt/arq.hpp): physical
///    segments ride the lock-free mailboxes, timers ride the wall clock,
///    one mutex serializes the shared per-edge state;
///  * the multi-process socket engine (`netproc::NodeEngine`,
///    src/netproc/node.hpp): segments ride real UDP datagrams between OS
///    processes and face genuine kernel loss on top of injected faults.
///
/// Contract notes:
///  * `book_logical_send` / `book_logical_drop` / `deliver_logical` settle
///    the *logical* books (Network::logical_*) and emit the kSend / kDrop /
///    kDeliver events — the §7 channel-bound and quiescence checkers read
///    the same accounting under every engine;
///  * `physical_send` transmits one MsgLayer::kTransport segment
///    best-effort (it may be lost; that is the transport's whole job);
///  * `schedule_on(owner, ...)` runs the closure on whatever execution
///    context `owner`'s handlers use — engines with per-process threads
///    need the owner to place the timer; the simulator ignores it. The
///    transport only ever schedules on the sending edge's owner, from that
///    owner's own context (the TransportIface timer discipline).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/payload.hpp"
#include "sim/time.hpp"

namespace ekbd::net {

class ArqEnv {
 public:
  virtual ~ArqEnv() = default;

  /// Current time in ticks.
  [[nodiscard]] virtual sim::Time now() const = 0;

  /// Crash ground truth (crash-stop: once true, forever true). Consulted
  /// only to garbage-collect the retransmission queue of a peer that is
  /// both suspected and actually dead — quiescence itself is driven by
  /// suspicion alone.
  [[nodiscard]] virtual bool crashed(sim::ProcessId p) const = 0;

  /// Book one logical message on its own layer (Network::logical_sent +
  /// a kSend event) and return its logical sequence number.
  virtual std::uint64_t book_logical_send(sim::ProcessId from, sim::ProcessId to,
                                          const sim::Payload& payload,
                                          sim::MsgLayer layer) = 0;

  /// Write off one logical message to a dead/unreachable peer
  /// (Network::logical_dropped + a kDrop event).
  virtual void book_logical_drop(sim::ProcessId from, sim::ProcessId to,
                                 const sim::Payload& payload, sim::MsgLayer layer,
                                 std::uint64_t logical_seq) = 0;

  /// Transmit one physical MsgLayer::kTransport segment, best-effort.
  virtual void physical_send(sim::ProcessId from, sim::ProcessId to,
                             const sim::Payload& payload) = 0;

  /// Release one logical message, in order, to the receiving actor
  /// (books + kDeliver + dispatch).
  virtual void deliver_logical(sim::ProcessId from, sim::ProcessId to,
                               const sim::Payload& payload, sim::MsgLayer layer,
                               std::uint64_t logical_seq, sim::Time sent_at) = 0;

  /// Run `fn` on `owner`'s execution context `delay` ticks from now.
  virtual void schedule_on(sim::ProcessId owner, sim::Time delay,
                           std::function<void()> fn) = 0;
};

}  // namespace ekbd::net
