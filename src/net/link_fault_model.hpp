/// \file link_fault_model.hpp
/// Composable channel adversary: probabilistic loss, duplication,
/// reordering, and scheduled partitions.
///
/// The paper assumes reliable FIFO channels; real links are fair-lossy at
/// best. This model is the adversary half of the net/ subsystem: plugged
/// into the simulator (Simulator::set_adversary) it decides, per physical
/// send and from its own explicitly seeded Rng, whether the message is
/// lost in flight, duplicated, or exempted from the per-channel FIFO
/// horizon — and whether the (from, to) link is currently cut by a
/// scheduled partition. The decisions are a pure function of
/// (seed, query order), so two runs of the same scenario replay the same
/// fault schedule; every fault is also recorded in the simulator's event
/// log (kLoss / kDuplicate / kPartitionLoss) and can be surfaced into the
/// dining trace via the observer hook.
///
/// Fairness caveat (what "fair-lossy" buys): drops are independent coin
/// flips with probability < 1, so a message retransmitted forever is
/// delivered eventually with probability 1 — exactly the premise the ARQ
/// layer (reliable_transport.hpp) needs to rebuild reliable FIFO channels.
/// Permanent partitions deliberately violate it; see docs/MODEL.md.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/net_hooks.hpp"
#include "sim/rng.hpp"

namespace ekbd::net {

using ekbd::sim::MsgLayer;
using ekbd::sim::ProcessId;
using ekbd::sim::Time;

/// Per-link fault probabilities (applied to each direction independently).
struct LinkFaultParams {
  double drop_prob = 0.0;     ///< lose the message in flight
  double dup_prob = 0.0;      ///< deliver an extra, independently delayed copy
  double reorder_prob = 0.0;  ///< ignore the per-channel FIFO horizon
};

/// Cut every link between `side` and its complement during [from, until).
/// `until < 0` means the partition never heals (permanent — outside the
/// paper's guarantee envelope; see docs/MODEL.md).
struct Partition {
  std::vector<ProcessId> side;
  Time from = 0;
  Time until = -1;
};

/// Cut one undirected edge {a, b} during [from, until) (`until < 0` =
/// permanent).
struct EdgeCut {
  ProcessId a = ekbd::sim::kNoProcess;
  ProcessId b = ekbd::sim::kNoProcess;
  Time from = 0;
  Time until = -1;
};

class LinkFaultModel final : public ekbd::sim::ChannelAdversary {
 public:
  /// One observed fault, pushed to the observer (if any) as it happens —
  /// the scenario layer uses this to record faults in the dining trace.
  struct FaultEvent {
    enum class Kind { kDrop, kDuplicate, kReorder, kPartitionDrop };
    Kind kind = Kind::kDrop;
    ProcessId from = ekbd::sim::kNoProcess;
    ProcessId to = ekbd::sim::kNoProcess;
    Time at = 0;
  };
  using Observer = std::function<void(const FaultEvent&)>;

  /// \param seed     explicit seed for the fault coin flips — never taken
  ///                 from an ambient default (seed-determinism audit).
  /// \param defaults fault probabilities for links without an override
  LinkFaultModel(std::uint64_t seed, LinkFaultParams defaults = {});

  /// Override the fault probabilities of undirected link {a, b}.
  void set_link_params(ProcessId a, ProcessId b, LinkFaultParams params);

  void add_partition(Partition p) { partitions_.push_back(std::move(p)); }
  void add_edge_cut(EdgeCut c) { edge_cuts_.push_back(c); }

  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Is the directed link (from, to) currently cut by any partition or
  /// edge cut? (Symmetric: cuts apply to both directions.)
  [[nodiscard]] bool cut(ProcessId from, ProcessId to, Time now) const;

  // -- sim::ChannelAdversary ---------------------------------------------

  ekbd::sim::FaultDecision on_send(ProcessId from, ProcessId to, MsgLayer layer,
                                   Time now) override;

  // -- instrumentation ---------------------------------------------------

  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t reorders() const { return reorders_; }
  [[nodiscard]] std::uint64_t partition_drops() const { return partition_drops_; }
  [[nodiscard]] std::uint64_t sends_seen() const { return sends_seen_; }

  /// Latest heal time across all finite partitions/edge cuts (0 if none);
  /// -1 if any cut is permanent. After this time (when >= 0) the network
  /// is fair-lossy everywhere, so ARQ guarantees kick back in.
  [[nodiscard]] Time last_heal_time() const;

 private:
  [[nodiscard]] const LinkFaultParams& params_for(ProcessId a, ProcessId b) const;
  void notify(FaultEvent::Kind kind, ProcessId from, ProcessId to, Time at);

  static std::uint64_t undirected_key(ProcessId a, ProcessId b) {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return (lo << 32) | hi;
  }

  ekbd::sim::Rng rng_;
  LinkFaultParams defaults_;
  std::unordered_map<std::uint64_t, LinkFaultParams> per_link_;
  std::vector<Partition> partitions_;
  std::vector<EdgeCut> edge_cuts_;
  Observer observer_;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reorders_ = 0;
  std::uint64_t partition_drops_ = 0;
  std::uint64_t sends_seen_ = 0;
};

}  // namespace ekbd::net
