/// \file stats.hpp
/// Small summary-statistics helpers used by checkers, benches and tests.
///
/// All functions are pure; `Summary` is a value type. Percentiles use the
/// nearest-rank method on a sorted copy, which is exact for the small-to-
/// medium sample sizes produced by the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ekbd::util {

/// Five-number-style summary of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  /// Render as a short human-readable string, e.g. for table cells.
  [[nodiscard]] std::string to_string() const;
};

/// Summarise `xs`. Returns a zeroed Summary for an empty sample.
[[nodiscard]] Summary summarize(const std::vector<double>& xs);

/// Nearest-rank percentile of `xs` for `q` in [0, 1]. `xs` need not be
/// sorted; an empty sample yields 0.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(const std::vector<double>& xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket. Used by benches to
/// print latency distributions.
struct Histogram {
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// One-line ASCII sparkline ("▁▂▃▅▇") of bucket densities.
  [[nodiscard]] std::string sparkline() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace ekbd::util
