#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ekbd::util {

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f",
                count, mean, stddev, min, p50, p95, max);
  return buf;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double x : sorted) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  auto rank = [&](double q) {
    auto idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(s.count)));
    if (idx > 0) --idx;
    return sorted[std::min(idx, s.count - 1)];
  };
  s.p50 = rank(0.50);
  s.p95 = rank(0.95);
  s.p99 = rank(0.99);
  s.p999 = rank(0.999);
  return s;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  auto idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(xs.size())));
  if (idx > 0) --idx;
  return xs[std::min(idx, xs.size() - 1)];
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), buckets_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) {
  const auto n = buckets_.size();
  double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(n));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long>(n)) idx = static_cast<long>(n) - 1;
  ++buckets_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string Histogram::sparkline() const {
  static const char* kLevels[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::uint64_t peak = 0;
  for (auto b : buckets_) peak = std::max(peak, b);
  std::string out;
  for (auto b : buckets_) {
    std::size_t lvl = peak == 0 ? 0 : static_cast<std::size_t>((b * 8 + peak - 1) / peak);
    out += kLevels[std::min<std::size_t>(lvl, 8)];
  }
  return out;
}

}  // namespace ekbd::util
