/// \file table.hpp
/// Minimal ASCII table renderer for experiment output.
///
/// Every benchmark binary in bench/ prints its results through `Table`, so
/// all experiment tables share one format (github-style pipes, right-aligned
/// numerics) and stay easy to diff against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ekbd::util {

/// Column-aligned text table. Cells are strings; convenience overloads of
/// `cell` format numbers. Rows are flushed with `print`/`to_string`.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row. Subsequent `cell` calls fill it left to right.
  Table& row();

  Table& cell(std::string v);
  Table& cell(const char* v);
  Table& cell(std::int64_t v);
  Table& cell(std::uint64_t v);
  Table& cell(int v);
  /// Doubles are rendered with `digits` decimal places.
  Table& cell(double v, int digits = 2);
  Table& cell(bool v);

  [[nodiscard]] std::string to_string() const;
  void print() const;  ///< write to stdout, followed by a blank line

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ekbd::util
