#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace ekbd::util {

namespace {
/// Display width in terminal columns. Cells only ever contain ASCII plus the
/// histogram block glyphs (U+2581..2588), each of which is one column wide,
/// so counting UTF-8 lead bytes is sufficient.
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (unsigned char c : s)
    if ((c & 0xC0) != 0x80) ++w;
  return w;
}
}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string v) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(v));
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return cell(std::string(buf));
}

Table& Table::cell(bool v) { return cell(std::string(v ? "yes" : "no")); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = display_width(headers_[c]);
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], display_width(r[c]));

  auto pad = [&](const std::string& s, std::size_t w) {
    std::string out = s;
    std::size_t dw = display_width(s);
    if (dw < w) out.append(w - dw, ' ');
    return out;
  };

  std::string out = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += " " + pad(headers_[c], widths[c]) + " |";
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += std::string(widths[c] + 2, '-') + "|";
  out += "\n";
  for (const auto& r : rows_) {
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
      out += " " + pad(c < r.size() ? r[c] : "", widths[c]) + " |";
    out += "\n";
  }
  return out;
}

void Table::print() const { std::cout << to_string() << "\n"; }

}  // namespace ekbd::util
