#include "baseline/hierarchical_diner.hpp"

#include <cassert>

#include "core/messages.hpp"

namespace ekbd::baseline {

using ekbd::core::Fork;
using ekbd::core::ForkRequest;
using ekbd::dining::DinerState;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;

HierarchicalDiner::HierarchicalDiner(std::vector<ProcessId> neighbors, int color,
                                     std::vector<int> neighbor_colors,
                                     const ekbd::fd::FailureDetector& detector)
    : Diner(std::move(neighbors)),
      color_(color),
      neighbor_colors_(std::move(neighbor_colors)),
      detector_(detector),
      per_(diner_neighbors().size()) {
  assert(neighbor_colors_.size() == diner_neighbors().size());
}

std::size_t HierarchicalDiner::idx(ProcessId j) const {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (ns[k] == j) return k;
  }
  assert(false && "message from a non-neighbor");
  return 0;
}

bool HierarchicalDiner::suspects(ProcessId j) const { return detector_.suspects(id(), j); }

void HierarchicalDiner::diner_start() {
  for (std::size_t k = 0; k < per_.size(); ++k) {
    if (color_ > neighbor_colors_[k]) {
      per_[k].fork = true;
    } else {
      per_[k].token = true;
    }
  }
}

void HierarchicalDiner::become_hungry() {
  assert(thinking());
  set_state(DinerState::kHungry);
  pump();
}

void HierarchicalDiner::pump() {
  if (!hungry()) return;
  pump_fork_requests();
  try_eat();
}

void HierarchicalDiner::pump_fork_requests() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && !s.fork) {
      send(ns[k], ForkRequest{color_}, MsgLayer::kDining);
      s.token = false;
    }
  }
}

void HierarchicalDiner::handle_fork_request(ProcessId j, int req_color) {
  PerNeighbor& s = per_[idx(j)];
  s.token = true;
  if (!s.fork) {
    assert(false && "fork request received while not holding the fork");
    return;
  }
  // Static priority, no doorway: yield unless this process is eating, or
  // hungry with the higher color.
  const bool keep = eating() || (hungry() && color_ > req_color);
  if (!keep) {
    send(j, Fork{}, MsgLayer::kDining);
    s.fork = false;
  }
}

void HierarchicalDiner::try_eat() {
  if (!hungry()) return;
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (!per_[k].fork && !suspects(ns[k])) return;
  }
  set_state(DinerState::kEating);
}

void HierarchicalDiner::finish_eating() {
  assert(eating());
  set_state(DinerState::kThinking);
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && s.fork) {
      send(ns[k], Fork{}, MsgLayer::kDining);
      s.fork = false;
    }
  }
}

void HierarchicalDiner::diner_message(const Message& m) {
  if (const auto* req = m.as<ForkRequest>()) {
    handle_fork_request(m.from, req->color);
  } else if (m.as<Fork>() != nullptr) {
    per_[idx(m.from)].fork = true;
  } else {
    assert(false && "unknown dining message");
    return;
  }
  pump();
}

std::size_t HierarchicalDiner::state_bits() const {
  const auto color_bits = static_cast<std::size_t>(
      std::bit_width(static_cast<unsigned>(color_ < 0 ? 0 : color_) + 1u));
  return color_bits + 2 * per_.size() + 2;
}

}  // namespace ekbd::baseline
