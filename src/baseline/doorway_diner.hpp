/// \file doorway_diner.hpp
/// Baseline: the Choy–Singh asynchronous-doorway dining algorithm
/// (ACM TOPLAS 17(3), 1995) — the algorithm the paper's Algorithm 1 is
/// derived from.
///
/// Identical two-phase structure (doorway for fairness, color-prioritized
/// forks for safety) with the two differences the paper calls out in §3:
///
///  1. **No oracle.** There is no suspicion clause in the doorway or the
///     eating guard, so a single crashed neighbor blocks this algorithm
///     forever: the victim's neighbors starve (the paper's motivation —
///     wait-free scheduling is unsolvable asynchronously [8]).
///     A detector can optionally be injected to isolate the effect of the
///     paper's *other* change (the ack rule), giving the "wait-free but
///     only finitely fair" intermediate design point.
///
///  2. **Original ack rule.** An ack is granted whenever the process is
///     outside the doorway (no `replied` bookkeeping), so while a process
///     waits outside, a neighbor may re-enter the doorway arbitrarily many
///     (though finitely many) times — *finite* overtaking, not the paper's
///     eventual 2-bounded waiting. `single_ack_per_session = true` enables
///     the paper's rule, turning this class into Algorithm 1 (used by the
///     equivalence tests).
#pragma once

#include <cstdint>
#include <vector>

#include "dining/diner.hpp"
#include "fd/detector.hpp"

namespace ekbd::baseline {

class DoorwayDiner final : public ekbd::dining::Diner {
 public:
  using ProcessId = ekbd::sim::ProcessId;

  struct Options {
    /// Grant at most one ack per neighbor per own hungry session (the
    /// paper's modification). Off = original Choy–Singh behaviour.
    bool single_ack_per_session = false;
  };

  /// Pass a NeverSuspect detector for the crash-oblivious original.
  DoorwayDiner(std::vector<ProcessId> neighbors, int color,
               std::vector<int> neighbor_colors,
               const ekbd::fd::FailureDetector& detector, Options options);

  /// Original Choy–Singh configuration (default Options).
  DoorwayDiner(std::vector<ProcessId> neighbors, int color,
               std::vector<int> neighbor_colors,
               const ekbd::fd::FailureDetector& detector)
      : DoorwayDiner(std::move(neighbors), color, std::move(neighbor_colors), detector,
                     Options{}) {}

  void become_hungry() override;
  void finish_eating() override;
  [[nodiscard]] bool inside_doorway() const override { return inside_; }
  [[nodiscard]] std::size_t state_bits() const override;

  [[nodiscard]] int color() const { return color_; }
  [[nodiscard]] bool holds_fork(ProcessId j) const { return slot(j).fork; }
  [[nodiscard]] bool holds_token(ProcessId j) const { return slot(j).token; }

 protected:
  void pump() override;
  void diner_start() override;
  void diner_message(const ekbd::sim::Message& m) override;

 private:
  struct PerNeighbor {
    bool fork = false;
    bool token = false;
    bool pinged = false;
    bool ack = false;
    bool deferred = false;
    bool replied = false;  // used only when single_ack_per_session
  };

  [[nodiscard]] std::size_t idx(ProcessId j) const;
  [[nodiscard]] const PerNeighbor& slot(ProcessId j) const { return per_[idx(j)]; }
  [[nodiscard]] PerNeighbor& slot(ProcessId j) { return per_[idx(j)]; }
  [[nodiscard]] bool suspects(ProcessId j) const;

  void pump_pings();
  void handle_ping(ProcessId j);
  void handle_ack(ProcessId j);
  void try_enter_doorway();
  void pump_fork_requests();
  void handle_fork_request(ProcessId j, int req_color);
  void handle_fork(ProcessId j);
  void try_eat();

  const int color_;
  const std::vector<int> neighbor_colors_;
  const ekbd::fd::FailureDetector& detector_;
  const Options options_;
  std::vector<PerNeighbor> per_;
  bool inside_ = false;
};

}  // namespace ekbd::baseline
