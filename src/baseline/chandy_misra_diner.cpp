#include "baseline/chandy_misra_diner.hpp"

#include <cassert>

#include "core/messages.hpp"

namespace ekbd::baseline {

using ekbd::core::Fork;
using ekbd::core::ForkRequest;
using ekbd::dining::DinerState;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;

ChandyMisraDiner::ChandyMisraDiner(std::vector<ProcessId> neighbors, int color,
                                   std::vector<int> neighbor_colors,
                                   const ekbd::fd::FailureDetector& detector)
    : Diner(std::move(neighbors)),
      color_(color),
      neighbor_colors_(std::move(neighbor_colors)),
      detector_(detector),
      per_(diner_neighbors().size()) {
  assert(neighbor_colors_.size() == diner_neighbors().size());
}

std::size_t ChandyMisraDiner::idx(ProcessId j) const {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (ns[k] == j) return k;
  }
  assert(false && "message from a non-neighbor");
  return 0;
}

bool ChandyMisraDiner::suspects(ProcessId j) const { return detector_.suspects(id(), j); }

void ChandyMisraDiner::diner_start() {
  // All forks start dirty, placed to make the precedence graph acyclic
  // (the coloring provides a global order); tokens start opposite.
  for (std::size_t k = 0; k < per_.size(); ++k) {
    if (color_ > neighbor_colors_[k]) {
      per_[k].fork = true;
      per_[k].dirty = true;
    } else {
      per_[k].token = true;
    }
  }
}

void ChandyMisraDiner::become_hungry() {
  assert(thinking());
  set_state(DinerState::kHungry);
  pump();
}

void ChandyMisraDiner::pump() {
  if (!hungry()) return;
  pump_fork_requests();
  try_eat();
}

void ChandyMisraDiner::pump_fork_requests() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && !s.fork) {
      send(ns[k], ForkRequest{color_}, MsgLayer::kDining);
      s.token = false;
    }
  }
}

void ChandyMisraDiner::handle_fork_request(ProcessId j) {
  PerNeighbor& s = per_[idx(j)];
  s.token = true;
  if (!s.fork) {
    assert(false && "fork request received while not holding the fork");
    return;
  }
  // CM rule: yield a dirty fork unless eating; a clean fork certifies that
  // this process has priority — keep it until soiled by the next meal.
  if (!eating() && s.dirty) {
    s.dirty = false;  // wiped clean before handing over
    send(j, Fork{}, MsgLayer::kDining);
    s.fork = false;
  }
}

void ChandyMisraDiner::try_eat() {
  if (!hungry()) return;
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (!per_[k].fork && !suspects(ns[k])) return;
  }
  // Eating soils every held fork.
  for (PerNeighbor& s : per_) {
    if (s.fork) s.dirty = true;
  }
  set_state(DinerState::kEating);
}

void ChandyMisraDiner::finish_eating() {
  assert(eating());
  set_state(DinerState::kThinking);
  // Grant deferred requests (token ∧ fork): forks are dirty now, so they
  // must go.
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && s.fork) {
      s.dirty = false;
      send(ns[k], Fork{}, MsgLayer::kDining);
      s.fork = false;
    }
  }
}

void ChandyMisraDiner::diner_message(const Message& m) {
  if (m.as<ForkRequest>() != nullptr) {
    handle_fork_request(m.from);
  } else if (m.as<Fork>() != nullptr) {
    PerNeighbor& s = per_[idx(m.from)];
    s.fork = true;
    // Forks arrive clean — unless this process already stopped being
    // hungry (possible only with an injected detector: it ate on
    // suspicion while its request was in flight). A stale fork is soiled
    // immediately so the neighbor's next request can still pry it away.
    s.dirty = !hungry();
  } else {
    assert(false && "unknown dining message");
    return;
  }
  pump();
}

std::size_t ChandyMisraDiner::state_bits() const {
  const auto color_bits = static_cast<std::size_t>(
      std::bit_width(static_cast<unsigned>(color_ < 0 ? 0 : color_) + 1u));
  return color_bits + 3 * per_.size() + 2;
}

}  // namespace ekbd::baseline
