#include "baseline/doorway_diner.hpp"

#include <bit>
#include <cassert>

#include "core/messages.hpp"

namespace ekbd::baseline {

using ekbd::core::Ack;
using ekbd::core::Fork;
using ekbd::core::ForkRequest;
using ekbd::core::Ping;
using ekbd::dining::DinerState;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;

DoorwayDiner::DoorwayDiner(std::vector<ProcessId> neighbors, int color,
                           std::vector<int> neighbor_colors,
                           const ekbd::fd::FailureDetector& detector, Options options)
    : Diner(std::move(neighbors)),
      color_(color),
      neighbor_colors_(std::move(neighbor_colors)),
      detector_(detector),
      options_(options),
      per_(diner_neighbors().size()) {
  assert(neighbor_colors_.size() == diner_neighbors().size());
}

std::size_t DoorwayDiner::idx(ProcessId j) const {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (ns[k] == j) return k;
  }
  assert(false && "message from a non-neighbor");
  return 0;
}

bool DoorwayDiner::suspects(ProcessId j) const { return detector_.suspects(id(), j); }

void DoorwayDiner::diner_start() {
  for (std::size_t k = 0; k < per_.size(); ++k) {
    if (color_ > neighbor_colors_[k]) {
      per_[k].fork = true;
    } else {
      per_[k].token = true;
    }
  }
}

void DoorwayDiner::become_hungry() {
  assert(thinking());
  set_state(DinerState::kHungry);
  pump();
}

void DoorwayDiner::pump() {
  if (!hungry()) return;
  if (!inside_) {
    pump_pings();
    try_enter_doorway();
  }
  if (hungry() && inside_) {
    pump_fork_requests();
    try_eat();
  }
}

void DoorwayDiner::pump_pings() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (!s.pinged && !s.ack) {
      send(ns[k], Ping{}, MsgLayer::kDining);
      s.pinged = true;
    }
  }
}

void DoorwayDiner::handle_ping(ProcessId j) {
  PerNeighbor& s = slot(j);
  const bool refuse = inside_ || (options_.single_ack_per_session && s.replied);
  if (refuse) {
    s.deferred = true;
  } else {
    send(j, Ack{}, MsgLayer::kDining);
    if (options_.single_ack_per_session) s.replied = hungry();
  }
}

void DoorwayDiner::handle_ack(ProcessId j) {
  PerNeighbor& s = slot(j);
  s.ack = hungry() && !inside_;
  s.pinged = false;
}

void DoorwayDiner::try_enter_doorway() {
  if (!hungry() || inside_) return;
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (!per_[k].ack && !suspects(ns[k])) return;
  }
  inside_ = true;
  for (PerNeighbor& s : per_) {
    s.ack = false;
    s.replied = false;
  }
  note_enter_doorway();
}

void DoorwayDiner::pump_fork_requests() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && !s.fork) {
      send(ns[k], ForkRequest{color_}, MsgLayer::kDining);
      s.token = false;
    }
  }
}

void DoorwayDiner::handle_fork_request(ProcessId j, int req_color) {
  PerNeighbor& s = slot(j);
  s.token = true;
  if (!s.fork) {
    assert(false && "fork request received while not holding the fork");
    return;
  }
  if (!inside_ || (hungry() && color_ < req_color)) {
    send(j, Fork{}, MsgLayer::kDining);
    s.fork = false;
  }
}

void DoorwayDiner::handle_fork(ProcessId j) { slot(j).fork = true; }

void DoorwayDiner::try_eat() {
  if (!hungry() || !inside_) return;
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (!per_[k].fork && !suspects(ns[k])) return;
  }
  set_state(DinerState::kEating);
}

void DoorwayDiner::finish_eating() {
  assert(eating());
  inside_ = false;
  set_state(DinerState::kThinking);
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && s.fork) {
      send(ns[k], Fork{}, MsgLayer::kDining);
      s.fork = false;
    }
    if (s.deferred) {
      send(ns[k], Ack{}, MsgLayer::kDining);
      s.deferred = false;
    }
  }
}

void DoorwayDiner::diner_message(const Message& m) {
  if (m.as<Ping>() != nullptr) {
    handle_ping(m.from);
  } else if (m.as<Ack>() != nullptr) {
    handle_ack(m.from);
  } else if (const auto* req = m.as<ForkRequest>()) {
    handle_fork_request(m.from, req->color);
  } else if (m.as<Fork>() != nullptr) {
    handle_fork(m.from);
  } else {
    assert(false && "unknown dining message");
    return;
  }
  pump();
}

std::size_t DoorwayDiner::state_bits() const {
  const auto color_bits = static_cast<std::size_t>(
      std::bit_width(static_cast<unsigned>(color_ < 0 ? 0 : color_) + 1u));
  return color_bits + 6 * per_.size() + 3;
}

}  // namespace ekbd::baseline
