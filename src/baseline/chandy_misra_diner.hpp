/// \file chandy_misra_diner.hpp
/// Baseline: Chandy–Misra dining philosophers ("The drinking philosophers
/// problem", ACM TOPLAS 1984) — dynamic priorities via dirty/clean forks.
///
/// The classic crash-free solution to the fairness problem the static
/// hierarchy has: forks are *soiled* by eating; a holder must yield a
/// dirty fork on request (unless eating) but may keep a clean one, so
/// priority flows to whoever has waited through a neighbor's meal. This
/// gives starvation-freedom (even bounded waiting) without any doorway —
/// in fault-free runs.
///
/// Under crash faults it shares the fate of every asynchronous algorithm
/// (paper §1): a neighbor that crashes holding a needed fork starves the
/// waiter forever. An injected ◇P₁ restores progress (suspicion stands in
/// for the missing fork) — but unlike Algorithm 1 this was never designed
/// for it: post-crash, fork/token conservation still holds, yet fairness
/// degrades (no doorway bounds how often a suspicious pair overtakes).
/// E2/E3 quantify both effects.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "dining/diner.hpp"
#include "fd/detector.hpp"

namespace ekbd::baseline {

class ChandyMisraDiner final : public ekbd::dining::Diner {
 public:
  using ProcessId = ekbd::sim::ProcessId;

  /// Colors are only used for the initial acyclic orientation (fork starts
  /// dirty at the higher-colored endpoint); priorities afterwards are fully
  /// dynamic.
  ChandyMisraDiner(std::vector<ProcessId> neighbors, int color,
                   std::vector<int> neighbor_colors,
                   const ekbd::fd::FailureDetector& detector);

  void become_hungry() override;
  void finish_eating() override;
  [[nodiscard]] std::size_t state_bits() const override;

  [[nodiscard]] bool holds_fork(ProcessId j) const { return per_[idx(j)].fork; }
  [[nodiscard]] bool fork_dirty(ProcessId j) const { return per_[idx(j)].dirty; }

 protected:
  void pump() override;
  void diner_start() override;
  void diner_message(const ekbd::sim::Message& m) override;

 private:
  struct PerNeighbor {
    bool fork = false;
    bool dirty = false;  ///< meaningful while fork == true
    bool token = false;  ///< request token
  };

  [[nodiscard]] std::size_t idx(ProcessId j) const;
  [[nodiscard]] bool suspects(ProcessId j) const;

  void pump_fork_requests();
  void handle_fork_request(ProcessId j);
  void try_eat();

  const int color_;
  const std::vector<int> neighbor_colors_;
  const ekbd::fd::FailureDetector& detector_;
  std::vector<PerNeighbor> per_;
};

}  // namespace ekbd::baseline
