/// \file hierarchical_diner.hpp
/// Baseline: hierarchical resource allocation — color-prioritized forks
/// with *no doorway* (Lynch 1980, "fast allocation of nearby resources").
///
/// Phase 2 of Algorithm 1 taken alone: a hungry process requests missing
/// forks via the shared token; a conflict is always resolved in favor of
/// the statically higher-colored neighbor (the holder yields iff it is not
/// hungry/eating, or it is hungry with the lower color). Eating requires
/// all forks (or, with an injected detector, suspicion of the missing
/// neighbors).
///
/// Safety is identical to Algorithm 1's phase 2 (unique forks). Fairness
/// is not: without the doorway, a higher-colored neighbor under continuous
/// contention overtakes — and can outright starve — a lower-colored one.
/// Experiment E3 measures exactly this gap: Algorithm 1's overtaking
/// settles at <= 2, this baseline's grows with the run length.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "dining/diner.hpp"
#include "fd/detector.hpp"

namespace ekbd::baseline {

class HierarchicalDiner final : public ekbd::dining::Diner {
 public:
  using ProcessId = ekbd::sim::ProcessId;

  HierarchicalDiner(std::vector<ProcessId> neighbors, int color,
                    std::vector<int> neighbor_colors,
                    const ekbd::fd::FailureDetector& detector);

  void become_hungry() override;
  void finish_eating() override;
  [[nodiscard]] std::size_t state_bits() const override;

  [[nodiscard]] int color() const { return color_; }
  [[nodiscard]] bool holds_fork(ProcessId j) const { return per_[idx(j)].fork; }

 protected:
  void pump() override;
  void diner_start() override;
  void diner_message(const ekbd::sim::Message& m) override;

 private:
  struct PerNeighbor {
    bool fork = false;
    bool token = false;
  };

  [[nodiscard]] std::size_t idx(ProcessId j) const;
  [[nodiscard]] bool suspects(ProcessId j) const;

  void pump_fork_requests();
  void handle_fork_request(ProcessId j, int req_color);
  void try_eat();

  const int color_;
  const std::vector<int> neighbor_colors_;
  const ekbd::fd::FailureDetector& detector_;
  std::vector<PerNeighbor> per_;
};

}  // namespace ekbd::baseline
