#include "drinking/drinking_diner.hpp"

#include <algorithm>
#include <cassert>

namespace ekbd::drinking {

using ekbd::sim::Message;
using ekbd::sim::MsgLayer;

DrinkingDiner::DrinkingDiner(std::vector<ProcessId> neighbors, int color,
                             std::vector<int> neighbor_colors,
                             const ekbd::fd::FailureDetector& detector)
    : WaitFreeDiner(std::move(neighbors), color, std::vector<int>(neighbor_colors), detector),
      bottle_detector_(detector),
      bottle_neighbor_colors_(std::move(neighbor_colors)),
      bottles_(diner_neighbors().size()) {}

std::size_t DrinkingDiner::bidx(ProcessId j) const {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (ns[k] == j) return k;
  }
  assert(false && "bottle message from a non-neighbor");
  return 0;
}

bool DrinkingDiner::needs(ProcessId j) const {
  return std::find(needed_.begin(), needed_.end(), j) != needed_.end();
}

void DrinkingDiner::diner_start() {
  WaitFreeDiner::diner_start();  // fork/token placement
  // Bottles mirror the fork placement: bottle at the higher-colored
  // endpoint of each edge, request token at the lower.
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (holds_fork(ns[k])) {
      bottles_[k].bottle = true;
    } else {
      bottles_[k].token = true;
    }
  }
}

void DrinkingDiner::become_thirsty(std::vector<ProcessId> needed) {
  assert(!thirsty_ && !drinking_ && thinking());
#ifndef NDEBUG
  for (ProcessId j : needed) assert(bidx(j) < bottles_.size());
#endif
  thirsty_ = true;
  needed_ = std::move(needed);
  emit_drink(DrinkEvent::kBecameThirsty);
  // The dining session is the priority catalyst: while we eat, our needed
  // bottles are deferred to us and nobody adjacent eats simultaneously.
  become_hungry();
  pump_bottle_requests();
  try_drink();
  // Weak fairness for try_drink's suspicion clause: the dining pump only
  // runs while hungry, but a thirsty process may be *eating* (catalyst
  // session) when the detector finally convicts a dead bottle holder —
  // an own recheck timer covers the whole thirsty phase.
  arm_thirst_pump();
}

void DrinkingDiner::arm_thirst_pump() {
  if (thirst_timer_ == 0 && thirsty_ && !drinking_) {
    thirst_timer_ = set_timer(recheck_period());
  }
}

void DrinkingDiner::diner_timer(ekbd::sim::TimerId id) {
  if (id == thirst_timer_) {
    thirst_timer_ = 0;
    if (thirsty_ && !drinking_) {
      pump_bottle_requests();
      try_drink();
      arm_thirst_pump();
    }
    return;
  }
  WaitFreeDiner::diner_timer(id);
}

void DrinkingDiner::pump_bottle_requests() {
  if (!thirsty_ || drinking_) return;
  for (ProcessId j : needed_) {
    PerBottle& b = bslot(j);
    if (b.token && !b.bottle) {
      send(j, BottleRequest{eating()}, MsgLayer::kOther);
      b.token = false;
    }
  }
}

bool DrinkingDiner::should_defer(ProcessId j, bool requester_eating) const {
  // Defer iff the bottle is in active use (drinking with it) or reserved
  // by our dining priority (eating and needing it). A merely hungry
  // process yields — that is what makes the eating neighbor's collection
  // drain, and dining exclusion ensures neighbors are not (eventually)
  // both deferring at each other. The one place exclusion can fail —
  // pre-convergence co-eating — is broken by color: a lower-colored
  // eater yields to a co-eating higher-colored requester.
  bool in_use = (drinking_ || eating()) && needs(j);
  if (in_use && eating() && !drinking_ && requester_eating &&
      color() < bottle_neighbor_colors_[bidx(j)]) {
    in_use = false;  // co-eating tie-break
  }
  return in_use;
}

void DrinkingDiner::handle_bottle_request(ProcessId j, bool requester_eating) {
  PerBottle& b = bslot(j);
  b.token = true;
  if (!b.bottle) {
    ++conservation_violations_;
    return;
  }
  if (!should_defer(j, requester_eating)) {
    send(j, Bottle{}, MsgLayer::kOther);
    b.bottle = false;
  }
}

void DrinkingDiner::handle_escalate(ProcessId j) {
  // Re-evaluate a request we may be deferring (token ∧ bottle), now
  // knowing the requester is eating.
  PerBottle& b = bslot(j);
  if (b.token && b.bottle && !should_defer(j, /*requester_eating=*/true)) {
    send(j, Bottle{}, MsgLayer::kOther);
    b.bottle = false;
  }
}

void DrinkingDiner::handle_bottle(ProcessId j) {
  bslot(j).bottle = true;
  try_drink();
}

void DrinkingDiner::try_drink() {
  if (!thirsty_ || drinking_) return;
  for (ProcessId j : needed_) {
    if (!bslot(j).bottle && !suspects_neighbor(j)) return;
  }
  drinking_ = true;
  emit_drink(DrinkEvent::kStartDrinking);
  // Drinking proceeds outside the dining critical section: release it.
  if (eating()) finish_eating();
}

void DrinkingDiner::on_enter_eating() {
  if (drinking_ || !thirsty_) {
    // The session outlived its purpose (we drank early, or finished
    // drinking before the dining grant arrived): return it immediately.
    finish_eating();
    return;
  }
  // Eating = priority: re-request anything we yielded while waiting,
  // escalate requests already parked at (possibly co-eating) holders, and
  // re-check (suspicions may have accumulated).
  pump_bottle_requests();
  for (ProcessId j : needed_) {
    const PerBottle& b = bslot(j);
    if (!b.bottle && !b.token) send(j, BottleEscalate{}, MsgLayer::kOther);
  }
  try_drink();
}

void DrinkingDiner::finish_drinking() {
  assert(drinking_);
  drinking_ = false;
  thirsty_ = false;
  needed_.clear();
  emit_drink(DrinkEvent::kStopDrinking);
  // Grant deferred bottle requests (token ∧ bottle, exactly like forks).
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerBottle& b = bottles_[k];
    if (b.token && b.bottle) {
      send(ns[k], Bottle{}, MsgLayer::kOther);
      b.bottle = false;
    }
  }
}

void DrinkingDiner::pump() {
  WaitFreeDiner::pump();
  pump_bottle_requests();
  try_drink();
}

void DrinkingDiner::diner_message(const Message& m) {
  if (const auto* req = m.as<BottleRequest>()) {
    handle_bottle_request(m.from, req->requester_eating);
    // A yielded bottle may have unblocked nothing locally, but requests
    // can also arrive while we are mid-collection: re-evaluate.
    pump_bottle_requests();
    try_drink();
    return;
  }
  if (m.as<BottleEscalate>() != nullptr) {
    handle_escalate(m.from);
    return;
  }
  if (m.as<Bottle>() != nullptr) {
    handle_bottle(m.from);
    return;
  }
  WaitFreeDiner::diner_message(m);
}

}  // namespace ekbd::drinking
