/// \file drinking_harness.hpp
/// Environment and instrumentation for drinking philosophers.
///
/// Differs from the dining harness in two essential ways: thirst sessions
/// carry a random *subset* of incident bottles, and dining meals are NOT
/// force-ended — a DrinkingDiner holds its dining session exactly until it
/// can drink (the construction's invariant), so only drink durations are
/// environment-controlled here.
///
/// Records a drinking trace (as a dining::Trace, mapping thirsty→hungry,
/// drinking→eating events) so the existing checkers work unchanged on the
/// drinking layer: `check_exclusion` on the drink trace reports
/// shared-bottle violations when fed the *conflict subgraph of overlapping
/// needs*; the harness instead checks the precise condition online — two
/// live neighbors drinking simultaneously while BOTH need their shared
/// bottle — and counts violations with timestamps.
#pragma once

#include <cstdint>
#include <vector>

#include "dining/trace.hpp"
#include "drinking/drinking_diner.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace ekbd::drinking {

struct DrinkingOptions {
  sim::Time dry_lo = 50;           ///< time between drinks (thinking dry)
  sim::Time dry_hi = 300;
  sim::Time drink_lo = 20;         ///< drink durations
  sim::Time drink_hi = 60;
  sim::Time first_thirst_hi = 100;
  double need_prob = 0.6;          ///< each incident bottle needed w.p. this
  sim::Time recheck_period = 25;
};

class DrinkingHarness {
 public:
  DrinkingHarness(sim::Simulator& sim, const graph::ConflictGraph& graph,
                  DrinkingOptions opt);
  DrinkingHarness(sim::Simulator& sim, const graph::ConflictGraph& graph)
      : DrinkingHarness(sim, graph, DrinkingOptions{}) {}

  /// Take over thirst/drink-duration driving for `d`.
  void manage(DrinkingDiner* d);

  void schedule_crash(sim::ProcessId p, sim::Time at) { sim_.schedule_crash(p, at); }
  void run_until(sim::Time t);

  /// Drinking-layer trace: kBecameHungry = became thirsty, kStartEating =
  /// started drinking, kStopEating = finished drinking.
  [[nodiscard]] const dining::Trace& drink_trace() const { return drink_trace_; }
  [[nodiscard]] dining::Trace& drink_trace() { return drink_trace_; }

  /// Underlying dining-layer trace (the catalyst sessions) — shows how
  /// briefly the dining critical section is actually held.
  [[nodiscard]] const dining::Trace& dining_trace() const { return dining_trace_; }
  [[nodiscard]] dining::Trace& dining_trace() { return dining_trace_; }

  /// Shared-bottle exclusion violations observed: both endpoints of an
  /// edge drinking simultaneously while both sessions needed that edge's
  /// bottle. ◇WX-style: finitely many, all before detector convergence.
  [[nodiscard]] std::uint64_t shared_bottle_violations() const { return violations_; }
  [[nodiscard]] sim::Time last_violation() const { return last_violation_; }

  /// Time-weighted mean number of simultaneous drinkers (concurrency —
  /// the quantity dining cannot exceed 1-per-neighborhood on).
  [[nodiscard]] double mean_concurrent_drinkers() const;

  [[nodiscard]] std::uint64_t drinks_completed() const { return drinks_; }
  [[nodiscard]] std::vector<sim::Time> crash_times() const;

  /// Wire drinking telemetry into `reg` (detached by default):
  /// "drinking.thirst_latency" — thirsty→drink waits as a histogram;
  /// "drinking.drinks" — completed drinks; "drinking.violations" —
  /// shared-bottle exclusion violations (◇WX tail).
  void attach_metrics(obs::MetricsRegistry& reg);

 private:
  void on_drink_event(DrinkingDiner& d, DrinkingDiner::DrinkEvent ev);
  void schedule_next_thirst(DrinkingDiner* d, sim::Time delay);
  [[nodiscard]] std::vector<sim::ProcessId> pick_needs(DrinkingDiner* d);

  sim::Simulator& sim_;
  const graph::ConflictGraph& graph_;
  DrinkingOptions opt_;
  sim::Rng rng_;
  dining::Trace drink_trace_;
  dining::Trace dining_trace_;
  std::vector<DrinkingDiner*> by_id_;
  std::uint64_t violations_ = 0;
  sim::Time last_violation_ = -1;
  std::uint64_t drinks_ = 0;
  // concurrency accounting
  int drinkers_now_ = 0;
  double weighted_drinkers_ = 0.0;
  sim::Time last_change_ = 0;
  sim::Time horizon_ = 0;
  // Telemetry handles (null until attach_metrics).
  obs::Histogram* thirst_latency_ = nullptr;
  obs::Counter* drinks_metric_ = nullptr;
  obs::Counter* violations_metric_ = nullptr;
  std::vector<sim::Time> thirsty_since_;
};

}  // namespace ekbd::drinking
