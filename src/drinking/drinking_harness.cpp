#include "drinking/drinking_harness.hpp"

#include <cassert>

namespace ekbd::drinking {

using dining::TraceEventKind;
using sim::ProcessId;
using sim::Time;

DrinkingHarness::DrinkingHarness(sim::Simulator& sim, const graph::ConflictGraph& graph,
                                 DrinkingOptions opt)
    : sim_(sim), graph_(graph), opt_(opt), rng_(sim.rng().fork(0xD214)) {}

void DrinkingHarness::manage(DrinkingDiner* d) {
  assert(d != nullptr);
  d->set_recheck_period(opt_.recheck_period);
  d->set_drink_callback([this](DrinkingDiner& diner, DrinkingDiner::DrinkEvent ev) {
    on_drink_event(diner, ev);
  });
  d->set_event_callback([this](dining::Diner& diner, TraceEventKind kind) {
    dining_trace_.record(sim_.now(), diner.id(), kind);
    if (kind == TraceEventKind::kCrashed) {
      drink_trace_.record(sim_.now(), diner.id(), TraceEventKind::kCrashed);
      auto* drd = static_cast<DrinkingDiner*>(&diner);
      if (drd->drinking()) {
        weighted_drinkers_ += static_cast<double>(drinkers_now_) *
                              static_cast<double>(sim_.now() - last_change_);
        last_change_ = sim_.now();
        --drinkers_now_;
      }
    }
  });
  if (by_id_.size() <= static_cast<std::size_t>(d->id())) {
    by_id_.resize(static_cast<std::size_t>(d->id()) + 1, nullptr);
  }
  by_id_[static_cast<std::size_t>(d->id())] = d;
  schedule_next_thirst(d, rng_.uniform_int(0, opt_.first_thirst_hi));
}

std::vector<ProcessId> DrinkingHarness::pick_needs(DrinkingDiner* d) {
  std::vector<ProcessId> needs;
  for (ProcessId j : graph_.neighbors(d->id())) {
    if (rng_.chance(opt_.need_prob)) needs.push_back(j);
  }
  return needs;  // possibly empty: a session needing nothing is legal
}

void DrinkingHarness::schedule_next_thirst(DrinkingDiner* d, Time delay) {
  sim_.schedule(sim_.now() + delay, [this, d] {
    if (sim_.crashed(d->id())) return;
    if (d->thirsty() || d->drinking()) return;  // a session is already live
    if (!d->thinking()) {
      // The previous dining session (started for a drink that completed
      // early) has not drained back to thinking yet — retry shortly
      // rather than dropping this thirst forever.
      schedule_next_thirst(d, opt_.recheck_period);
      return;
    }
    d->become_thirsty(pick_needs(d));
  });
}

void DrinkingHarness::attach_metrics(obs::MetricsRegistry& reg) {
  thirst_latency_ = &reg.histogram("drinking.thirst_latency", "", 0.0, 5000.0, 50);
  drinks_metric_ = &reg.counter("drinking.drinks");
  violations_metric_ = &reg.counter("drinking.violations");
  thirsty_since_.assign(graph_.size(), -1);
}

void DrinkingHarness::on_drink_event(DrinkingDiner& d, DrinkingDiner::DrinkEvent ev) {
  const Time now = sim_.now();
  switch (ev) {
    case DrinkingDiner::DrinkEvent::kBecameThirsty:
      drink_trace_.record(now, d.id(), TraceEventKind::kBecameHungry);
      if (thirst_latency_ != nullptr) {
        thirsty_since_[static_cast<std::size_t>(d.id())] = now;
      }
      break;
    case DrinkingDiner::DrinkEvent::kStartDrinking: {
      drink_trace_.record(now, d.id(), TraceEventKind::kStartEating);
      if (thirst_latency_ != nullptr) {
        Time& since = thirsty_since_[static_cast<std::size_t>(d.id())];
        if (since >= 0) {
          thirst_latency_->add(static_cast<double>(now - since));
          since = -1;
        }
      }
      // Shared-bottle exclusion check: a live neighbor drinking now whose
      // session needs OUR shared bottle, while we need it too.
      for (ProcessId j : graph_.neighbors(d.id())) {
        if (sim_.crashed(j)) continue;
        DrinkingDiner* q = static_cast<std::size_t>(j) < by_id_.size()
                               ? by_id_[static_cast<std::size_t>(j)]
                               : nullptr;
        if (q == nullptr || !q->drinking()) continue;
        bool p_needs = false;
        for (ProcessId x : d.needed()) p_needs |= (x == j);
        bool q_needs = false;
        for (ProcessId x : q->needed()) q_needs |= (x == d.id());
        if (p_needs && q_needs) {
          ++violations_;
          last_violation_ = now;
          if (violations_metric_ != nullptr) violations_metric_->inc();
        }
      }
      weighted_drinkers_ += static_cast<double>(drinkers_now_) *
                            static_cast<double>(now - last_change_);
      last_change_ = now;
      ++drinkers_now_;
      // End the drink after a finite duration.
      DrinkingDiner* dp = &d;
      sim_.schedule(now + rng_.uniform_int(opt_.drink_lo, opt_.drink_hi), [this, dp] {
        if (!sim_.crashed(dp->id()) && dp->drinking()) dp->finish_drinking();
      });
      break;
    }
    case DrinkingDiner::DrinkEvent::kStopDrinking:
      drink_trace_.record(now, d.id(), TraceEventKind::kStopEating);
      weighted_drinkers_ += static_cast<double>(drinkers_now_) *
                            static_cast<double>(now - last_change_);
      last_change_ = now;
      --drinkers_now_;
      ++drinks_;
      if (drinks_metric_ != nullptr) drinks_metric_->inc();
      schedule_next_thirst(&d, rng_.uniform_int(opt_.dry_lo, opt_.dry_hi));
      break;
  }
}

void DrinkingHarness::run_until(Time t) {
  sim_.run_until(t);
  drink_trace_.set_end_time(t);
  dining_trace_.set_end_time(t);
  horizon_ = t;
}

double DrinkingHarness::mean_concurrent_drinkers() const {
  if (horizon_ <= 0) return 0.0;
  double weighted = weighted_drinkers_ +
                    static_cast<double>(drinkers_now_) *
                        static_cast<double>(horizon_ - last_change_);
  return weighted / static_cast<double>(horizon_);
}

std::vector<Time> DrinkingHarness::crash_times() const {
  std::vector<Time> out(sim_.num_processes(), -1);
  for (std::size_t p = 0; p < out.size(); ++p) {
    out[p] = sim_.crash_time(static_cast<ProcessId>(p));
  }
  return out;
}

}  // namespace ekbd::drinking
