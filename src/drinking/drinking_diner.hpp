/// \file drinking_diner.hpp
/// Wait-free drinking philosophers, built modularly on Algorithm 1.
///
/// Drinking philosophers (Chandy & Misra 1984) generalizes dining: each
/// edge carries a *bottle*, and every thirst session needs only a dynamic
/// SUBSET of the incident bottles — so neighbors whose current needs are
/// disjoint may drink concurrently. The classic modular construction
/// (à la Welch & Lynch) uses a dining layer as a priority catalyst:
///
///  * a thirsty process enters the dining layer (becomes hungry) and
///    requests its missing needed bottles;
///  * a holder yields a requested bottle unless it is drinking with it or
///    *eating* and needing it — dining's exclusion guarantees neighbors
///    are never simultaneously deferring at each other, so the eating
///    process drains its needs and drinks;
///  * the moment it can drink, it abandons the dining session (exits
///    eating instantly, or exits as soon as eating is granted), freeing
///    the dining layer for neighbors — drinking itself proceeds OUTSIDE
///    the dining critical section, which is where the concurrency gain
///    over plain dining comes from (E19 measures it).
///
/// Composed with this repository's Algorithm 1 and ◇P₁, the construction
/// inherits wait-freedom: a thirsty process also drinks past a crashed
/// bottle-holder on suspicion, with the same eventual-weak-exclusion
/// caveat (finitely many shared-bottle violations before the detector
/// converges). Bottles mirror the fork/token mechanics exactly, so
/// uniqueness and conservation arguments (Lemmas 1.1/1.2) carry over.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/wait_free_diner.hpp"

namespace ekbd::drinking {

// The BottleRequest / Bottle / BottleEscalate wire structs are defined in
// sim/payload.hpp (every wire type is an alternative of the closed
// sim::Payload variant); the co-eating tie-break they carry is documented
// there.

class DrinkingDiner final : public ekbd::core::WaitFreeDiner {
 public:
  using ProcessId = ekbd::sim::ProcessId;

  /// Observable drinking-session transitions (the drinking analogue of
  /// the dining trace callback).
  enum class DrinkEvent { kBecameThirsty, kStartDrinking, kStopDrinking };
  using DrinkCallback = std::function<void(DrinkingDiner&, DrinkEvent)>;

  DrinkingDiner(std::vector<ProcessId> neighbors, int color, std::vector<int> neighbor_colors,
                const ekbd::fd::FailureDetector& detector);

  /// Start a thirst session needing the bottles shared with `needed`
  /// (each must be a neighbor; empty = drink immediately). Precondition:
  /// not already thirsty or drinking, dining state thinking.
  void become_thirsty(std::vector<ProcessId> needed);

  /// End the current drink (the harness calls this after the drink
  /// duration). Grants deferred bottle requests.
  void finish_drinking();

  [[nodiscard]] bool thirsty() const { return thirsty_; }
  [[nodiscard]] bool drinking() const { return drinking_; }
  [[nodiscard]] const std::vector<ProcessId>& needed() const { return needed_; }
  [[nodiscard]] bool holds_bottle(ProcessId j) const { return bslot(j).bottle; }
  [[nodiscard]] bool holds_bottle_token(ProcessId j) const { return bslot(j).token; }

  /// Bottle requests that arrived while the bottle was absent — the
  /// drinking analogue of Lemma 1.1's counter; must stay 0 under the
  /// model.
  [[nodiscard]] std::uint64_t bottle_conservation_violations() const {
    return conservation_violations_;
  }

  void set_drink_callback(DrinkCallback cb) { drink_callback_ = std::move(cb); }

 protected:
  void pump() override;
  void diner_start() override;
  void diner_message(const ekbd::sim::Message& m) override;
  void diner_timer(ekbd::sim::TimerId id) override;
  void on_enter_eating() override;

 private:
  struct PerBottle {
    bool bottle = false;
    bool token = false;
  };

  [[nodiscard]] std::size_t bidx(ProcessId j) const;
  [[nodiscard]] const PerBottle& bslot(ProcessId j) const { return bottles_[bidx(j)]; }
  [[nodiscard]] PerBottle& bslot(ProcessId j) { return bottles_[bidx(j)]; }
  [[nodiscard]] bool needs(ProcessId j) const;
  [[nodiscard]] bool suspects_neighbor(ProcessId j) const {
    return bottle_detector_.suspects(id(), j);
  }

  void arm_thirst_pump();
  void pump_bottle_requests();
  void handle_bottle_request(ProcessId j, bool requester_eating);
  void handle_escalate(ProcessId j);
  void handle_bottle(ProcessId j);
  /// Shared yield decision for fresh and escalated requests.
  [[nodiscard]] bool should_defer(ProcessId j, bool requester_eating) const;
  void try_drink();
  void emit_drink(DrinkEvent ev) {
    if (drink_callback_) drink_callback_(*this, ev);
  }

  const ekbd::fd::FailureDetector& bottle_detector_;
  std::vector<int> bottle_neighbor_colors_;  // aligned with diner_neighbors()
  std::vector<PerBottle> bottles_;
  std::vector<ProcessId> needed_;
  bool thirsty_ = false;
  bool drinking_ = false;
  ekbd::sim::TimerId thirst_timer_ = 0;
  std::uint64_t conservation_violations_ = 0;
  DrinkCallback drink_callback_;
};

}  // namespace ekbd::drinking
