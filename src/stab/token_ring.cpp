#include "stab/token_ring.hpp"

namespace ekbd::stab {

bool DijkstraTokenRing::enabled(ProcessId p, const StateTable& s, const ConflictGraph&) const {
  const std::int64_t own = norm(s.get(p));
  const std::int64_t before = norm(s.get(pred(p)));
  return p == 0 ? own == before : own != before;
}

void DijkstraTokenRing::step(ProcessId p, StateTable& s, const ConflictGraph& g) const {
  if (!enabled(p, s, g)) return;
  if (p == 0) {
    s.set(p, norm(s.get(p) + 1));
  } else {
    s.set(p, norm(s.get(pred(p))));
  }
}

std::size_t DijkstraTokenRing::tokens(const StateTable& s, const ConflictGraph& g) const {
  std::size_t count = 0;
  for (std::size_t p = 0; p < n_; ++p) {
    if (enabled(static_cast<ProcessId>(p), s, g)) ++count;
  }
  return count;
}

bool DijkstraTokenRing::legitimate(const StateTable& s, const ConflictGraph& g) const {
  return tokens(s, g) == 1;
}

}  // namespace ekbd::stab
