/// \file mis.hpp
/// Self-stabilizing maximal independent set.
///
/// Register in_i ∈ {0, 1} (any other value reads as "in"):
///
///   leave: in_i ∧ ∃j ∈ N(i): in_j        → in_i := 0
///   join:  ¬in_i ∧ ∀j ∈ N(i): ¬in_j      → in_i := 1
///
/// Under local mutual exclusion the protocol is silent and converges to an
/// independent dominating set (= maximal independent set). This is the
/// standard daemon-refinement example [Shukla et al.]; it *requires* the
/// daemon — two adjacent out-processes joining simultaneously violate
/// independence, which is exactly the kind of scheduling mistake a ◇WX
/// daemon may make finitely often (and the protocol then repairs).
#pragma once

#include "stab/protocol.hpp"

namespace ekbd::stab {

class StabilizingMis final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "stabilizing-mis"; }

  [[nodiscard]] bool enabled(ProcessId p, const StateTable& s,
                             const ConflictGraph& g) const override;
  void step(ProcessId p, StateTable& s, const ConflictGraph& g) const override;
  [[nodiscard]] bool legitimate(const StateTable& s, const ConflictGraph& g) const override;
  [[nodiscard]] bool legitimate_restricted(const StateTable& s, const ConflictGraph& g,
                                           const std::vector<bool>& live) const override {
    return no_live_enabled(s, g, live);
  }

  [[nodiscard]] std::int64_t corruption_hi(const ConflictGraph&) const override { return 1; }

  [[nodiscard]] static bool is_in(const StateTable& s, ProcessId p) { return s.get(p) != 0; }

 private:
  [[nodiscard]] static bool any_neighbor_in(ProcessId p, const StateTable& s,
                                            const ConflictGraph& g);
};

}  // namespace ekbd::stab
