/// \file matching.hpp
/// Self-stabilizing maximal matching (Hsu–Huang, IPL 1992).
///
/// Register p_i is a pointer: −1 (null) or a neighbor's id. Rules, for
/// process i (reading only its neighborhood):
///
///   accept:   p_i = null ∧ ∃j ∈ N(i): p_j = i          → p_i := min such j
///   propose:  p_i = null ∧ ∄j: p_j = i ∧ ∃j: p_j = null → p_i := min such j
///   withdraw: p_i = j ∧ p_j ∉ {i, null}                 → p_i := null
///             (also fires when p_i is corrupt: not a neighbor id)
///
/// Legitimate states are symmetric maximal matchings: pointers are
/// mutual (p_i = j ⟺ p_j = i) and no two adjacent processes are both
/// unmatched. Convergence needs every process to keep executing and no
/// two *neighbors* to move at once — both exactly what the wait-free
/// ◇WX daemon provides (moves of non-neighbors commute: each writes only
/// its own pointer and reads only its own neighborhood).
#pragma once

#include "stab/protocol.hpp"

namespace ekbd::stab {

class StabilizingMatching final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "stabilizing-matching"; }

  [[nodiscard]] bool enabled(ProcessId p, const StateTable& s,
                             const ConflictGraph& g) const override;
  void step(ProcessId p, StateTable& s, const ConflictGraph& g) const override;
  [[nodiscard]] bool legitimate(const StateTable& s, const ConflictGraph& g) const override;
  [[nodiscard]] bool legitimate_restricted(const StateTable& s, const ConflictGraph& g,
                                           const std::vector<bool>& live) const override {
    return no_live_enabled(s, g, live);
  }

  [[nodiscard]] std::int64_t corruption_hi(const ConflictGraph& g) const override {
    return static_cast<std::int64_t>(g.size());  // includes out-of-range junk
  }

  static constexpr std::int64_t kNull = -1;

  /// The pointer of `p`, normalized: anything that is not a neighbor id
  /// reads as an (invalid) raw value the withdraw rule will clear.
  [[nodiscard]] static std::int64_t pointer(const StateTable& s, ProcessId p) {
    return s.get(p);
  }

 private:
  /// The value an enabled process would write, or the current value if no
  /// rule is enabled.
  [[nodiscard]] static std::int64_t target(ProcessId p, const StateTable& s,
                                           const ConflictGraph& g);
  [[nodiscard]] static bool valid_neighbor(ProcessId p, std::int64_t v,
                                           const ConflictGraph& g);
};

}  // namespace ekbd::stab
