#include "stab/matching.hpp"

namespace ekbd::stab {

bool StabilizingMatching::valid_neighbor(ProcessId p, std::int64_t v, const ConflictGraph& g) {
  if (v < 0 || v >= static_cast<std::int64_t>(g.size())) return false;
  return g.adjacent(p, static_cast<ProcessId>(v));
}

std::int64_t StabilizingMatching::target(ProcessId p, const StateTable& s,
                                         const ConflictGraph& g) {
  const std::int64_t v = s.get(p);
  if (v == kNull) {
    // accept: a neighbor proposes to me.
    for (ProcessId j : g.neighbors(p)) {
      if (s.get(j) == p) return j;  // neighbors are sorted: min proposer
    }
    // propose: to the lowest unmatched neighbor.
    for (ProcessId j : g.neighbors(p)) {
      if (s.get(j) == kNull) return j;
    }
    return kNull;  // nothing to do
  }
  if (!valid_neighbor(p, v, g)) return kNull;  // corrupt pointer: clear
  const std::int64_t pv = s.get(static_cast<ProcessId>(v));
  if (pv != p && pv != kNull) return kNull;  // withdraw: j is taken
  return v;                                  // matched or waiting: hold
}

bool StabilizingMatching::enabled(ProcessId p, const StateTable& s,
                                  const ConflictGraph& g) const {
  return target(p, s, g) != s.get(p);
}

void StabilizingMatching::step(ProcessId p, StateTable& s, const ConflictGraph& g) const {
  const std::int64_t t = target(p, s, g);
  if (t != s.get(p)) s.set(p, t);
}

bool StabilizingMatching::legitimate(const StateTable& s, const ConflictGraph& g) const {
  // Symmetric pointers...
  for (std::size_t pi = 0; pi < g.size(); ++pi) {
    const auto p = static_cast<ProcessId>(pi);
    const std::int64_t v = s.get(p);
    if (v == kNull) continue;
    if (!valid_neighbor(p, v, g)) return false;
    if (s.get(static_cast<ProcessId>(v)) != p) return false;
  }
  // ...and maximality: no two adjacent nulls.
  for (const auto& [a, b] : g.edges()) {
    if (s.get(a) == kNull && s.get(b) == kNull) return false;
  }
  return true;
}

}  // namespace ekbd::stab
