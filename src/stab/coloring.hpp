/// \file coloring.hpp
/// Self-stabilizing greedy (Grundy) graph coloring.
///
/// Register c_i; action: if c_i collides with a neighbor or is not the
/// minimal excludant of the neighborhood, set c_i := mex{c_j : j ∈ N(i)}.
/// Under local mutual exclusion (no two neighbors move together) the
/// protocol is silent: it converges to a proper Grundy coloring with at
/// most δ+1 colors and no guard stays enabled.
///
/// Legitimacy here is the *proper coloring* predicate (the classic safety
/// property); the stricter "silent" predicate (every guard disabled) is
/// exposed separately for the closure tests.
#pragma once

#include "stab/protocol.hpp"

namespace ekbd::stab {

class StabilizingColoring final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "stabilizing-coloring"; }

  [[nodiscard]] bool enabled(ProcessId p, const StateTable& s,
                             const ConflictGraph& g) const override;
  void step(ProcessId p, StateTable& s, const ConflictGraph& g) const override;
  [[nodiscard]] bool legitimate(const StateTable& s, const ConflictGraph& g) const override;
  [[nodiscard]] bool legitimate_restricted(const StateTable& s, const ConflictGraph& g,
                                           const std::vector<bool>& live) const override {
    return no_live_enabled(s, g, live);
  }

  /// Strictly silent: no process has an enabled guard.
  [[nodiscard]] bool silent(const StateTable& s, const ConflictGraph& g) const;

  [[nodiscard]] std::int64_t corruption_hi(const ConflictGraph& g) const override {
    return static_cast<std::int64_t>(g.max_degree()) + 2;
  }

 private:
  [[nodiscard]] static std::int64_t mex(ProcessId p, const StateTable& s,
                                        const ConflictGraph& g);
};

}  // namespace ekbd::stab
