#include "stab/coloring.hpp"

#include <vector>

namespace ekbd::stab {

std::int64_t StabilizingColoring::mex(ProcessId p, const StateTable& s, const ConflictGraph& g) {
  const auto& ns = g.neighbors(p);
  std::vector<bool> taken(ns.size() + 1, false);
  for (ProcessId j : ns) {
    std::int64_t c = s.get(j);
    if (c >= 0 && c < static_cast<std::int64_t>(taken.size())) {
      taken[static_cast<std::size_t>(c)] = true;
    }
  }
  std::int64_t m = 0;
  while (taken[static_cast<std::size_t>(m)]) ++m;
  return m;
}

bool StabilizingColoring::enabled(ProcessId p, const StateTable& s, const ConflictGraph& g) const {
  return s.get(p) != mex(p, s, g);
}

void StabilizingColoring::step(ProcessId p, StateTable& s, const ConflictGraph& g) const {
  if (enabled(p, s, g)) s.set(p, mex(p, s, g));
}

bool StabilizingColoring::legitimate(const StateTable& s, const ConflictGraph& g) const {
  for (const auto& [a, b] : g.edges()) {
    if (s.get(a) == s.get(b)) return false;
  }
  return true;
}

bool StabilizingColoring::silent(const StateTable& s, const ConflictGraph& g) const {
  for (std::size_t p = 0; p < g.size(); ++p) {
    if (enabled(static_cast<ProcessId>(p), s, g)) return false;
  }
  return true;
}

}  // namespace ekbd::stab
