#include "stab/bfs_tree.hpp"

#include <algorithm>
#include <deque>

namespace ekbd::stab {

std::int64_t StabilizingBfsTree::target(ProcessId p, const StateTable& s,
                                        const ConflictGraph& g) {
  if (p == 0) return 0;
  const auto cap = static_cast<std::int64_t>(g.size());
  std::int64_t best = cap;
  for (ProcessId j : g.neighbors(p)) {
    best = std::min(best, std::clamp<std::int64_t>(s.get(j), 0, cap));
  }
  return std::min(best + 1, cap);
}

bool StabilizingBfsTree::enabled(ProcessId p, const StateTable& s,
                                 const ConflictGraph& g) const {
  return s.get(p) != target(p, s, g);
}

void StabilizingBfsTree::step(ProcessId p, StateTable& s, const ConflictGraph& g) const {
  if (enabled(p, s, g)) s.set(p, target(p, s, g));
}

bool StabilizingBfsTree::legitimate(const StateTable& s, const ConflictGraph& g) const {
  // True BFS distances from process 0.
  const auto n = g.size();
  std::vector<std::int64_t> dist(n, static_cast<std::int64_t>(n));
  std::deque<ProcessId> queue{0};
  dist[0] = 0;
  while (!queue.empty()) {
    ProcessId v = queue.front();
    queue.pop_front();
    for (ProcessId w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] > dist[static_cast<std::size_t>(v)] + 1) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(w);
      }
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    if (s.get(static_cast<ProcessId>(p)) != dist[p]) return false;
  }
  return true;
}

}  // namespace ekbd::stab
