/// \file protocol.hpp
/// Shared-variable self-stabilizing protocols — the *clients* of the
/// distributed daemon (paper §1).
///
/// Model: each process owns a few integer registers; a protocol action
/// reads the process's own registers and its conflict-graph neighbors'
/// registers, then writes its own. The daemon (daemon/scheduler.hpp)
/// schedules a process's action only while that process "eats", so under
/// weak exclusion no two neighbors execute concurrently — the local-mutual-
/// exclusion guarantee stabilizing protocols are usually proved under.
///
/// Self-stabilization requires every correct process to execute infinitely
/// many steps from *any* initial state; protocols must therefore tolerate
/// arbitrary register contents (transient faults write anything).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace ekbd::stab {

using ekbd::graph::ConflictGraph;
using ekbd::graph::ProcessId;

/// The global shared-register state: `regs` registers per process.
class StateTable {
 public:
  StateTable(std::size_t processes, std::size_t regs_per_process)
      : regs_(regs_per_process), data_(processes * regs_per_process, 0) {}

  [[nodiscard]] std::int64_t get(ProcessId p, std::size_t r = 0) const {
    return data_[static_cast<std::size_t>(p) * regs_ + r];
  }
  void set(ProcessId p, std::int64_t v, std::size_t r = 0) {
    data_[static_cast<std::size_t>(p) * regs_ + r] = v;
  }

  [[nodiscard]] std::size_t processes() const { return regs_ == 0 ? 0 : data_.size() / regs_; }
  [[nodiscard]] std::size_t regs_per_process() const { return regs_; }

  /// Transient-fault injection: overwrite every register with a uniform
  /// value in [lo, hi] (arbitrary initial configuration).
  void randomize(ekbd::sim::Rng& rng, std::int64_t lo, std::int64_t hi) {
    for (auto& v : data_) v = rng.uniform_int(lo, hi);
  }

  /// Corrupt one specific register.
  void corrupt(ProcessId p, std::size_t r, std::int64_t v) { set(p, v, r); }

 private:
  std::size_t regs_;
  std::vector<std::int64_t> data_;
};

/// A self-stabilizing protocol in the shared-variable model.
class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t regs_per_process() const { return 1; }

  /// Is any action of `p` enabled in state `s`? (guard evaluation)
  [[nodiscard]] virtual bool enabled(ProcessId p, const StateTable& s,
                                     const ConflictGraph& g) const = 0;

  /// Execute one enabled action of `p` (no-op expected if none enabled).
  virtual void step(ProcessId p, StateTable& s, const ConflictGraph& g) const = 0;

  /// Is the global state legitimate (inside the closed safe set)?
  [[nodiscard]] virtual bool legitimate(const StateTable& s,
                                        const ConflictGraph& g) const = 0;

  /// Sensible range for random initialization / corruption values.
  [[nodiscard]] virtual std::int64_t corruption_hi(const ConflictGraph& g) const {
    return static_cast<std::int64_t>(g.size()) * 4;
  }

  /// Legitimacy restricted to the live processes (`live[p]` false = p has
  /// crashed and its registers are frozen environment). Crashed processes
  /// execute no steps, so only predicates correct processes can establish
  /// count. Silent protocols override this with "no live process enabled";
  /// the default ignores liveness (suitable for crash-free experiments).
  [[nodiscard]] virtual bool legitimate_restricted(const StateTable& s, const ConflictGraph& g,
                                                   const std::vector<bool>& live) const {
    (void)live;
    return legitimate(s, g);
  }

 protected:
  /// Helper for silent protocols: no live process has an enabled guard.
  [[nodiscard]] bool no_live_enabled(const StateTable& s, const ConflictGraph& g,
                                     const std::vector<bool>& live) const {
    for (std::size_t p = 0; p < g.size(); ++p) {
      if (live[p] && enabled(static_cast<ProcessId>(p), s, g)) return false;
    }
    return true;
  }
};

}  // namespace ekbd::stab
