/// \file token_ring.hpp
/// Dijkstra's K-state self-stabilizing token ring (CACM 1974) — the
/// original self-stabilizing protocol, and the canonical daemon client.
///
/// Topology: the processes form a unidirectional ring in id order (use
/// graph::ring). Register x_i ∈ Z_K with K > n:
///
///   bottom (id 0):  x_0 == x_{n-1}        → x_0 := x_0 + 1 (mod K)
///   other  (id i):  x_i != x_{i-1}        → x_i := x_{i-1}
///
/// A process is said to *hold a token* when its guard is enabled; in a
/// legitimate state exactly one token exists and it circulates forever.
/// From any configuration the ring converges to a single token — provided
/// every process keeps executing, which is precisely what a wait-free
/// daemon guarantees under crash faults (the paper's point).
#pragma once

#include "stab/protocol.hpp"

namespace ekbd::stab {

class DijkstraTokenRing final : public Protocol {
 public:
  /// \param n ring size; \param k state modulus, must be > n for
  /// convergence from arbitrary states (defaults to n + 1).
  explicit DijkstraTokenRing(std::size_t n, std::int64_t k = 0)
      : n_(n), k_(k > 0 ? k : static_cast<std::int64_t>(n) + 1) {}

  [[nodiscard]] std::string name() const override { return "dijkstra-token-ring"; }

  [[nodiscard]] bool enabled(ProcessId p, const StateTable& s,
                             const ConflictGraph& g) const override;
  void step(ProcessId p, StateTable& s, const ConflictGraph& g) const override;
  [[nodiscard]] bool legitimate(const StateTable& s, const ConflictGraph& g) const override;

  [[nodiscard]] std::int64_t corruption_hi(const ConflictGraph&) const override {
    return k_ - 1;
  }

  /// Number of enabled guards == number of tokens in the ring.
  [[nodiscard]] std::size_t tokens(const StateTable& s, const ConflictGraph& g) const;

  [[nodiscard]] std::int64_t k() const { return k_; }

 private:
  [[nodiscard]] std::int64_t norm(std::int64_t v) const {
    std::int64_t m = v % k_;
    return m < 0 ? m + k_ : m;
  }
  [[nodiscard]] ProcessId pred(ProcessId p) const {
    return p == 0 ? static_cast<ProcessId>(n_ - 1) : p - 1;
  }

  std::size_t n_;
  std::int64_t k_;
};

}  // namespace ekbd::stab
