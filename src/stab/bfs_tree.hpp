/// \file bfs_tree.hpp
/// Self-stabilizing BFS distance tree (root = process 0).
///
/// Register d_i:
///
///   root:   d_0 != 0                         → d_0 := 0
///   other:  d_i != 1 + min{d_j : j ∈ N(i)}   → d_i := 1 + min d_j
///
/// Silent; converges to d_i = dist(0, i) on a connected graph (distances
/// are clamped to [0, n] so arbitrary corrupted values repair in one step
/// per process along each shortest path).
#pragma once

#include "stab/protocol.hpp"

namespace ekbd::stab {

class StabilizingBfsTree final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "stabilizing-bfs-tree"; }

  [[nodiscard]] bool enabled(ProcessId p, const StateTable& s,
                             const ConflictGraph& g) const override;
  void step(ProcessId p, StateTable& s, const ConflictGraph& g) const override;

  /// Legitimate = d equals the true BFS distance from process 0.
  [[nodiscard]] bool legitimate(const StateTable& s, const ConflictGraph& g) const override;
  [[nodiscard]] bool legitimate_restricted(const StateTable& s, const ConflictGraph& g,
                                           const std::vector<bool>& live) const override {
    return no_live_enabled(s, g, live);
  }

 private:
  [[nodiscard]] static std::int64_t target(ProcessId p, const StateTable& s,
                                           const ConflictGraph& g);
};

}  // namespace ekbd::stab
