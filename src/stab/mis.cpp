#include "stab/mis.hpp"

namespace ekbd::stab {

bool StabilizingMis::any_neighbor_in(ProcessId p, const StateTable& s, const ConflictGraph& g) {
  for (ProcessId j : g.neighbors(p)) {
    if (is_in(s, j)) return true;
  }
  return false;
}

bool StabilizingMis::enabled(ProcessId p, const StateTable& s, const ConflictGraph& g) const {
  const bool in = is_in(s, p);
  const bool neighbor_in = any_neighbor_in(p, s, g);
  return (in && neighbor_in) || (!in && !neighbor_in);
}

void StabilizingMis::step(ProcessId p, StateTable& s, const ConflictGraph& g) const {
  const bool in = is_in(s, p);
  const bool neighbor_in = any_neighbor_in(p, s, g);
  if (in && neighbor_in) {
    s.set(p, 0);  // leave
  } else if (!in && !neighbor_in) {
    s.set(p, 1);  // join
  }
}

bool StabilizingMis::legitimate(const StateTable& s, const ConflictGraph& g) const {
  for (std::size_t p = 0; p < g.size(); ++p) {
    if (enabled(static_cast<ProcessId>(p), s, g)) return false;
  }
  return true;
}

}  // namespace ekbd::stab
