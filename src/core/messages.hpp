/// \file messages.hpp
/// Wire format of Algorithm 1 (paper §3 / §7).
///
/// Four message types, matching the paper's channel-capacity analysis:
/// between any pair of neighbors at most one fork, one token (the fork
/// request carries the token), and two ping/acks are ever in transit.
/// Sender identity comes from the simulator's message envelope; the only
/// payload data is the requester's color inside a fork request — hence the
/// O(log n) message size of §7.
#pragma once

namespace ekbd::core {

/// Doorway ack solicitation (Action 2 → Action 3).
struct Ping {};

/// Doorway permission (Action 3/10 → Action 4).
struct Ack {};

/// Fork request; sending it passes the shared token to the fork holder
/// (Action 6 → Action 7). Carries the requester's static color, which the
/// holder compares against its own (higher color wins).
struct ForkRequest {
  int color = 0;
};

/// The shared fork itself (Action 7/10 → Action 8).
struct Fork {};

}  // namespace ekbd::core
