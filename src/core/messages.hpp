/// \file messages.hpp
/// Wire format of Algorithm 1 (paper §3 / §7).
///
/// Four message types, matching the paper's channel-capacity analysis:
/// between any pair of neighbors at most one fork, one token (the fork
/// request carries the token), and two ping/acks are ever in transit.
/// Sender identity comes from the simulator's message envelope; the only
/// payload data is the requester's color inside a fork request — hence the
/// O(log n) message size of §7.
///
/// The struct definitions (Ping, Ack, ForkRequest, Fork) live in
/// sim/payload.hpp: every wire type in the repository is an alternative of
/// the closed `sim::Payload` variant, which must see complete types.
#pragma once

#include "sim/payload.hpp"
