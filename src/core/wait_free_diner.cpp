#include "core/wait_free_diner.hpp"

#include <bit>
#include <cassert>

#include "core/messages.hpp"

namespace ekbd::core {

using ekbd::dining::DinerState;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;

WaitFreeDiner::WaitFreeDiner(std::vector<ProcessId> neighbors, int color,
                             std::vector<int> neighbor_colors,
                             const ekbd::fd::FailureDetector& detector)
    : WaitFreeDiner(std::move(neighbors), color, std::move(neighbor_colors), detector,
                    Options{}) {}

WaitFreeDiner::WaitFreeDiner(std::vector<ProcessId> neighbors, int color,
                             std::vector<int> neighbor_colors,
                             const ekbd::fd::FailureDetector& detector, Options options)
    : Diner(std::move(neighbors)),
      color_(color),
      neighbor_colors_(std::move(neighbor_colors)),
      detector_(detector),
      options_(options),
      per_(diner_neighbors().size()) {
  assert(neighbor_colors_.size() == diner_neighbors().size());
  assert(options_.acks_per_session >= 1);
#ifndef NDEBUG
  for (int nc : neighbor_colors_) assert(nc != color_ && "neighbors must differ in color");
#endif
}

std::size_t WaitFreeDiner::idx(ProcessId j) const {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (ns[k] == j) return k;
  }
  assert(false && "message from a non-neighbor");
  return 0;
}

bool WaitFreeDiner::suspects(ProcessId j) const { return detector_.suspects(id(), j); }

void WaitFreeDiner::diner_start() {
  // §3.1: initially the fork is at the higher-colored endpoint of each
  // edge and the token at the lower-colored endpoint.
  for (std::size_t k = 0; k < per_.size(); ++k) {
    if (color_ > neighbor_colors_[k]) {
      per_[k].fork = true;
    } else {
      per_[k].token = true;
    }
  }
}

// ------------------------------------------------------------- Action 1 --

void WaitFreeDiner::become_hungry() {
  assert(thinking());
  set_state(DinerState::kHungry);
  pump();
}

// ---------------------------------------------------- guard re-evaluation --

void WaitFreeDiner::pump() {
  if (!hungry()) return;
  if (!inside_) {
    pump_pings();         // Action 2
    try_enter_doorway();  // Action 5
  }
  if (hungry() && inside_) {
    pump_fork_requests();  // Action 6
    try_eat();             // Action 9
  }
}

// ------------------------------------------------------------- Action 2 --
// While hungry and outside the doorway: request an ack from every neighbor
// from which none is held and no ping is pending.

void WaitFreeDiner::pump_pings() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (!s.pinged && !s.ack) {
      send(ns[k], Ping{}, MsgLayer::kDining);
      ++counts_.pings;
      s.pinged = true;
    }
  }
}

// ------------------------------------------------------------- Action 3 --
// Grant the ping unless inside the doorway or the per-session ack budget
// (paper: one) is exhausted; a granted ack while hungry spends the budget.

void WaitFreeDiner::handle_ping(ProcessId j) {
  PerNeighbor& s = slot(j);
  const bool budget_spent =
      !options_.mutate_grant_beyond_budget && s.replied >= options_.acks_per_session;
  if (inside_ || budget_spent) {
    s.deferred = true;
  } else {
    send(j, Ack{}, MsgLayer::kDining);
    ++counts_.acks;
    if (hungry()) ++s.replied;
  }
}

// ------------------------------------------------------------- Action 4 --
// An ack only counts if we are still hungry and outside the doorway (stale
// acks from a previous session are discarded, but clear the pending ping).

void WaitFreeDiner::handle_ack(ProcessId j) {
  PerNeighbor& s = slot(j);
  s.ack = hungry() && !inside_;
  s.pinged = false;
}

// ------------------------------------------------------------- Action 5 --
// Enter the doorway once every neighbor has acked or is suspected.

void WaitFreeDiner::try_enter_doorway() {
  if (!hungry() || inside_) return;
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (!per_[k].ack && !suspects(ns[k])) return;
  }
  inside_ = true;
  for (PerNeighbor& s : per_) {
    s.ack = false;
    s.replied = 0;
  }
  note_enter_doorway();
}

// ------------------------------------------------------------- Action 6 --
// While hungry and inside: spend the token to request each missing fork,
// carrying our color.

void WaitFreeDiner::pump_fork_requests() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && !s.fork) {
      send(ns[k], ForkRequest{color_}, MsgLayer::kDining);
      ++counts_.fork_requests;
      s.token = false;
    }
  }
}

// ------------------------------------------------------------- Action 7 --
// Receive the token; yield the fork immediately iff outside the doorway,
// or hungry-inside with the lower color. Otherwise keep fork+token (the
// deferred request) until Action 10.

void WaitFreeDiner::handle_fork_request(ProcessId j, int req_color) {
  PerNeighbor& s = slot(j);
  s.token = true;
  if (!s.fork) {
    // Lemma 1.1: a request can only reach the current fork holder — under
    // reliable FIFO channels. The counter is the runtime check of that
    // argument: it stays 0 in every test and experiment under the paper's
    // model, and fires under the deliberate channel-fault experiments
    // (bench/e17_model_assumptions), which is exactly the point.
    ++lemma11_violations_;
    return;
  }
  if (!inside_ || (hungry() && color_ < req_color)) {
    if (!options_.mutate_drop_fork_handover) {
      send(j, Fork{}, MsgLayer::kDining);
      ++counts_.forks;
    }
    s.fork = false;
  }
}

// ------------------------------------------------------------- Action 8 --

void WaitFreeDiner::handle_fork(ProcessId j) { slot(j).fork = true; }

// ------------------------------------------------------------- Action 9 --
// Eat once, for every neighbor, we hold the shared fork or suspect it.

void WaitFreeDiner::try_eat() {
  if (!hungry() || !inside_) return;
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (!per_[k].fork && !suspects(ns[k])) return;
  }
  set_state(DinerState::kEating);
}

// ------------------------------------------------------------ Action 10 --
// Exit: back to thinking, leave the doorway, grant every deferred fork
// request (token ∧ fork) and every deferred ping.

void WaitFreeDiner::finish_eating() {
  assert(eating());
  inside_ = false;
  set_state(DinerState::kThinking);
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && s.fork) {
      send(ns[k], Fork{}, MsgLayer::kDining);
      ++counts_.forks;
      s.fork = false;
    }
    if (s.deferred) {
      send(ns[k], Ack{}, MsgLayer::kDining);
      ++counts_.acks;
      s.deferred = false;
    }
  }
}

// -------------------------------------------------------------- plumbing --

void WaitFreeDiner::diner_message(const Message& m) {
  if (m.as<Ping>() != nullptr) {
    handle_ping(m.from);
  } else if (m.as<Ack>() != nullptr) {
    handle_ack(m.from);
  } else if (const auto* req = m.as<ForkRequest>()) {
    handle_fork_request(m.from, req->color);
  } else if (m.as<Fork>() != nullptr) {
    handle_fork(m.from);
  } else {
    assert(false && "unknown dining message");
    return;
  }
  pump();
}

std::size_t WaitFreeDiner::state_bits() const {
  // §7: log2(#colors) + 6δ + c, with c covering state (2 bits) and the
  // doorway flag (1 bit). With the generalized ack budget m the replied
  // flag widens from 1 to ceil(log2(m+1)) bits per neighbor.
  const auto color_bits = static_cast<std::size_t>(
      std::bit_width(static_cast<unsigned>(color_ < 0 ? 0 : color_) + 1u));
  const auto replied_bits = static_cast<std::size_t>(
      std::bit_width(static_cast<unsigned>(options_.acks_per_session)));
  return color_bits + (5 + replied_bits) * per_.size() + 3;
}

}  // namespace ekbd::core
