#include "core/wait_free_diner.hpp"

#include <bit>
#include <cassert>

#include "core/messages.hpp"

namespace ekbd::core {

using ekbd::dining::DinerState;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;

WaitFreeDiner::WaitFreeDiner(std::vector<ProcessId> neighbors, int color,
                             std::vector<int> neighbor_colors,
                             const ekbd::fd::FailureDetector& detector)
    : WaitFreeDiner(std::move(neighbors), color, std::move(neighbor_colors), detector,
                    Options{}) {}

WaitFreeDiner::WaitFreeDiner(std::vector<ProcessId> neighbors, int color,
                             std::vector<int> neighbor_colors,
                             const ekbd::fd::FailureDetector& detector, Options options)
    : Diner(std::move(neighbors)),
      color_(color),
      neighbor_colors_(std::move(neighbor_colors)),
      detector_(detector),
      options_(options),
      per_(diner_neighbors().size()) {
  assert(neighbor_colors_.size() == diner_neighbors().size());
  assert(options_.acks_per_session >= 1);
#ifndef NDEBUG
  for (int nc : neighbor_colors_) assert(nc != color_ && "neighbors must differ in color");
#endif
}

std::size_t WaitFreeDiner::find_idx(ProcessId j) const {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (ns[k] == j) return k;
  }
  return kNotANeighbor;
}

std::size_t WaitFreeDiner::idx(ProcessId j) const {
  const std::size_t k = find_idx(j);
  assert(k != kNotANeighbor && "not a neighbor");
  return k == kNotANeighbor ? 0 : k;
}

bool WaitFreeDiner::suspects(ProcessId j) const { return detector_.suspects(id(), j); }

void WaitFreeDiner::diner_start() {
  // §3.1: initially the fork is at the higher-colored endpoint of each
  // edge and the token at the lower-colored endpoint.
  for (std::size_t k = 0; k < per_.size(); ++k) {
    if (color_ > neighbor_colors_[k]) {
      per_[k].fork = true;
    } else {
      per_[k].token = true;
    }
  }
}

// ------------------------------------------------------------- Action 1 --

void WaitFreeDiner::become_hungry() {
  assert(thinking());
  set_state(DinerState::kHungry);
  pump();
}

// ---------------------------------------------------- guard re-evaluation --

void WaitFreeDiner::pump() {
  if (!hungry()) return;
  if (!inside_) {
    pump_pings();         // Action 2
    try_enter_doorway();  // Action 5
  }
  if (hungry() && inside_) {
    pump_fork_requests();  // Action 6
    try_eat();             // Action 9
  }
}

// ------------------------------------------------------------- Action 2 --
// While hungry and outside the doorway: request an ack from every neighbor
// from which none is held and no ping is pending.

void WaitFreeDiner::pump_pings() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (!s.synced) continue;  // mid-rejoin: the RejoinAck must land first
    if (!s.pinged && !s.ack) {
      send(ns[k], Ping{}, MsgLayer::kDining);
      ++counts_.pings;
      s.pinged = true;
    }
  }
}

// ------------------------------------------------------------- Action 3 --
// Grant the ping unless inside the doorway or the per-session ack budget
// (paper: one) is exhausted; a granted ack while hungry spends the budget.

void WaitFreeDiner::handle_ping(ProcessId j) {
  PerNeighbor& s = slot(j);
  const bool budget_spent =
      !options_.mutate_grant_beyond_budget && s.replied >= options_.acks_per_session;
  if (inside_ || budget_spent) {
    s.deferred = true;
  } else {
    send(j, Ack{}, MsgLayer::kDining);
    ++counts_.acks;
    if (hungry()) ++s.replied;
  }
}

// ------------------------------------------------------------- Action 4 --
// An ack only counts if we are still hungry and outside the doorway (stale
// acks from a previous session are discarded, but clear the pending ping).

void WaitFreeDiner::handle_ack(ProcessId j) {
  PerNeighbor& s = slot(j);
  s.ack = hungry() && !inside_;
  s.pinged = false;
}

// ------------------------------------------------------------- Action 5 --
// Enter the doorway once every neighbor has acked or is suspected.

void WaitFreeDiner::try_enter_doorway() {
  if (!hungry() || inside_) return;
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (!per_[k].ack && !suspects(ns[k])) return;
  }
  inside_ = true;
  for (PerNeighbor& s : per_) {
    s.ack = false;
    s.replied = 0;
  }
  note_enter_doorway();
}

// ------------------------------------------------------------- Action 6 --
// While hungry and inside: spend the token to request each missing fork,
// carrying our color.

void WaitFreeDiner::pump_fork_requests() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && !s.fork) {
      send(ns[k], ForkRequest{color_}, MsgLayer::kDining);
      ++counts_.fork_requests;
      s.token = false;
    }
  }
}

// ------------------------------------------------------------- Action 7 --
// Receive the token; yield the fork immediately iff outside the doorway,
// or hungry-inside with the lower color. Otherwise keep fork+token (the
// deferred request) until Action 10.

void WaitFreeDiner::handle_fork_request(ProcessId j, int req_color) {
  PerNeighbor& s = slot(j);
  s.token = true;
  if (!s.fork) {
    // Lemma 1.1: a request can only reach the current fork holder — under
    // reliable FIFO channels. The counter is the runtime check of that
    // argument: it stays 0 in every test and experiment under the paper's
    // model, and fires under the deliberate channel-fault experiments
    // (bench/e17_model_assumptions), which is exactly the point.
    ++lemma11_violations_;
    return;
  }
  if (!inside_ || (hungry() && color_ < req_color)) {
    if (!options_.mutate_drop_fork_handover) {
      send(j, Fork{}, MsgLayer::kDining);
      ++counts_.forks;
    }
    s.fork = false;
  }
}

// ------------------------------------------------------------- Action 8 --

void WaitFreeDiner::handle_fork(ProcessId j) { slot(j).fork = true; }

// ------------------------------------------------------------- Action 9 --
// Eat once, for every neighbor, we hold the shared fork or suspect it.

void WaitFreeDiner::try_eat() {
  if (!hungry() || !inside_) return;
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (!per_[k].fork && !suspects(ns[k])) return;
  }
  set_state(DinerState::kEating);
}

// ------------------------------------------------------------ Action 10 --
// Exit: back to thinking, leave the doorway, grant every deferred fork
// request (token ∧ fork) and every deferred ping.

void WaitFreeDiner::finish_eating() {
  assert(eating());
  inside_ = false;
  set_state(DinerState::kThinking);
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    PerNeighbor& s = per_[k];
    if (s.token && s.fork) {
      send(ns[k], Fork{}, MsgLayer::kDining);
      ++counts_.forks;
      s.fork = false;
    }
    if (s.deferred) {
      send(ns[k], Ack{}, MsgLayer::kDining);
      ++counts_.acks;
      s.deferred = false;
    }
  }
  // Session boundary: edge ops queued while hungry/eating apply now.
  if (!pending_.empty()) apply_pending_ops();
}

// ------------------------------------------------------ dynamic graph ops --
// Churn only changes the protocol's shape while thinking; ops issued in any
// other state queue until the next return to thinking (apply_pending_ops).

void WaitFreeDiner::request_add_edge(ProcessId peer) {
  if (peer == id() || peer == ekbd::sim::kNoProcess) return;
  if (find_idx(peer) != kNotANeighbor) return;  // already conflicting
  if (!thinking()) {
    pending_.push_back({PendingOp::Kind::kAddEdge, peer, 0});
    return;
  }
  do_add_edge(peer);
}

void WaitFreeDiner::request_remove_edge(ProcessId peer) {
  if (!thinking()) {
    pending_.push_back({PendingOp::Kind::kRemoveEdge, peer, 0});
    return;
  }
  do_remove_edge(peer);
}

void WaitFreeDiner::request_recolor(int new_color) {
  if (new_color == color_) return;
  if (!thinking()) {
    pending_.push_back({PendingOp::Kind::kRecolor, ekbd::sim::kNoProcess, new_color});
    return;
  }
  color_ = new_color;
}

std::size_t WaitFreeDiner::unsynced_edges() const {
  std::size_t n = 0;
  for (const PerNeighbor& s : per_) n += s.synced ? 0 : 1;
  return n;
}

void WaitFreeDiner::apply_pending_ops() {
  assert(thinking());
  std::vector<PendingOp> ops;
  ops.swap(pending_);
  for (const PendingOp& op : ops) {
    switch (op.kind) {
      case PendingOp::Kind::kAddEdge: do_add_edge(op.peer); break;
      case PendingOp::Kind::kRemoveEdge: do_remove_edge(op.peer); break;
      case PendingOp::Kind::kAcceptEdge: do_accept_edge(op.peer, op.color); break;
      case PendingOp::Kind::kRecolor: color_ = op.color; break;
    }
  }
}

void WaitFreeDiner::do_add_edge(ProcessId peer) {
  assert(thinking());
  if (find_idx(peer) != kNotANeighbor) return;
  send(peer, EdgeProposal{color_}, MsgLayer::kDining);
  // The edge becomes live here only when the EdgeAccept arrives
  // (handle_edge_accept); until then this side's shape is unchanged.
}

void WaitFreeDiner::do_remove_edge(ProcessId peer) {
  assert(thinking());
  const std::size_t k = find_idx(peer);
  if (k == kNotANeighbor) return;
  drop_slot(k);
  send(peer, EdgeDrop{}, MsgLayer::kDining);
  // FIFO fences the drop: nothing this side sent for the edge trails it,
  // and trailing traffic from the peer is ignored by the find_idx gate.
  note_edge_event(ekbd::dining::TraceEventKind::kEdgeRemoved, peer);
}

void WaitFreeDiner::do_accept_edge(ProcessId peer, int peer_color) {
  assert(thinking());
  if (find_idx(peer) != kNotANeighbor) return;  // duplicate proposal
  const bool i_hold_fork =
      color_ > peer_color || (color_ == peer_color && id() > peer);
  mutable_neighbors().push_back(peer);
  neighbor_colors_.push_back(peer_color);
  PerNeighbor s;
  s.fork = i_hold_fork;
  s.token = !i_hold_fork;
  per_.push_back(s);
  send(peer, EdgeAccept{color_, i_hold_fork ? 1u : 0u}, MsgLayer::kDining);
}

void WaitFreeDiner::handle_edge_proposal(ProcessId j, int peer_color) {
  if (find_idx(j) != kNotANeighbor) return;  // already neighbors
  if (!thinking()) {
    pending_.push_back({PendingOp::Kind::kAcceptEdge, j, peer_color});
    return;
  }
  do_accept_edge(j, peer_color);
}

void WaitFreeDiner::handle_edge_accept(ProcessId j, int peer_color,
                                       bool acceptor_has_fork) {
  if (find_idx(j) != kNotANeighbor) return;  // duplicate accept
  mutable_neighbors().push_back(j);
  neighbor_colors_.push_back(peer_color);
  PerNeighbor s;
  s.fork = !acceptor_has_fork;
  s.token = acceptor_has_fork;
  per_.push_back(s);
  // The initiator may have left thinking since it proposed; a slot
  // appearing mid-session only strengthens the doorway/eat guards, so
  // this is safe in any state. One record per edge change: the initiator
  // records it, at the moment both ends agree the edge exists.
  note_edge_event(ekbd::dining::TraceEventKind::kEdgeAdded, j);
}

void WaitFreeDiner::handle_edge_drop(ProcessId j) {
  const std::size_t k = find_idx(j);
  if (k == kNotANeighbor) return;
  // The initiator already recorded kEdgeRemoved; drop silently. Losing a
  // slot only weakens our guards, so any state is fine.
  drop_slot(k);
}

void WaitFreeDiner::drop_slot(std::size_t k) {
  auto& ns = mutable_neighbors();
  ns.erase(ns.begin() + static_cast<std::ptrdiff_t>(k));
  neighbor_colors_.erase(neighbor_colors_.begin() + static_cast<std::ptrdiff_t>(k));
  per_.erase(per_.begin() + static_cast<std::ptrdiff_t>(k));
}

// ---------------------------------------------------------- crash rejoin --
// See the file header and docs/LOADGEN.md for the P1 case analysis.

void WaitFreeDiner::diner_recover() {
  ++epoch_;
  inside_ = false;
  pending_.clear();
  rejoin_timer_ = 0;  // the old incarnation's timers died with it
  for (PerNeighbor& s : per_) {
    s = PerNeighbor{};
    s.synced = false;
  }
  if (per_.empty()) return;
  send_rejoin_requests();
  arm_rejoin_timer();
}

void WaitFreeDiner::send_rejoin_requests() {
  const auto& ns = diner_neighbors();
  for (std::size_t k = 0; k < ns.size(); ++k) {
    if (per_[k].synced || suspects(ns[k])) continue;
    send(ns[k], RejoinRequest{epoch_}, MsgLayer::kDining);
  }
}

void WaitFreeDiner::arm_rejoin_timer() {
  if (rejoin_timer_ == 0) rejoin_timer_ = set_timer(recheck_period());
}

void WaitFreeDiner::diner_timer(ekbd::sim::TimerId id) {
  if (id != rejoin_timer_) return;
  rejoin_timer_ = 0;
  if (unsynced_edges() == 0) return;
  // Retransmit: the first round may have raced a still-crashed neighbor
  // (engine drops sends to crashed processes). Suspected neighbors are
  // skipped — when one recovers, its own RejoinRequest reaches us, or the
  // retraction lets the next round through.
  send_rejoin_requests();
  arm_rejoin_timer();
}

void WaitFreeDiner::handle_rejoin_request(ProcessId j, std::uint32_t peer_epoch) {
  const std::size_t k = find_idx(j);
  if (k == kNotANeighbor) return;  // edge removed while j was down
  PerNeighbor& s = per_[k];
  if (s.synced) {
    // Survivor: j's halves of the handshake state died with it — clear the
    // transients so both sides restart the doorway exchange cleanly.
    s.pinged = false;
    s.ack = false;
    s.deferred = false;
    s.replied = 0;
    if (!s.fork && !s.token) {
      // The crash destroyed both movables (fork and/or token in transit to
      // the dead incarnation, or held by it). Exactly one side regenerates:
      // the survivor takes the token, the rejoiner will take the fork.
      s.token = true;
    }
    send(j, RejoinAck{peer_epoch, static_cast<std::uint16_t>(s.fork ? 1 : 0),
                      static_cast<std::uint16_t>(s.token ? 1 : 0)},
         MsgLayer::kDining);
  } else {
    // Both endpoints crashed: the higher id is the authority and minting
    // happens exactly once, on its side.
    if (id() < j) return;  // j answers our own RejoinRequest instead
    s = PerNeighbor{};
    s.token = true;
    s.synced = true;
    send(j, RejoinAck{peer_epoch, 0, 1}, MsgLayer::kDining);
  }
}

void WaitFreeDiner::handle_rejoin_ack(ProcessId j, const RejoinAck& ack) {
  if (ack.epoch != epoch_) return;  // answer to a previous incarnation
  const std::size_t k = find_idx(j);
  if (k == kNotANeighbor) return;
  PerNeighbor& s = per_[k];
  if (s.synced) return;  // duplicate (retransmission race)
  s = PerNeighbor{};
  s.fork = ack.has_fork == 0;    // complement: the pair has exactly one
  s.token = ack.has_token == 0;  // of each movable between them
  s.synced = true;
  if (unsynced_edges() == 0 && rejoin_timer_ != 0) {
    cancel_timer(rejoin_timer_);
    rejoin_timer_ = 0;
  }
}

// -------------------------------------------------------------- plumbing --

void WaitFreeDiner::diner_message(const Message& m) {
  const ProcessId j = m.from;
  if (const auto* prop = m.as<EdgeProposal>()) {
    handle_edge_proposal(j, prop->color);
  } else if (const auto* acc = m.as<EdgeAccept>()) {
    handle_edge_accept(j, acc->color, acc->acceptor_has_fork != 0);
  } else if (m.as<EdgeDrop>() != nullptr) {
    handle_edge_drop(j);
  } else if (const auto* rreq = m.as<RejoinRequest>()) {
    handle_rejoin_request(j, rreq->epoch);
  } else if (const auto* rack = m.as<RejoinAck>()) {
    handle_rejoin_ack(j, *rack);
  } else {
    const std::size_t k = find_idx(j);
    if (k == kNotANeighbor) return;  // trailing traffic from a removed edge
    if (!per_[k].synced) return;     // pre-crash traffic; the RejoinAck fences it
    if (m.as<Ping>() != nullptr) {
      handle_ping(j);
    } else if (m.as<Ack>() != nullptr) {
      handle_ack(j);
    } else if (const auto* req = m.as<ForkRequest>()) {
      handle_fork_request(j, req->color);
    } else if (m.as<Fork>() != nullptr) {
      handle_fork(j);
    } else {
      assert(false && "unknown dining message");
      return;
    }
  }
  pump();
}

std::size_t WaitFreeDiner::state_bits() const {
  // §7: log2(#colors) + 6δ + c, with c covering state (2 bits) and the
  // doorway flag (1 bit). With the generalized ack budget m the replied
  // flag widens from 1 to ceil(log2(m+1)) bits per neighbor.
  const auto color_bits = static_cast<std::size_t>(
      std::bit_width(static_cast<unsigned>(color_ < 0 ? 0 : color_) + 1u));
  const auto replied_bits = static_cast<std::size_t>(
      std::bit_width(static_cast<unsigned>(options_.acks_per_session)));
  return color_bits + (5 + replied_bits) * per_.size() + 3;
}

}  // namespace ekbd::core
