/// \file wait_free_diner.hpp
/// The paper's contribution: Algorithm 1 — wait-free dining with eventual
/// 2-bounded waiting under eventual weak exclusion, using ◇P₁.
///
/// Structure (paper §3):
///
///  * Phase 1, *outside the doorway*: a hungry process pings every neighbor
///    and may enter the doorway once, for each neighbor, it either received
///    an ack during this hungry session or currently suspects the neighbor.
///    A process grants at most one ack per neighbor per own hungry session
///    (the `replied` flag) — that restriction is what sharpens the
///    doorway's "finite overtaking" into *eventual 2-bounded waiting*.
///
///  * Phase 2, *inside the doorway*: the process requests every missing
///    fork by sending the shared token; the holder yields immediately iff
///    it is outside the doorway or is hungry with a lower static color,
///    otherwise it defers until it exits (Action 10). The process eats
///    once, for each neighbor, it either holds the shared fork or suspects
///    the neighbor.
///
/// Suspicion (◇P₁) substitutes for acks and forks of crashed neighbors —
/// that is the entire wait-freedom mechanism; before the detector
/// converges, false suspicions can cause (finitely many) exclusion
/// violations, which ◇WX tolerates.
///
/// The per-neighbor state is exactly the paper's nine variable families;
/// `state_bits()` reports the §7 space formula's measured value.
///
/// Two extensions beyond the paper power the load harness (src/load/,
/// docs/LOADGEN.md), both confined to reliable-FIFO deployments:
///
///  * **Edge churn** — `request_add_edge` / `request_remove_edge` /
///    `request_recolor` mutate the conflict graph at session boundaries
///    (ops issued while hungry/eating queue until the next return to
///    thinking). Additions run a two-message handshake (EdgeProposal →
///    EdgeAccept) in which the *acceptor* places the new edge's fork and
///    token (higher color holds the fork, ties to the higher id); removals
///    are a single EdgeDrop, fenced by FIFO so no dining message for the
///    dead edge trails it.
///
///  * **Crash recovery** — on `on_recover` the diner bumps its incarnation
///    epoch, marks every edge *unsynced* and runs a RejoinRequest /
///    RejoinAck handshake per neighbor: the survivor clears its transient
///    handshake state, regenerates a lost token if the crash destroyed the
///    pair's fork+token, and reports who holds what; the rejoiner takes the
///    complement. Unsynced edges send no pings/requests and block eating
///    exactly like unsuspected missing forks, and dining messages arriving
///    from an unsynced neighbor are dropped (FIFO makes the RejoinAck a
///    fence separating stale traffic from live traffic). If both endpoints
///    crashed, the higher id acts as the authority. P1 (one fork per edge)
///    holds across any interleaving of crashes, in-flight forks and
///    recoveries — see docs/LOADGEN.md for the case analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "dining/diner.hpp"
#include "fd/detector.hpp"

namespace ekbd::core {

class WaitFreeDiner : public ekbd::dining::Diner {
 public:
  using ProcessId = ekbd::sim::ProcessId;

  /// Per-neighbor message counters (instrumentation for E9).
  struct MessageCounts {
    std::uint64_t pings = 0;
    std::uint64_t acks = 0;
    std::uint64_t fork_requests = 0;
    std::uint64_t forks = 0;
    [[nodiscard]] std::uint64_t total() const {
      return pings + acks + fork_requests + forks;
    }
  };

  struct Options {
    /// Maximum acks granted per neighbor per own hungry session. The paper
    /// fixes this to 1, which yields eventual 2-bounded waiting (Theorem
    /// 3: m granted entries + 1 stale in-flight ack = m+1). Generalizing
    /// the budget to m gives eventual (m+1)-bounded waiting — the "k" of
    /// the paper's title, measured by bench/e11_kbound.
    int acks_per_session = 1;

    // Deliberate bugs, used ONLY by the model-checking honesty suite
    // (tests/liveness_test.cpp, bench/e23_liveness): each seeds a known
    // violation the liveness checker must re-detect. Never set elsewhere.

    /// Action 7 mutation: when yielding, mark the fork as gone but never
    /// send it — the requester waits forever inside the doorway. Seeds a
    /// weakly-fair hungry-forever lasso (P3 violation).
    bool mutate_drop_fork_handover = false;
    /// Action 3 mutation: ignore the per-session ack budget (grant every
    /// ping when outside the doorway). Destroys the doorway's overtaking
    /// bound: a neighbor can starve a slow hungry process through
    /// unboundedly many sessions (P4 violation).
    bool mutate_grant_beyond_budget = false;
  };

  /// \param neighbors        conflict-graph neighbors of this process
  /// \param color            this process's static priority (locally unique)
  /// \param neighbor_colors  colors aligned with `neighbors` (for the
  ///                         initial fork/token placement: fork starts at
  ///                         the higher-colored endpoint)
  /// \param detector         the ◇P₁ oracle (shared by all diners)
  WaitFreeDiner(std::vector<ProcessId> neighbors, int color,
                std::vector<int> neighbor_colors,
                const ekbd::fd::FailureDetector& detector);

  /// As above with a non-default ack budget (fairness generalization).
  WaitFreeDiner(std::vector<ProcessId> neighbors, int color,
                std::vector<int> neighbor_colors,
                const ekbd::fd::FailureDetector& detector, Options options);

  // -- dining::Diner ------------------------------------------------------

  void become_hungry() override;            // Action 1
  void finish_eating() override;            // Action 10
  [[nodiscard]] bool inside_doorway() const override { return inside_; }
  [[nodiscard]] std::size_t state_bits() const override;

  // -- dynamic graph (load harness) ----------------------------------------
  //
  // All three are safe to call at any time from this process's execution
  // context (a harness callback or timer): while not thinking the op is
  // queued and applied on the next return to thinking, so the protocol
  // state machine only ever changes shape at a session boundary.

  /// Initiate adding conflict edge {this, peer}. The edge is live (and
  /// recorded as kEdgeAdded) when the acceptor's EdgeAccept arrives.
  void request_add_edge(ProcessId peer);
  /// Initiate removing conflict edge {this, peer} (recorded kEdgeRemoved).
  void request_remove_edge(ProcessId peer);
  /// Adopt a new color (incremental recoloring). Colors are only compared
  /// through the value a ForkRequest carries inline, so a lagging neighbor
  /// view is safe: a transient tie makes both sides defer (delay, never a
  /// safety violation).
  void request_recolor(int new_color);

  /// Edges still waiting for their post-recovery RejoinAck.
  [[nodiscard]] std::size_t unsynced_edges() const;
  /// Incarnation count (0 until the first recovery).
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  /// Ops queued for the next return to thinking.
  [[nodiscard]] std::size_t pending_ops() const { return pending_.size(); }

  // -- introspection (tests / invariant checks) ----------------------------

  [[nodiscard]] int color() const { return color_; }
  [[nodiscard]] bool holds_fork(ProcessId j) const { return slot(j).fork; }
  [[nodiscard]] bool holds_token(ProcessId j) const { return slot(j).token; }
  [[nodiscard]] bool has_pending_ping(ProcessId j) const { return slot(j).pinged; }
  [[nodiscard]] bool has_ack_from(ProcessId j) const { return slot(j).ack; }
  [[nodiscard]] bool has_replied_to(ProcessId j) const { return slot(j).replied > 0; }
  [[nodiscard]] bool has_deferred_ping_from(ProcessId j) const { return slot(j).deferred; }
  /// Acks granted to j this hungry session (the spent budget of Theorem 3).
  [[nodiscard]] int acks_granted_to(ProcessId j) const { return slot(j).replied; }
  [[nodiscard]] const MessageCounts& message_counts() const { return counts_; }

  /// Times a fork request arrived while this process did not hold the
  /// fork. Lemma 1.1 proves this never happens; the counter must stay 0.
  [[nodiscard]] std::uint64_t lemma11_violations() const { return lemma11_violations_; }

 protected:
  void pump() override;
  void diner_start() override;
  void diner_message(const ekbd::sim::Message& m) override;
  void diner_timer(ekbd::sim::TimerId id) override;
  void diner_recover() override;

 private:
  /// The six per-neighbor variables of §3.1 plus the rejoin flag.
  /// `replied` is a counter instead of the paper's boolean to support the
  /// generalized ack budget (Options::acks_per_session); with the default
  /// budget of 1 it only ever takes the values 0/1 and is exactly the
  /// paper's flag. `synced` is always true outside a rejoin window and is
  /// excluded from the §7 space formula.
  struct PerNeighbor {
    bool fork = false;      ///< I hold the fork shared with j
    bool token = false;     ///< I hold the token (right to request the fork)
    bool pinged = false;    ///< a ping I initiated is pending with j
    bool ack = false;       ///< received j's ack this hungry session, while outside
    bool deferred = false;  ///< I am deferring a ping from j
    int replied = 0;        ///< acks granted to j during my current hungry session
    bool synced = true;     ///< edge state agreed with j (false mid-rejoin)
  };

  /// Edge op issued while not thinking, replayed at the session boundary.
  struct PendingOp {
    enum class Kind : std::uint8_t { kAddEdge, kRemoveEdge, kAcceptEdge, kRecolor };
    Kind kind = Kind::kAddEdge;
    ProcessId peer = ekbd::sim::kNoProcess;
    int color = 0;  ///< proposer's color (kAcceptEdge) / new color (kRecolor)
  };

  static constexpr std::size_t kNotANeighbor = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t find_idx(ProcessId j) const;  ///< kNotANeighbor if absent
  [[nodiscard]] std::size_t idx(ProcessId j) const;       ///< asserts presence
  [[nodiscard]] const PerNeighbor& slot(ProcessId j) const { return per_[idx(j)]; }
  [[nodiscard]] PerNeighbor& slot(ProcessId j) { return per_[idx(j)]; }
  [[nodiscard]] bool suspects(ProcessId j) const;

  void pump_pings();                                     // Action 2
  void handle_ping(ProcessId j);                         // Action 3
  void handle_ack(ProcessId j);                          // Action 4
  void try_enter_doorway();                              // Action 5
  void pump_fork_requests();                             // Action 6
  void handle_fork_request(ProcessId j, int req_color);  // Action 7
  void handle_fork(ProcessId j);                         // Action 8
  void try_eat();                                        // Action 9

  // -- dynamic graph internals --------------------------------------------

  void do_add_edge(ProcessId peer);
  void do_remove_edge(ProcessId peer);
  void do_accept_edge(ProcessId peer, int peer_color);
  void handle_edge_proposal(ProcessId j, int peer_color);
  void handle_edge_accept(ProcessId j, int peer_color, bool acceptor_has_fork);
  void handle_edge_drop(ProcessId j);
  void handle_rejoin_request(ProcessId j, std::uint32_t peer_epoch);
  void handle_rejoin_ack(ProcessId j, const RejoinAck& ack);
  void apply_pending_ops();   ///< call only while thinking
  void drop_slot(std::size_t k);
  void arm_rejoin_timer();
  void send_rejoin_requests();

  int color_;
  std::vector<int> neighbor_colors_;
  const ekbd::fd::FailureDetector& detector_;
  const Options options_;
  std::vector<PerNeighbor> per_;
  bool inside_ = false;
  MessageCounts counts_;
  std::uint64_t lemma11_violations_ = 0;
  std::uint32_t epoch_ = 0;
  ekbd::sim::TimerId rejoin_timer_ = 0;
  std::vector<PendingOp> pending_;
};

}  // namespace ekbd::core
