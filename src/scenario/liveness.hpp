/// \file liveness.hpp
/// Canned LivenessWorlds: closed dining/drinking universes for the
/// fair-lasso checker (mc/liveness.hpp).
///
/// The timed Scenario runs a finite horizon; the liveness checker instead
/// needs a *closed* system whose reachable semantic state space is finite
/// while its runs are infinite. Two choices make that so:
///
///  * infinite meals (LivenessConfig::meals = -1): a diner that stops
///    eating is always offered a re-hungry choice, so every run
///    continues forever and the meal counter stays OUT of the state key —
///    the graph closes into cycles instead of growing a counter;
///  * every harness decision (ending a meal, getting hungry again,
///    crashing) is a controlled-mode *scheduled choice*, adversarially
///    interleaved with message deliveries like everything else.
///
/// These worlds drive the mechanical verification of the paper's liveness
/// claims (tests/liveness_test.cpp, bench/e23_liveness):
///
///  * P3 (wait-freedom): under weak event fairness and a truthful ◇P₁,
///    the correct configurations admit NO fair cycle on which a correct
///    process stays hungry forever — certified exhaustively on the full
///    K3 closure, and on restricted C5 / 2x3-grid / crash-adjacent
///    closures (`initial_hungry` selects the recurrent class; the
///    all-hungry C5 and timers-on crash graphs exceed any feasible
///    budget — docs/MODELCHECK.md "measured sizes").
///  * P4 (eventual 2-bounded waiting): with the per-session overtake
///    counters in the state key and `check_overtakes` on, every reachable
///    state of the infinite-session graph keeps every counter <= 2 — and
///    the bound is tight (bound 1 is violated; ack budget 3 violates
///    bound 2).
///  * Harness honesty: each seeded mutation (LivenessMutation) must be
///    re-detected — dropped fork handovers and a stuck detector as fair
///    hungry-forever lassos, budget-ignoring ack grants as an overtake
///    bound violation — and the counterexample must replay through the
///    post-hoc trace checkers (dining/checkers.hpp) to the same verdict.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/wait_free_diner.hpp"
#include "dining/trace.hpp"
#include "drinking/drinking_diner.hpp"
#include "fd/detector.hpp"
#include "graph/graph.hpp"
#include "mc/liveness.hpp"
#include "sim/simulator.hpp"

namespace ekbd::scenario {

using ekbd::sim::ProcessId;
using ekbd::sim::Time;

/// Deliberately broken variants for the honesty suite. kDropForkHandover
/// and kGrantBeyondBudget flip the corresponding core::WaitFreeDiner
/// mutation flags; kStuckDetector wires a NeverSuspect oracle (a ◇P₁
/// whose completeness never arrives) — combine it with `crash_victim`.
enum class LivenessMutation {
  kNone,
  kDropForkHandover,
  kGrantBeyondBudget,
  kStuckDetector,
};

struct LivenessConfig {
  /// graph::by_name family (the certification set: "clique"/3,
  /// "ring"/5, "grid"/6 = P2xP3).
  std::string topology = "clique";
  std::size_t n = 3;
  /// Eat sessions per process; -1 = forever (the liveness closure above).
  /// Finite values bound the run and put the capped counter in the key —
  /// used by the sleep-set tick-insensitivity regression, which needs a
  /// world explore() can exhaust.
  int meals = -1;
  /// Processes hungry from the start (bit per process).
  std::uint64_t initial_hungry = ~0ULL;
  /// Ack budget per neighbor per session (core::WaitFreeDiner::Options).
  int acks_per_session = 1;
  LivenessMutation mutation = LivenessMutation::kNone;
  /// When >= 0, crashing this process is offered as one more adversarial
  /// choice (the crash instant interleaves freely with every message).
  ProcessId crash_victim = ekbd::sim::kNoProcess;
  /// P4 machinery: keep per-(waiter, eater) overtake counters, capped at
  /// overtake_bound + 1, in the state key, and fail check() the moment a
  /// counter exceeds the bound.
  bool check_overtakes = false;
  int overtake_bound = 2;
};

/// A closed dining universe on cfg.topology: one core::WaitFreeDiner per
/// vertex (greedy coloring), a truthful time-free ◇P₁ (fd::PerfectDetector)
/// unless the stuck-detector mutation is selected, every harness decision
/// a scheduled choice. Records a dining::Trace so lasso replays can be
/// cross-checked against the post-hoc checkers.
class DinnerLivenessWorld final : public ekbd::mc::LivenessWorld {
 public:
  explicit DinnerLivenessWorld(const LivenessConfig& cfg);

  // -- mc::World ---------------------------------------------------------
  ekbd::sim::Simulator& simulator() override { return sim_; }
  std::string check() override;
  bool done() override;

  // -- mc::LivenessWorld -------------------------------------------------
  void state_key(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] std::uint64_t hungry_mask() const override;
  [[nodiscard]] std::uint64_t event_fingerprint(
      const ekbd::sim::PendingEvent& ev) const override;

  // -- cross-check access -------------------------------------------------
  [[nodiscard]] const ekbd::dining::Trace& trace() const { return trace_; }
  [[nodiscard]] const ekbd::graph::ConflictGraph& graph() const { return graph_; }
  /// Per-process crash times (-1 = correct), reconstructed from the trace
  /// in the shape dining::check_wait_freedom expects.
  [[nodiscard]] std::vector<Time> crash_times() const;
  [[nodiscard]] ekbd::core::WaitFreeDiner* diner(ProcessId p) {
    return diners_[static_cast<std::size_t>(p)];
  }

 private:
  /// Scheduled-choice roles: the semantic identity of a pending
  /// sim::schedule closure (event ids are fresh on every rebuild, roles
  /// are not). Registered by reading Simulator::next_event_id() just
  /// before scheduling; erased by the closure itself when it fires.
  enum class Role : std::uint64_t { kFinish = 1, kRehungry = 2, kCrash = 3 };

  void schedule_choice(Role role, ProcessId p);
  void on_trace(ekbd::dining::Diner& d, ekbd::dining::TraceEventKind kind);

  LivenessConfig cfg_;
  ekbd::graph::ConflictGraph graph_;
  std::vector<int> colors_;
  ekbd::sim::Simulator sim_;
  ekbd::fd::NeverSuspect never_;
  ekbd::fd::PerfectDetector perfect_;
  std::vector<ekbd::core::WaitFreeDiner*> diners_;
  ekbd::dining::Trace trace_;
  std::map<std::uint64_t, std::pair<Role, ProcessId>> scheduled_roles_;
  std::vector<int> meals_done_;
  /// overtakes_[waiter * n + eater]: times `eater` started eating during
  /// `waiter`'s current hungry session (capped at overtake_bound + 1).
  std::vector<int> overtakes_;
};

/// Factory adaptor for check_liveness.
[[nodiscard]] ekbd::mc::LivenessWorldFactory make_dinner_liveness_factory(LivenessConfig cfg);

/// A closed drinking universe on one edge: two drinking::DrinkingDiners
/// that re-thirst forever (each thirst session needs the shared bottle),
/// with drink endings and re-thirsts as scheduled choices. Crash-free,
/// message-driven — run it with include_timers = false. Verifies thirst
/// liveness: no fair cycle keeps a process thirsty forever.
class DrinkingEdgeLivenessWorld final : public ekbd::mc::LivenessWorld {
 public:
  DrinkingEdgeLivenessWorld();

  ekbd::sim::Simulator& simulator() override { return sim_; }
  std::string check() override;
  bool done() override { return false; }  // infinite thirst sessions

  void state_key(std::vector<std::uint64_t>& out) const override;
  [[nodiscard]] std::uint64_t hungry_mask() const override;
  [[nodiscard]] std::uint64_t event_fingerprint(
      const ekbd::sim::PendingEvent& ev) const override;

 private:
  enum class Role : std::uint64_t { kFinishDrink = 1, kRethirst = 2 };

  void schedule_choice(Role role, ProcessId p);
  void wire(ekbd::drinking::DrinkingDiner* d, ProcessId peer);

  ekbd::sim::Simulator sim_;
  ekbd::fd::NeverSuspect never_;
  ekbd::drinking::DrinkingDiner* hi_ = nullptr;
  ekbd::drinking::DrinkingDiner* lo_ = nullptr;
  std::map<std::uint64_t, std::pair<Role, ProcessId>> scheduled_roles_;
};

[[nodiscard]] ekbd::mc::LivenessWorldFactory make_drinking_edge_liveness_factory();

}  // namespace ekbd::scenario
