#include "scenario/sweep.hpp"

namespace ekbd::scenario {

void run_scenarios(const std::vector<Config>& configs,
                   const std::function<void(std::size_t, Scenario&)>& inspect,
                   const SweepOptions& options) {
  parallel_sweep<std::unique_ptr<Scenario>>(
      configs.size(), options.threads,
      [&configs](std::size_t i) {
        auto scenario = std::make_unique<Scenario>(configs[i]);
        scenario->run();
        return scenario;
      },
      [&inspect](std::size_t i, std::unique_ptr<Scenario>& scenario) {
        inspect(i, *scenario);
      });
}

}  // namespace ekbd::scenario
