#include "scenario/sweep.hpp"

#include <chrono>
#include <fstream>

#include "obs/json.hpp"

namespace ekbd::scenario {

namespace {

/// Seconds elapsed building + running one job, measured on the pool
/// worker (so sweep parallelism doesn't hide per-scenario cost).
double elapsed_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Splice `"sweep":{wall_seconds, offered, completed}` into a telemetry
/// line. Offered/completed are the trace's hungry-session counts, so the
/// object exists (and means the same thing) for every engine and also on
/// the `{}` placeholder lines of observability-off scenarios.
std::string with_sweep_object(std::string line, double wall_seconds,
                              const ekbd::dining::Trace& trace) {
  std::string obj =
      "\"sweep\":{\"wall_seconds\":" + ekbd::obs::json::format_double(wall_seconds) +
      ",\"offered\":" +
      std::to_string(trace.count(ekbd::dining::TraceEventKind::kBecameHungry)) +
      ",\"completed\":" +
      std::to_string(trace.count(ekbd::dining::TraceEventKind::kStopEating)) + "}";
  if (line.empty() || line.back() != '}') return line;  // not an object; leave it
  const bool was_empty = line == "{}";
  line.pop_back();
  if (!was_empty) line += ',';
  line += obj;
  line += '}';
  return line;
}

}  // namespace

void run_scenarios(const std::vector<Config>& configs,
                   const std::function<void(std::size_t, Scenario&)>& inspect,
                   const SweepOptions& options) {
  std::ofstream telemetry;
  if (!options.telemetry_path.empty()) {
    telemetry.open(options.telemetry_path, std::ios::trunc);
  }
  using Job = std::pair<std::unique_ptr<Scenario>, double>;
  parallel_sweep<Job>(
      configs.size(), options.threads,
      [&configs](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        auto scenario = std::make_unique<Scenario>(configs[i]);
        scenario->run();
        return Job{std::move(scenario), elapsed_seconds(t0)};
      },
      [&inspect, &telemetry](std::size_t i, Job& job) {
        // Serial, index-ordered: the JSONL line order is deterministic.
        if (telemetry.is_open()) {
          telemetry << with_sweep_object(job.first->telemetry_json(), job.second,
                                         job.first->trace())
                    << '\n';
        }
        inspect(i, *job.first);
      });
}

void run_rt_scenarios(const std::vector<Config>& configs,
                      const std::function<void(std::size_t, RtScenario&)>& inspect,
                      const SweepOptions& options) {
  std::ofstream telemetry;
  if (!options.telemetry_path.empty()) {
    telemetry.open(options.telemetry_path, std::ios::trunc);
  }
  using Job = std::pair<std::unique_ptr<RtScenario>, double>;
  parallel_sweep<Job>(
      configs.size(), options.threads,
      [&configs](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        auto scenario = std::make_unique<RtScenario>(configs[i]);
        scenario->run();
        return Job{std::move(scenario), elapsed_seconds(t0)};
      },
      [&inspect, &telemetry](std::size_t i, Job& job) {
        if (telemetry.is_open()) {
          telemetry << with_sweep_object(job.first->telemetry_json(), job.second,
                                         job.first->trace())
                    << '\n';
        }
        inspect(i, *job.first);
      });
}

void run_load_scenarios(const std::vector<LoadConfig>& configs,
                        const std::function<void(std::size_t, LoadScenario&)>& inspect,
                        const SweepOptions& options) {
  std::ofstream telemetry;
  if (!options.telemetry_path.empty()) {
    telemetry.open(options.telemetry_path, std::ios::trunc);
  }
  using Job = std::pair<std::unique_ptr<LoadScenario>, double>;
  parallel_sweep<Job>(
      configs.size(), options.threads,
      [&configs](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        auto scenario = std::make_unique<LoadScenario>(configs[i]);
        scenario->run();
        return Job{std::move(scenario), elapsed_seconds(t0)};
      },
      [&inspect, &telemetry](std::size_t i, Job& job) {
        if (telemetry.is_open()) {
          telemetry << with_sweep_object(job.first->telemetry_json(), job.second,
                                         job.first->trace())
                    << '\n';
        }
        inspect(i, *job.first);
      });
}

void run_proc_scenarios(const std::vector<Config>& configs,
                        const std::function<void(std::size_t, ProcScenario&)>& inspect,
                        const SweepOptions& options) {
  std::ofstream telemetry;
  if (!options.telemetry_path.empty()) {
    telemetry.open(options.telemetry_path, std::ios::trunc);
  }
  // Serial on purpose: run() forks, and the parent must be single-threaded
  // at that moment (see sweep.hpp). One cluster at a time also keeps the
  // loopback port/file-descriptor footprint bounded.
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    ProcScenario scenario(configs[i]);
    scenario.run();
    const double wall = elapsed_seconds(t0);
    if (telemetry.is_open()) {
      telemetry << with_sweep_object(scenario.telemetry_json(), wall, scenario.trace())
                << '\n';
    }
    inspect(i, scenario);
  }
}

}  // namespace ekbd::scenario
