#include "scenario/sweep.hpp"

#include <fstream>

namespace ekbd::scenario {

void run_scenarios(const std::vector<Config>& configs,
                   const std::function<void(std::size_t, Scenario&)>& inspect,
                   const SweepOptions& options) {
  std::ofstream telemetry;
  if (!options.telemetry_path.empty()) {
    telemetry.open(options.telemetry_path, std::ios::trunc);
  }
  parallel_sweep<std::unique_ptr<Scenario>>(
      configs.size(), options.threads,
      [&configs](std::size_t i) {
        auto scenario = std::make_unique<Scenario>(configs[i]);
        scenario->run();
        return scenario;
      },
      [&inspect, &telemetry](std::size_t i, std::unique_ptr<Scenario>& scenario) {
        // Serial, index-ordered: the JSONL line order is deterministic.
        if (telemetry.is_open()) telemetry << scenario->telemetry_json() << '\n';
        inspect(i, *scenario);
      });
}

void run_rt_scenarios(const std::vector<Config>& configs,
                      const std::function<void(std::size_t, RtScenario&)>& inspect,
                      const SweepOptions& options) {
  std::ofstream telemetry;
  if (!options.telemetry_path.empty()) {
    telemetry.open(options.telemetry_path, std::ios::trunc);
  }
  parallel_sweep<std::unique_ptr<RtScenario>>(
      configs.size(), options.threads,
      [&configs](std::size_t i) {
        auto scenario = std::make_unique<RtScenario>(configs[i]);
        scenario->run();
        return scenario;
      },
      [&inspect, &telemetry](std::size_t i, std::unique_ptr<RtScenario>& scenario) {
        if (telemetry.is_open()) telemetry << scenario->telemetry_json() << '\n';
        inspect(i, *scenario);
      });
}

void run_proc_scenarios(const std::vector<Config>& configs,
                        const std::function<void(std::size_t, ProcScenario&)>& inspect,
                        const SweepOptions& options) {
  std::ofstream telemetry;
  if (!options.telemetry_path.empty()) {
    telemetry.open(options.telemetry_path, std::ios::trunc);
  }
  // Serial on purpose: run() forks, and the parent must be single-threaded
  // at that moment (see sweep.hpp). One cluster at a time also keeps the
  // loopback port/file-descriptor footprint bounded.
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ProcScenario scenario(configs[i]);
    scenario.run();
    if (telemetry.is_open()) telemetry << scenario.telemetry_json() << '\n';
    inspect(i, scenario);
  }
}

}  // namespace ekbd::scenario
