/// \file proc_scenario.hpp
/// One-stop experiment builder for the multi-process socket engine.
///
/// The third engine's counterpart of `Scenario` / `RtScenario`: the same
/// declarative `Config` (with `engine = Engine::kProc`), executed as one
/// OS process per vertex over UDP loopback (src/netproc/). Crashes are
/// real SIGKILLs, partitions are injected at runtime through the control
/// channel, and observability is *post-hoc by construction*: each node
/// streams its Recorder log to disk, the orchestrator ships and merges
/// them (rt/log_io), and the MonitorHub + checkers consume the merged
/// linearization exactly as they consume a live sim/rt run.
///
/// Config mapping (vs. the rt engine):
///  * ticks — the Config keeps its usual granularity (`rt_tick_ns` wall
///    nanoseconds per tick); internally every duration is rescaled to the
///    socket engine's 1 ns ticks so that causally ordered cross-node
///    events carry strictly increasing stamps and the merged logs
///    linearize. Reports and telemetry are converted back to Config
///    ticks, so thresholds written for sim/rt runs carry over;
///  * detector kinds — kNever, kPerfect (the orchestrator's CrashNotice
///    ground truth, netproc::CrashNoticeDetector), kHeartbeat (real
///    modules over real datagrams). kScripted / kPingPong / kAccrual are
///    not wired up for this engine (assert);
///  * net_mode — kLossy seeds the per-sender socket-boundary filter with
///    `link_faults`; kLossyPartition additionally injects `partitions` /
///    `edge_cuts` at runtime. Unlike the rt engine the coins apply to
///    EVERY layer (the wire underneath is one wire), so lossy configs
///    install the ARQ (`transport`) under the dining layer;
///  * crashes — executed as SIGKILL by the orchestrator.
///
/// fork() caveat: `run()` forks; the calling process must be
/// single-threaded at that moment. `run_proc_scenarios` (sweep.hpp) is
/// therefore deliberately serial.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netproc/cluster.hpp"
#include "obs/monitors.hpp"
#include "scenario/scenario.hpp"

namespace ekbd::scenario {

class ProcScenario {
 public:
  explicit ProcScenario(Config cfg);

  /// Fork the cluster, supervise it to the horizon, ship + merge the
  /// logs, rebuild the books. May be called once; forks (see above).
  void run();

  // -- access --------------------------------------------------------------

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const ekbd::graph::ConflictGraph& graph() const { return graph_; }
  /// Orchestrator outcome: per-node exit codes, shipped logs, merge.
  [[nodiscard]] const ekbd::netproc::ClusterResult& result() const { return result_; }
  /// Rebuilt cluster-wide books (valid after run), in Config ticks.
  [[nodiscard]] const ekbd::dining::Trace& trace() const { return trace_; }
  [[nodiscard]] const ekbd::sim::Network& network() const { return net_; }
  [[nodiscard]] const ekbd::sim::EventLog& event_log() const { return log_; }
  [[nodiscard]] ekbd::obs::MonitorHub& monitors() { return *hub_; }
  /// Crash times (Config ticks) indexed by process, -1 = correct — the
  /// shape the property checkers take. Ground truth from the SIGKILL plan.
  [[nodiscard]] std::vector<Time> crash_times() const;

  // -- canned reports -------------------------------------------------------

  [[nodiscard]] ekbd::dining::ExclusionReport exclusion() const;
  [[nodiscard]] ekbd::dining::WaitFreedomReport wait_freedom(Time starvation_horizon) const;
  [[nodiscard]] std::vector<ekbd::dining::OvertakeObservation> census() const;

  /// Cross-check the monitors (rebuilt over the merged logs) against the
  /// post-hoc checkers and the rebuilt network books ("" on agreement).
  [[nodiscard]] std::string monitor_agreement() const;

  /// Replay the merged recording (rt::replay over the rebuilt EventLog +
  /// Trace) into a fresh hub and compare its verdicts against the first
  /// rebuild's ("" when identical) — the shipped logs alone reproduce the
  /// run's analysis.
  [[nodiscard]] std::string replay_agreement() const;

  /// One-line JSON telemetry snapshot, same shape as the other engines'
  /// (`"engine":"proc"`), plus orchestrator facts (exits, crash plan).
  [[nodiscard]] std::string telemetry_json() const;

 private:
  Config cfg_;
  ekbd::graph::ConflictGraph graph_;
  ekbd::graph::Coloring colors_;
  std::string log_dir_;

  ekbd::netproc::ClusterResult result_;
  // Rebuilt from the merged recording (Config-tick timestamps).
  std::unique_ptr<ekbd::obs::MonitorHub> hub_;
  ekbd::sim::Network net_;
  ekbd::dining::Trace trace_;
  ekbd::sim::EventLog log_;
  bool ran_ = false;
};

}  // namespace ekbd::scenario
