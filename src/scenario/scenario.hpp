/// \file scenario.hpp
/// One-stop experiment builder.
///
/// Wires a full execution from a declarative `Config`: conflict graph +
/// coloring, simulator + delay model, failure detector, one diner per
/// vertex, harness, crash plan. Used by the integration tests, every bench
/// binary and the examples, so that an experiment is (Config → run →
/// reports) and nothing else.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/chandy_misra_diner.hpp"
#include "baseline/doorway_diner.hpp"
#include "baseline/hierarchical_diner.hpp"
#include "core/wait_free_diner.hpp"
#include "dining/checkers.hpp"
#include "dining/harness.hpp"
#include "fd/detector.hpp"
#include "fd/heartbeat.hpp"
#include "fd/accrual.hpp"
#include "fd/lossy.hpp"
#include "fd/pingpong.hpp"
#include "fd/scripted.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "net/link_fault_model.hpp"
#include "net/reliable_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/monitors.hpp"

namespace ekbd::scenario {

using ekbd::sim::ProcessId;
using ekbd::sim::Time;

/// Which dining algorithm to instantiate at every vertex.
enum class Algorithm {
  kWaitFree,         ///< the paper's Algorithm 1 (core::WaitFreeDiner)
  kChoySingh,        ///< baseline::DoorwayDiner, original ack rule
  kChoySinghSingleAck,  ///< DoorwayDiner with the paper's ack rule (ablation)
  kHierarchical,     ///< baseline::HierarchicalDiner (no doorway)
  kChandyMisra,      ///< baseline::ChandyMisraDiner (dirty/clean forks)
};

[[nodiscard]] std::string to_string(Algorithm a);

/// Which oracle backs the suspicion guards.
enum class DetectorKind {
  kNever,      ///< suspect nobody (crash-oblivious algorithms)
  kPerfect,    ///< magic oracle: exactly the crashed, instantly
  kScripted,   ///< ScriptedDetector: delayed completeness + scripted lies
  kHeartbeat,  ///< real heartbeat ◇P₁ over the simulated network
  kPingPong,   ///< real query/response ◇P₁ with RTT-adaptive timeouts
  kAccrual,    ///< real φ-accrual ◇P₁ (Hayashibara et al.)
};

[[nodiscard]] std::string to_string(DetectorKind d);

/// Network fidelity of the run.
enum class NetMode {
  kIdeal,           ///< reliable FIFO channels — the paper's model (default)
  kLossy,           ///< probabilistic loss/dup/reorder + ARQ shim (net/)
  kLossyPartition,  ///< kLossy plus the scheduled partitions/edge cuts below
};

[[nodiscard]] std::string to_string(NetMode m);

/// Which engine executes the run: the deterministic discrete-event
/// simulator (`Scenario`) or the real-threads runtime (`RtScenario`,
/// scenario/rt_scenario.hpp — one OS thread per process, wall-clock
/// timers, src/rt/).
enum class Engine {
  kSim,   ///< sim::Simulator (default)
  kRt,    ///< rt::Runtime
  kProc,  ///< netproc::NodeEngine — one OS process per node, UDP sockets
          ///< (`ProcScenario`, scenario/proc_scenario.hpp)
};

[[nodiscard]] std::string to_string(Engine e);

struct Config {
  std::uint64_t seed = 1;

  /// Engine selection. A Config with kRt must be run through RtScenario /
  /// run_rt_scenarios; Scenario asserts kSim. Most knobs are shared
  /// (topology, algorithm, detector, harness, crashes, run_for measured
  /// in ticks); sim-only knobs (delay model, scripted detector, channel
  /// faults, partitions, ARQ transport) are rejected or ignored by the rt
  /// engine — see scenario/rt_scenario.hpp for the exact mapping.
  Engine engine = Engine::kSim;

  // rt-engine knobs (used only when engine == kRt)
  std::uint64_t rt_tick_ns = 100'000;     ///< wall nanoseconds per tick
  std::size_t rt_mailbox_capacity = 1024; ///< per-actor mailbox slots
  bool rt_mutex_mailbox = false;          ///< baseline mailbox instead of lock-free
  /// Worker shards for the rt executor: 0 = one per hardware core,
  /// clamped to [1, n]; `n` reproduces thread-per-actor. Shard count
  /// never changes observable behavior (per-actor rng streams, monitor
  /// verdicts) — only scheduling (rt/runtime.hpp).
  std::size_t rt_shards = 0;
  /// Segmented streaming recorder (rt/recorder.hpp): per-shard segments
  /// merged by a collector thread instead of a global recorder mutex on
  /// every hot-path hook. Same books, same monitor verdicts; false falls
  /// back to the single-mutex direct path.
  bool rt_segmented_recorder = true;
  /// Collector merge period in ticks (the streaming "window"); 0 keeps
  /// the runtime default (rt::Options::stream_window_ticks).
  std::uint64_t rt_stream_window = 0;
  /// Bound on records buffered between collector passes; 0 = unbounded.
  /// When exceeded the recorder sheds new records (counted in
  /// StreamStats::dropped_records / dropped_windows, like EventLog drops).
  std::size_t rt_stream_pending_cap = 0;
  /// EventLog capacity when observability is on; 0 = unbounded. Capping
  /// bounds resident log memory for 10⁵⁺-actor runs (the log counts what
  /// it dropped); the Trace and network books stay exact.
  std::size_t rt_event_log_cap = 0;
  /// Live telemetry: every `rt_telemetry_interval` ticks of the run, one
  /// JSONL snapshot line (per-shard executor stats, hungry→eat latency
  /// quantiles, stream stats) appended to `rt_telemetry_path`, and the
  /// same samples kept as Perfetto counter tracks (RtScenario::
  /// counter_samples). 0 = no snapshots.
  Time rt_telemetry_interval = 0;
  std::string rt_telemetry_path;  ///< empty = keep samples in memory only

  // topology
  std::string topology = "ring";
  std::size_t n = 8;

  Algorithm algorithm = Algorithm::kWaitFree;

  /// Ack budget per neighbor per hungry session for kWaitFree (paper: 1 →
  /// eventual 2-bounded waiting; m → eventual (m+1)-bounded waiting).
  int acks_per_session = 1;

  // delays: partial synchrony by default (what ◇P needs)
  bool partial_synchrony = true;
  ekbd::sim::PartialSynchronyDelay::Params delay{
      .gst = 5'000, .pre_lo = 1, .pre_hi = 60,
      .spike_prob = 0.05, .spike_factor = 20,
      .post_lo = 1, .post_hi = 8};
  Time uniform_delay_lo = 1;  ///< used when !partial_synchrony
  Time uniform_delay_hi = 10;

  // detector
  DetectorKind detector = DetectorKind::kScripted;
  Time detection_delay = 100;  ///< scripted completeness latency
  /// Scripted false positives: random per-edge one-directional suspicion
  /// intervals, all contained in [0, fp_until).
  std::size_t fp_count = 0;
  Time fp_until = 0;
  Time fp_len_lo = 20;
  Time fp_len_hi = 150;
  ekbd::fd::HeartbeatModule::Params heartbeat{};
  ekbd::fd::PingPongModule::Params pingpong{};
  ekbd::fd::AccrualModule::Params accrual{};

  /// Detector sabotage (necessity probes, bench/e12): `blind_pairs` are
  /// (owner, target) pairs where the owner NEVER suspects the target
  /// (permanent completeness hole); `poison_pairs` are pairs where the
  /// owner suspects the live target FOREVER (permanent accuracy hole).
  /// Applied on top of whichever base detector is configured.
  std::vector<std::pair<ProcessId, ProcessId>> blind_pairs;
  std::vector<std::pair<ProcessId, ProcessId>> poison_pairs;

  /// Channel-fault injection (model-violation experiments, E17): the
  /// paper assumes reliable FIFO channels; these knobs break that on
  /// purpose. Keep 0 for every reproduction experiment.
  double channel_dup_prob = 0.0;
  double channel_reorder_prob = 0.0;

  /// Network fault model + reliable transport (the net/ subsystem). In
  /// kLossy / kLossyPartition a LinkFaultModel adversary attacks every
  /// physical send and a ReliableTransport ARQ shim is interposed under
  /// the dining layer, so the diners still see reliable FIFO channels.
  NetMode net_mode = NetMode::kIdeal;
  ekbd::net::LinkFaultParams link_faults{
      .drop_prob = 0.1, .dup_prob = 0.05, .reorder_prob = 0.05};
  std::vector<ekbd::net::Partition> partitions;  ///< kLossyPartition only
  std::vector<ekbd::net::EdgeCut> edge_cuts;     ///< kLossyPartition only
  ekbd::net::ReliableTransport::Params transport{};
  /// Seed of the fault-coin stream; 0 derives one from `seed`. Always
  /// explicit internally — equal Configs replay equal fault schedules.
  std::uint64_t net_seed = 0;
  bool trace_net_events = true;  ///< record netdrop/netdup/cut/heal in the trace

  /// Observability: when true the scenario owns an `obs::MetricsRegistry`
  /// and an `obs::MonitorHub`, wires them into the simulator, network and
  /// harness, and can emit one-line JSON telemetry via `telemetry_json()`.
  /// Off by default: detached instrumentation costs one predictable-null
  /// branch per hook, attached costs a few stores per event.
  bool observability = false;

  // environment
  ekbd::dining::HarnessOptions harness{};

  // crash plan: (process, absolute time)
  std::vector<std::pair<ProcessId, Time>> crashes;

  // run horizon
  Time run_for = 50'000;
};

/// Build the conflict graph a Config describes (seeded from cfg.seed, so
/// equal Configs get equal graphs). Shared by both engines — a sim run
/// and an rt run of the same Config schedule the same topology.
[[nodiscard]] ekbd::graph::ConflictGraph build_conflict_graph(const Config& cfg);

class Scenario {
 public:
  explicit Scenario(Config cfg);

  /// Run to the configured horizon (may be called once).
  void run();

  /// Run to an arbitrary absolute time (incremental driving).
  void run_until(Time t);

  // -- access ------------------------------------------------------------

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] ekbd::sim::Simulator& sim() { return *sim_; }
  [[nodiscard]] const ekbd::graph::ConflictGraph& graph() const { return graph_; }
  [[nodiscard]] const ekbd::graph::Coloring& colors() const { return colors_; }
  [[nodiscard]] ekbd::dining::Harness& harness() { return *harness_; }
  [[nodiscard]] const ekbd::dining::Trace& trace() const { return harness_->trace(); }
  [[nodiscard]] ekbd::dining::Diner* diner(ProcessId p) { return diners_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] const ekbd::fd::FailureDetector& detector() const { return *detector_; }
  [[nodiscard]] ekbd::fd::ScriptedDetector* scripted_detector() { return scripted_; }
  [[nodiscard]] ekbd::fd::HeartbeatDetector* heartbeat_detector() { return heartbeat_; }
  [[nodiscard]] ekbd::fd::PingPongDetector* pingpong_detector() { return pingpong_; }
  [[nodiscard]] ekbd::fd::AccrualDetector* accrual_detector() { return accrual_; }
  /// Installed link-fault adversary (nullptr when net_mode == kIdeal).
  [[nodiscard]] ekbd::net::LinkFaultModel* fault_model() { return fault_model_.get(); }
  /// Installed ARQ shim (nullptr when net_mode == kIdeal).
  [[nodiscard]] ekbd::net::ReliableTransport* transport() { return transport_.get(); }
  /// Metrics registry (nullptr unless cfg.observability).
  [[nodiscard]] ekbd::obs::MetricsRegistry* metrics() { return metrics_.get(); }
  /// Online invariant monitors (nullptr unless cfg.observability).
  [[nodiscard]] ekbd::obs::MonitorHub* monitors() { return monitors_.get(); }

  // -- canned reports ------------------------------------------------------

  [[nodiscard]] ekbd::dining::ExclusionReport exclusion() const;
  [[nodiscard]] ekbd::dining::WaitFreedomReport wait_freedom(Time starvation_horizon) const;
  [[nodiscard]] std::vector<ekbd::dining::OvertakeObservation> census() const;

  /// Best-effort bound on when the detector (if any) had converged:
  /// scripted → max(last scripted lie end, last crash + detection delay);
  /// heartbeat → last observed retraction (and crash detection latency);
  /// never/perfect → 0.
  [[nodiscard]] Time fd_convergence_estimate() const;

  /// The typed core diner (only when algorithm == kWaitFree).
  [[nodiscard]] ekbd::core::WaitFreeDiner* wait_free_diner(ProcessId p);

  /// One-line JSON telemetry snapshot (requires cfg.observability):
  /// flushes the network / transport / event-log state into the registry,
  /// then emits `{"config":{...},"metrics":{...},"monitors":{...}}`.
  /// Exactly the line `scenario::sweep` appends per scenario when given a
  /// telemetry path.
  [[nodiscard]] std::string telemetry_json() const;

 private:
  Config cfg_;
  ekbd::graph::ConflictGraph graph_;
  ekbd::graph::Coloring colors_;
  std::unique_ptr<ekbd::sim::Simulator> sim_;
  // net objects must outlive nothing that uses them and die before sim_
  // (the transport detaches from the simulator in its destructor).
  std::unique_ptr<ekbd::net::LinkFaultModel> fault_model_;
  std::unique_ptr<ekbd::net::ReliableTransport> transport_;
  std::unique_ptr<ekbd::fd::FailureDetector> owned_detector_;
  std::unique_ptr<ekbd::fd::FailureDetector> sabotage_wrapper_;
  std::vector<std::unique_ptr<ekbd::fd::FailureDetector>> chained_wrappers_;
  ekbd::fd::FailureDetector* detector_ = nullptr;
  ekbd::fd::ScriptedDetector* scripted_ = nullptr;
  ekbd::fd::HeartbeatDetector* heartbeat_ = nullptr;
  ekbd::fd::PingPongDetector* pingpong_ = nullptr;
  ekbd::fd::AccrualDetector* accrual_ = nullptr;
  std::unique_ptr<ekbd::dining::Harness> harness_;
  std::vector<ekbd::dining::Diner*> diners_;
  // Observability (only when cfg.observability). Declared after sim_ /
  // harness_ so the hub outlives nothing that calls into it; the sinks are
  // raw observers and need no teardown order beyond that.
  std::unique_ptr<ekbd::obs::MetricsRegistry> metrics_;
  std::unique_ptr<ekbd::obs::MonitorHub> monitors_;
  bool ran_ = false;
};

}  // namespace ekbd::scenario
