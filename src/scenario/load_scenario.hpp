/// \file load_scenario.hpp
/// Daemon-as-a-service workload harness: one declarative config wiring
/// open-loop load, dynamic conflict graphs and crash-recovery onto either
/// engine.
///
/// `Scenario` / `RtScenario` reproduce the paper's *closed-loop*
/// environment: hunger follows thinking follows eating, so offered load
/// tracks capacity by construction. `LoadScenario` replaces the hunger
/// side of that loop with the `load::` subsystem:
///
///  * **Open-loop arrivals** — seed-deterministic `load::ArrivalProcess`
///    streams inject hungry sessions on their own clock; arrivals landing
///    on a busy actor queue in its `load::LoadBook` backlog and drain one
///    per completed session. Offered / completed / dropped counters and
///    an overload verdict come out the other end.
///  * **Dynamic conflict graphs** — a `load::ChurnPlan` (edge adds /
///    removals plus the local recolorings that keep the coloring proper,
///    planned against a private graph copy) is applied to the live run
///    through `core::WaitFreeDiner::request_add_edge` / `_remove_edge` /
///    `_recolor`, which defer to session boundaries. No global recolor
///    ever happens — repairs touch only the affected neighborhood.
///  * **Crash-recovery** — `RecoverySpec` entries crash a process and
///    bring it back: the engine fences the dead incarnation's channels,
///    and the diner's rejoin protocol re-acquires fork/token state from
///    the surviving neighbors without violating P1/P2 (see
///    docs/LOADGEN.md for the case analysis).
///
/// Engines: kSim and kRt (kProc pending the multi-process churn
/// transport — see ROADMAP). The algorithm must be kWaitFree: churn and
/// rejoin are Algorithm-1 extensions; the baselines have no edge
/// handshake.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "load/arrivals.hpp"
#include "load/churn.hpp"
#include "load/controller.hpp"
#include "scenario/rt_scenario.hpp"
#include "scenario/scenario.hpp"

namespace ekbd::scenario {

/// One crash-recovery cycle. `recover_at` < 0 = crash without recovery.
struct RecoverySpec {
  ProcessId p = 0;
  Time crash_at = 0;
  Time recover_at = -1;
};

struct LoadConfig {
  /// Engine, topology, detector, harness timing, horizon. `base.crashes`
  /// should be empty — crash cycles go through `recoveries` so the churn
  /// planner can see the windows. Observability is forced on (the
  /// latency percentiles ride the obs histograms).
  ///
  /// Detector note: the heartbeat/pingpong/accrual modules monitor the
  /// *initial* neighbor set, so an edge added by churn is invisible to
  /// them; with churn + crashes prefer kPerfect (default) or accept
  /// rejoin-bounded blocking on churned edges (docs/LOADGEN.md).
  Config base;

  load::ArrivalSpec arrivals;

  /// Edge churn (mutations == 0 disables). The planner avoids endpoints
  /// inside any recovery window padded by `churn_margin` ticks.
  load::ChurnParams churn;
  Time churn_margin = 500;

  std::vector<RecoverySpec> recoveries;

  /// Overload sampling cadence (ticks) and detector thresholds.
  Time sample_period = 500;
  load::OverloadParams overload;
};

class LoadScenario {
 public:
  explicit LoadScenario(LoadConfig cfg);
  ~LoadScenario();

  /// Run to the configured horizon (may be called once).
  void run();

  // -- access --------------------------------------------------------------

  [[nodiscard]] const LoadConfig& config() const { return cfg_; }
  [[nodiscard]] const load::LoadBook& book() const { return *book_; }
  [[nodiscard]] const load::OverloadDetector& overload() const { return overload_; }
  [[nodiscard]] const load::ChurnPlan& churn_plan() const { return plan_; }
  /// Churn ops actually issued to diners (ops whose initiator was dead at
  /// the op's time are skipped and counted separately).
  [[nodiscard]] std::size_t churn_issued() const {
    return churn_issued_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t churn_skipped() const {
    return churn_skipped_.load(std::memory_order_relaxed);
  }

  /// The initial conflict graph (churn mutates live copies, not this).
  [[nodiscard]] const ekbd::graph::ConflictGraph& graph() const;
  [[nodiscard]] const ekbd::dining::Trace& trace() const;

  /// Underlying engine scenario (exactly one is non-null).
  [[nodiscard]] Scenario* sim_scenario() { return sim_.get(); }
  [[nodiscard]] RtScenario* rt_scenario() { return rt_.get(); }

  // -- canned reports -------------------------------------------------------

  [[nodiscard]] ekbd::dining::ExclusionReport exclusion() const;
  [[nodiscard]] ekbd::dining::WaitFreedomReport wait_freedom(Time starvation_horizon) const;

  /// Monitor ↔ checker cross-check ("" on full agreement), engine-routed.
  [[nodiscard]] std::string monitor_agreement() const;

  /// Hungry→eat latency histogram (sim: harness obs histogram; rt: the
  /// driver's striped histogram).
  [[nodiscard]] ekbd::obs::Histogram latency() const;

  /// Engine telemetry with a `"load":{...}` object spliced in: offered /
  /// completed / dropped / backlog high-water, overload verdict, churn
  /// counts, recovery count.
  [[nodiscard]] std::string telemetry_json() const;

 private:
  void wire_sim();
  void wire_rt();
  void schedule_sim_arrival(std::size_t stream);
  void schedule_sim_sample(Time at);
  void start_rt_chain(ProcessId p, Time from);
  /// Handle one arrival for `p`: count it, then either start the hungry
  /// session (p was thinking) or backlog it.
  void on_arrival(ProcessId p);
  void issue_churn_op(const load::ChurnOp& op);
  [[nodiscard]] ekbd::core::WaitFreeDiner* wfd(ProcessId p);

  LoadConfig cfg_;
  load::ChurnPlan plan_;
  std::unique_ptr<load::LoadBook> book_;
  load::OverloadDetector overload_;
  std::unique_ptr<Scenario> sim_;
  std::unique_ptr<RtScenario> rt_;
  /// Per-actor arrival streams (index = ProcessId; global spec → one
  /// stream at index 0 with dealt targets on sim, split streams on rt).
  std::vector<load::ArrivalProcess> arrivals_;
  std::vector<sim::Rng> arrival_rngs_;
  /// Churn ops grouped per initiating actor (rt re-seeds after recovery).
  std::vector<std::vector<load::ChurnOp>> churn_by_actor_;
  /// Atomics: rt churn ops issue inside dispatch claims on any shard.
  std::atomic<std::size_t> churn_issued_{0};
  std::atomic<std::size_t> churn_skipped_{0};
  bool ran_ = false;
};

}  // namespace ekbd::scenario
