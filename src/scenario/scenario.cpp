#include "scenario/scenario.hpp"

#include <algorithm>
#include <cassert>

#include "graph/topology.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace ekbd::scenario {

using ekbd::graph::ConflictGraph;

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kWaitFree: return "waitfree(Alg.1)";
    case Algorithm::kChoySingh: return "choy-singh";
    case Algorithm::kChoySinghSingleAck: return "choy-singh+1ack";
    case Algorithm::kHierarchical: return "hierarchical";
    case Algorithm::kChandyMisra: return "chandy-misra";
  }
  return "?";
}

std::string to_string(Engine e) {
  switch (e) {
    case Engine::kSim: return "sim";
    case Engine::kRt: return "rt";
    case Engine::kProc: return "proc";
  }
  return "?";
}

std::string to_string(NetMode m) {
  switch (m) {
    case NetMode::kIdeal: return "ideal";
    case NetMode::kLossy: return "lossy";
    case NetMode::kLossyPartition: return "lossy+partition";
  }
  return "?";
}

std::string to_string(DetectorKind d) {
  switch (d) {
    case DetectorKind::kNever: return "none";
    case DetectorKind::kPerfect: return "perfect";
    case DetectorKind::kScripted: return "scripted-<>P1";
    case DetectorKind::kHeartbeat: return "heartbeat-<>P1";
    case DetectorKind::kPingPong: return "pingpong-<>P1";
    case DetectorKind::kAccrual: return "phi-accrual-<>P1";
  }
  return "?";
}

ConflictGraph build_conflict_graph(const Config& cfg) {
  ekbd::sim::Rng rng(cfg.seed ^ 0x70110ULL);
  return ekbd::graph::by_name(cfg.topology, cfg.n, rng);
}

namespace {

std::unique_ptr<ekbd::sim::DelayModel> build_delays(const Config& cfg) {
  if (cfg.partial_synchrony) return ekbd::sim::make_partial_synchrony(cfg.delay);
  return ekbd::sim::make_uniform_delay(cfg.uniform_delay_lo, cfg.uniform_delay_hi);
}

}  // namespace

Scenario::Scenario(Config cfg)
    : cfg_(std::move(cfg)),
      graph_(build_conflict_graph(cfg_)),
      colors_(ekbd::graph::welsh_powell_coloring(graph_)),
      sim_(std::make_unique<ekbd::sim::Simulator>(cfg_.seed, build_delays(cfg_))) {
  assert(cfg_.engine == Engine::kSim && "engine == kRt: use RtScenario / run_rt_scenarios");
  if (cfg_.channel_dup_prob > 0.0 || cfg_.channel_reorder_prob > 0.0) {
    sim_->set_channel_faults(cfg_.channel_dup_prob, cfg_.channel_reorder_prob);
  }

  // -- observability -------------------------------------------------------
  // Wired before any actor exists so the monitors see every event from
  // t=0; the harness-side hooks are attached after harness construction
  // below.
  if (cfg_.observability) {
    metrics_ = std::make_unique<ekbd::obs::MetricsRegistry>();
    monitors_ = std::make_unique<ekbd::obs::MonitorHub>(graph_);
    ekbd::obs::attach_simulator_metrics(*sim_, *metrics_);
    sim_->set_event_sink(monitors_.get());
    sim_->network().set_watch(monitors_.get());
  }

  // -- detector ---------------------------------------------------------
  switch (cfg_.detector) {
    case DetectorKind::kNever: {
      owned_detector_ = std::make_unique<ekbd::fd::NeverSuspect>();
      break;
    }
    case DetectorKind::kPerfect: {
      owned_detector_ = std::make_unique<ekbd::fd::PerfectDetector>(*sim_);
      break;
    }
    case DetectorKind::kScripted: {
      auto det = std::make_unique<ekbd::fd::ScriptedDetector>(*sim_, cfg_.detection_delay);
      scripted_ = det.get();
      if (cfg_.fp_count > 0 && cfg_.fp_until > 0 && graph_.num_edges() > 0) {
        // Adversarial pre-convergence mistakes on random edges.
        ekbd::sim::Rng rng(cfg_.seed ^ 0xF41511ULL);
        const auto edges = graph_.edges();
        for (std::size_t i = 0; i < cfg_.fp_count; ++i) {
          const auto [a, b] = edges[rng.index(edges.size())];
          const Time len = rng.uniform_int(cfg_.fp_len_lo, cfg_.fp_len_hi);
          const Time from = rng.uniform_int(0, std::max<Time>(0, cfg_.fp_until - len));
          const bool mutual = rng.chance(0.25);
          if (mutual) {
            det->add_mutual_false_positive(a, b, from, from + len);
          } else if (rng.chance(0.5)) {
            det->add_false_positive(a, b, from, from + len);
          } else {
            det->add_false_positive(b, a, from, from + len);
          }
        }
      }
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kHeartbeat: {
      auto det = std::make_unique<ekbd::fd::HeartbeatDetector>();
      heartbeat_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kPingPong: {
      auto det = std::make_unique<ekbd::fd::PingPongDetector>();
      pingpong_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kAccrual: {
      auto det = std::make_unique<ekbd::fd::AccrualDetector>();
      accrual_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
  }
  detector_ = owned_detector_.get();

  // Sabotage wrappers for the necessity probes (applied outermost-first:
  // poison over blind over the base detector).
  if (!cfg_.blind_pairs.empty()) {
    auto wrap = std::make_unique<ekbd::fd::IncompleteDetector>(*detector_);
    for (const auto& [o, t] : cfg_.blind_pairs) wrap->blind(o, t);
    sabotage_wrapper_ = std::move(wrap);
    detector_ = sabotage_wrapper_.get();
  }
  if (!cfg_.poison_pairs.empty()) {
    auto wrap = std::make_unique<ekbd::fd::InaccurateDetector>(*detector_);
    for (const auto& [o, t] : cfg_.poison_pairs) wrap->poison(o, t);
    // Chain: keep the previous wrapper (if any) alive by moving it into
    // owned storage before replacing the pointer.
    if (sabotage_wrapper_) {
      chained_wrappers_.push_back(std::move(sabotage_wrapper_));
    }
    sabotage_wrapper_ = std::move(wrap);
    detector_ = sabotage_wrapper_.get();
  }

  // -- link-fault adversary + reliable transport --------------------------
  if (cfg_.net_mode != NetMode::kIdeal) {
    const std::uint64_t net_seed =
        cfg_.net_seed != 0 ? cfg_.net_seed : (cfg_.seed ^ 0x6E657441ULL);
    fault_model_ = std::make_unique<ekbd::net::LinkFaultModel>(net_seed, cfg_.link_faults);
    if (cfg_.net_mode == NetMode::kLossyPartition) {
      for (const auto& p : cfg_.partitions) fault_model_->add_partition(p);
      for (const auto& c : cfg_.edge_cuts) fault_model_->add_edge_cut(c);
    }
    if (cfg_.trace_net_events) {
      using FaultEvent = ekbd::net::LinkFaultModel::FaultEvent;
      fault_model_->set_observer([this](const FaultEvent& ev) {
        if (harness_ == nullptr) return;  // faults only fire during the run
        switch (ev.kind) {
          case FaultEvent::Kind::kDrop:
          case FaultEvent::Kind::kPartitionDrop:
            harness_->trace().record(ev.at, ev.from, ekbd::dining::TraceEventKind::kNetDrop);
            break;
          case FaultEvent::Kind::kDuplicate:
            harness_->trace().record(ev.at, ev.from, ekbd::dining::TraceEventKind::kNetDup);
            break;
          case FaultEvent::Kind::kReorder:
            break;  // reordering is visible only in the event log
        }
      });
    }
    sim_->set_adversary(fault_model_.get());
    // The shim consults the same (possibly sabotaged) oracle the diners
    // use, so retransmission quiesces exactly when the algorithm gives up
    // on a peer.
    transport_ = std::make_unique<ekbd::net::ReliableTransport>(*sim_, cfg_.transport,
                                                                detector_);
  }

  // -- harness + diners ---------------------------------------------------
  harness_ = std::make_unique<ekbd::dining::Harness>(*sim_, graph_, cfg_.harness);
  if (cfg_.observability) {
    harness_->trace().set_observer(monitors_.get());
    harness_->attach_metrics(*metrics_);
  }
  diners_.reserve(graph_.size());
  for (std::size_t v = 0; v < graph_.size(); ++v) {
    const auto p = static_cast<ProcessId>(v);
    std::vector<ProcessId> neighbors = graph_.neighbors(p);
    std::vector<int> ncolors;
    ncolors.reserve(neighbors.size());
    for (ProcessId j : neighbors) ncolors.push_back(colors_[static_cast<std::size_t>(j)]);
    const int color = colors_[v];

    ekbd::dining::Diner* d = nullptr;
    switch (cfg_.algorithm) {
      case Algorithm::kWaitFree:
        d = sim_->make_actor<ekbd::core::WaitFreeDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::core::WaitFreeDiner::Options{.acks_per_session = cfg_.acks_per_session});
        break;
      case Algorithm::kChoySingh:
        d = sim_->make_actor<ekbd::baseline::DoorwayDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::baseline::DoorwayDiner::Options{.single_ack_per_session = false});
        break;
      case Algorithm::kChoySinghSingleAck:
        d = sim_->make_actor<ekbd::baseline::DoorwayDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::baseline::DoorwayDiner::Options{.single_ack_per_session = true});
        break;
      case Algorithm::kHierarchical:
        d = sim_->make_actor<ekbd::baseline::HierarchicalDiner>(std::move(neighbors), color,
                                                                std::move(ncolors), *detector_);
        break;
      case Algorithm::kChandyMisra:
        d = sim_->make_actor<ekbd::baseline::ChandyMisraDiner>(std::move(neighbors), color,
                                                               std::move(ncolors), *detector_);
        break;
    }
    diners_.push_back(d);
    harness_->manage(d);
  }

  if (heartbeat_ != nullptr) {
    harness_->install_heartbeats(*heartbeat_, cfg_.heartbeat);
  }
  if (pingpong_ != nullptr) {
    harness_->install_pingpongs(*pingpong_, cfg_.pingpong);
  }
  if (accrual_ != nullptr) {
    harness_->install_accruals(*accrual_, cfg_.accrual);
  }

  for (const auto& [p, at] : cfg_.crashes) {
    harness_->schedule_crash(p, at);
  }

  // Mark partition boundaries in the trace so a verdict can be read next
  // to the fault schedule that produced it (kNoProcess: not a scheduling
  // event of any diner).
  if (cfg_.net_mode == NetMode::kLossyPartition && cfg_.trace_net_events) {
    const auto mark = [this](Time at, ekbd::dining::TraceEventKind kind) {
      sim_->schedule(at, [this, kind] {
        harness_->trace().record(sim_->now(), ekbd::sim::kNoProcess, kind);
      });
    };
    for (const auto& p : cfg_.partitions) {
      mark(p.from, ekbd::dining::TraceEventKind::kPartitionCut);
      if (p.until >= 0) mark(p.until, ekbd::dining::TraceEventKind::kPartitionHeal);
    }
    for (const auto& c : cfg_.edge_cuts) {
      mark(c.from, ekbd::dining::TraceEventKind::kPartitionCut);
      if (c.until >= 0) mark(c.until, ekbd::dining::TraceEventKind::kPartitionHeal);
    }
  }
}

void Scenario::run() {
  assert(!ran_);
  ran_ = true;
  harness_->run_until(cfg_.run_for);
}

void Scenario::run_until(Time t) { harness_->run_until(t); }

ekbd::dining::ExclusionReport Scenario::exclusion() const {
  return ekbd::dining::check_exclusion(harness_->trace(), graph_);
}

ekbd::dining::WaitFreedomReport Scenario::wait_freedom(Time starvation_horizon) const {
  return ekbd::dining::check_wait_freedom(harness_->trace(), harness_->crash_times(),
                                          starvation_horizon);
}

std::vector<ekbd::dining::OvertakeObservation> Scenario::census() const {
  return ekbd::dining::overtake_census(harness_->trace(), graph_);
}

Time Scenario::fd_convergence_estimate() const {
  Time latest_crash = 0;
  for (const auto& [p, at] : cfg_.crashes) latest_crash = std::max(latest_crash, at);
  switch (cfg_.detector) {
    case DetectorKind::kNever:
    case DetectorKind::kPerfect:
      return 0;
    case DetectorKind::kScripted:
      return std::max(scripted_->last_false_positive_end(),
                      cfg_.crashes.empty() ? 0 : latest_crash + cfg_.detection_delay);
    case DetectorKind::kHeartbeat: {
      // Last observed retraction, plus detection latency for late crashes.
      const Time detect = cfg_.heartbeat.period + cfg_.heartbeat.initial_timeout;
      return std::max(heartbeat_->last_retraction(),
                      cfg_.crashes.empty() ? 0 : latest_crash + detect);
    }
    case DetectorKind::kPingPong: {
      // Threshold can have grown; period + a generous multiple of the
      // initial RTT estimate bounds typical detection latency.
      const Time detect = cfg_.pingpong.period + 8 * cfg_.pingpong.initial_rtt +
                          2 * cfg_.pingpong.initial_slack;
      return std::max(pingpong_->last_retraction(),
                      cfg_.crashes.empty() ? 0 : latest_crash + detect);
    }
    case DetectorKind::kAccrual: {
      // φ grows roughly linearly in elapsed/period past the window mean;
      // a generous multiple of the period per unit threshold bounds it.
      const Time detect = cfg_.accrual.period *
                          (4 + static_cast<Time>(cfg_.accrual.threshold));
      return std::max(accrual_->last_retraction(),
                      cfg_.crashes.empty() ? 0 : latest_crash + detect);
    }
  }
  return 0;
}

std::string Scenario::telemetry_json() const {
  if (metrics_ == nullptr) return "{}";
  // Pull-style sources are flushed into the registry at snapshot time; the
  // push-style instruments (simulator, harness) are already current.
  ekbd::obs::MetricsRegistry& reg = *metrics_;
  ekbd::obs::collect_network_metrics(sim_->network(), reg);
  if (transport_ != nullptr) {
    ekbd::obs::collect_transport_metrics(*transport_, reg);
  }
  if (sim_->event_log() != nullptr) {
    ekbd::obs::collect_event_log_metrics(*sim_->event_log(), reg);
  }
  std::string out = "{\"config\":{";
  out += "\"seed\":" + std::to_string(cfg_.seed);
  out += ",\"engine\":" + ekbd::obs::json::quote(to_string(cfg_.engine));
  out += ",\"topology\":" + ekbd::obs::json::quote(cfg_.topology);
  out += ",\"n\":" + std::to_string(cfg_.n);
  out += ",\"algorithm\":" + ekbd::obs::json::quote(to_string(cfg_.algorithm));
  out += ",\"detector\":" + ekbd::obs::json::quote(to_string(cfg_.detector));
  out += ",\"net_mode\":" + ekbd::obs::json::quote(to_string(cfg_.net_mode));
  out += ",\"run_for\":" + std::to_string(cfg_.run_for);
  out += "},\"metrics\":" + reg.to_json();
  out += ",\"monitors\":" + monitors_->to_json();
  out += "}";
  return out;
}

ekbd::core::WaitFreeDiner* Scenario::wait_free_diner(ProcessId p) {
  return dynamic_cast<ekbd::core::WaitFreeDiner*>(diners_[static_cast<std::size_t>(p)]);
}

}  // namespace ekbd::scenario
