#include "scenario/load_scenario.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>

#include "obs/json.hpp"

namespace ekbd::scenario {

using ekbd::dining::Diner;
using ekbd::load::ChurnOp;

LoadScenario::LoadScenario(LoadConfig cfg) : cfg_(std::move(cfg)), overload_(cfg_.overload) {
  assert(cfg_.base.algorithm == Algorithm::kWaitFree &&
         "churn/rejoin are Algorithm-1 extensions; baselines have no edge handshake");
  assert(cfg_.base.engine != Engine::kProc &&
         "kProc: load harness pending the multi-process churn transport (ROADMAP)");
  cfg_.base.observability = true;  // latency percentiles ride the obs histograms
  for (const RecoverySpec& r : cfg_.recoveries) {
    cfg_.base.crashes.emplace_back(r.p, r.crash_at);
  }

  // Plan churn against the engine-shared initial graph + coloring (both
  // engines derive exactly these from the Config, so the plan's private
  // copy starts in lockstep with the run).
  const ekbd::graph::ConflictGraph g = build_conflict_graph(cfg_.base);
  const ekbd::graph::Coloring colors = ekbd::graph::welsh_powell_coloring(g);
  std::vector<load::CrashWindow> windows;
  windows.reserve(cfg_.recoveries.size());
  for (const RecoverySpec& r : cfg_.recoveries) {
    windows.push_back({r.p, r.crash_at, r.recover_at, cfg_.churn_margin});
  }
  load::ChurnParams churn = cfg_.churn;
  if (churn.mutations > 0 && churn.end <= churn.start) {
    // Default window: the middle of the run, clear of startup and of the
    // drainless tail.
    churn.start = cfg_.base.run_for / 10;
    churn.end = cfg_.base.run_for - cfg_.base.run_for / 10;
  }
  plan_ = load::plan_churn(g, colors, churn, windows, cfg_.base.seed);
  churn_by_actor_.resize(g.size());
  for (const ChurnOp& op : plan_.ops) {
    churn_by_actor_[static_cast<std::size_t>(op.a)].push_back(op);
  }

  book_ = std::make_unique<load::LoadBook>(g.size());

  // Arrival streams: per-actor = one stream per vertex; global = one
  // stream dealt to random targets. The rt engine cannot inject across
  // dispatch claims, so a global spec is realized there as n per-actor
  // streams at rate/n (exact for Poisson by superposition).
  load::ArrivalSpec spec = cfg_.arrivals;
  const bool rt_engine = cfg_.base.engine == Engine::kRt;
  if (!spec.per_actor && rt_engine) spec = spec.split(g.size());
  const std::size_t streams = spec.per_actor ? g.size() : 1;
  ekbd::sim::Rng master(cfg_.base.seed ^ 0x10adc4a1ULL);
  arrivals_.reserve(streams);
  arrival_rngs_.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    arrivals_.emplace_back(spec);
    arrival_rngs_.push_back(master.fork(static_cast<std::uint64_t>(s) + 1));
  }

  if (rt_engine) {
    rt_ = std::make_unique<RtScenario>(cfg_.base);
    wire_rt();
  } else {
    sim_ = std::make_unique<Scenario>(cfg_.base);
    wire_sim();
  }
}

LoadScenario::~LoadScenario() = default;

ekbd::core::WaitFreeDiner* LoadScenario::wfd(ProcessId p) {
  if (sim_ != nullptr) return sim_->wait_free_diner(p);
  return dynamic_cast<ekbd::core::WaitFreeDiner*>(rt_->diner(p));
}

const ekbd::graph::ConflictGraph& LoadScenario::graph() const {
  return sim_ != nullptr ? sim_->graph() : rt_->graph();
}

const ekbd::dining::Trace& LoadScenario::trace() const {
  return sim_ != nullptr ? sim_->trace() : rt_->trace();
}

void LoadScenario::on_arrival(ProcessId p) {
  if (sim_ != nullptr && sim_->sim().crashed(p)) {
    book_->on_arrival_dropped();  // rt arrivals never run on a corpse
    return;
  }
  Diner* d = sim_ != nullptr ? sim_->diner(p) : rt_->diner(p);
  if (book_->on_arrival(static_cast<std::size_t>(p), d->thinking())) {
    d->become_hungry();
  }
}

void LoadScenario::issue_churn_op(const ChurnOp& op) {
  ekbd::core::WaitFreeDiner* d = wfd(op.a);
  switch (op.kind) {
    case ChurnOp::Kind::kAddEdge:
      d->request_add_edge(op.b);
      break;
    case ChurnOp::Kind::kRemoveEdge:
      d->request_remove_edge(op.b);
      break;
    case ChurnOp::Kind::kRecolor:
      d->request_recolor(op.color);
      break;
  }
  churn_issued_.fetch_add(1, std::memory_order_relaxed);
}

// -- sim wiring -------------------------------------------------------------

void LoadScenario::wire_sim() {
  ekbd::dining::Harness& h = sim_->harness();
  ekbd::sim::Simulator& sim = sim_->sim();
  // Open loop: the harness keeps driving eat durations and recording the
  // trace, but all hunger comes from the arrival streams.
  h.stop_hunger_after(0);
  h.set_exit_hook([this](ProcessId p) {
    book_->on_complete();
    // Drain deferred one tick: the hook fires mid-handler (before the
    // diner applies its pending churn ops), and become_hungry from inside
    // finish_eating would interleave with them.
    sim_->sim().schedule(sim_->sim().now() + 1, [this, p] {
      if (sim_->sim().crashed(p)) return;
      Diner* d = sim_->diner(p);
      if (d->thinking() && book_->try_drain(static_cast<std::size_t>(p))) {
        d->become_hungry();
      }
    });
  });

  for (const RecoverySpec& r : cfg_.recoveries) {
    sim.schedule(r.crash_at + 1, [this, p = r.p] {
      book_->on_crash(static_cast<std::size_t>(p));  // the queue dies with it
    });
    if (r.recover_at >= 0) sim.schedule_recovery(r.p, r.recover_at);
  }

  for (const ChurnOp& op : plan_.ops) {
    sim.schedule(op.at, [this, op] {
      if (sim_->sim().crashed(op.a)) {
        churn_skipped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      issue_churn_op(op);
    });
  }

  for (std::size_t s = 0; s < arrivals_.size(); ++s) schedule_sim_arrival(s);
}

void LoadScenario::schedule_sim_arrival(std::size_t stream) {
  ekbd::sim::Simulator& sim = sim_->sim();
  const Time t = arrivals_[stream].next_after(sim.now(), arrival_rngs_[stream]);
  if (t >= cfg_.base.run_for) return;
  sim.schedule(t, [this, stream] {
    const ProcessId p =
        arrivals_[stream].spec().per_actor
            ? static_cast<ProcessId>(stream)
            : static_cast<ProcessId>(arrival_rngs_[stream].index(graph().size()));
    on_arrival(p);
    schedule_sim_arrival(stream);
  });
}

void LoadScenario::schedule_sim_sample(Time at) {
  if (at >= cfg_.base.run_for) return;
  sim_->sim().schedule(at, [this, at] {
    overload_.observe({at, book_->offered(), book_->completed(), book_->total_backlog()});
    schedule_sim_sample(at + cfg_.sample_period);
  });
}

// -- rt wiring --------------------------------------------------------------

void LoadScenario::wire_rt() {
  ekbd::rt::DiningDriver& drv = rt_->driver();
  ekbd::rt::Runtime& rt = rt_->runtime();
  drv.stop_hunger_after(0);
  drv.set_exit_hook([this](ProcessId p) {
    book_->on_complete();
    // Same one-tick deferral as the sim hook: the claim is p's own, but
    // the diner is still inside finish_eating.
    rt_->runtime().call_after(p, 1, [this, p] {
      Diner* d = rt_->diner(p);
      if (d->thinking() && book_->try_drain(static_cast<std::size_t>(p))) {
        d->become_hungry();
      }
    });
  });
  drv.set_recover_hook([this](ProcessId p) {
    // Everything in the old incarnation's timer heap died with it: shed
    // the queue, restart the arrival chain, re-register the churn ops
    // still ahead of us.
    book_->on_crash(static_cast<std::size_t>(p));
    const Time now = rt_->runtime().now();
    for (const ChurnOp& op : churn_by_actor_[static_cast<std::size_t>(p)]) {
      if (op.at <= now) continue;
      rt_->runtime().call_after(p, op.at - now, [this, op] { issue_churn_op(op); });
    }
    start_rt_chain(p, now);
  });

  for (const RecoverySpec& r : cfg_.recoveries) {
    if (r.recover_at >= 0) rt.schedule_recovery(r.p, r.recover_at);
  }
  for (const auto& ops : churn_by_actor_) {
    for (const ChurnOp& op : ops) {
      rt.call_after(op.a, op.at, [this, op] { issue_churn_op(op); });
    }
  }
  for (std::size_t p = 0; p < graph().size(); ++p) {
    start_rt_chain(static_cast<ProcessId>(p), 0);
  }
}

void LoadScenario::start_rt_chain(ProcessId p, Time from) {
  const auto s = static_cast<std::size_t>(p);
  const Time t = arrivals_[s].next_after(from, arrival_rngs_[s]);
  if (t >= cfg_.base.run_for) return;
  rt_->runtime().call_after(p, t - from, [this, p] {
    on_arrival(p);
    start_rt_chain(p, rt_->runtime().now());
  });
}

// -- run + reports ----------------------------------------------------------

void LoadScenario::run() {
  assert(!ran_);
  ran_ = true;
  if (sim_ != nullptr) {
    schedule_sim_sample(cfg_.sample_period);
    sim_->run();
    overload_.observe({cfg_.base.run_for, book_->offered(), book_->completed(),
                       book_->total_backlog()});
    return;
  }
  // rt: sample from a side thread while run() blocks to the horizon. The
  // book's counters are relaxed atomics; the detector is only touched by
  // this thread until the join below publishes it back.
  std::atomic<bool> done{false};
  std::thread sampler([this, &done] {
    const auto period = std::chrono::nanoseconds(
        static_cast<std::uint64_t>(cfg_.sample_period) * cfg_.base.rt_tick_ns);
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(period);
      if (done.load(std::memory_order_acquire)) break;
      overload_.observe({rt_->runtime().now(), book_->offered(), book_->completed(),
                         book_->total_backlog()});
    }
  });
  rt_->run();
  done.store(true, std::memory_order_release);
  sampler.join();
  overload_.observe({rt_->runtime().now(), book_->offered(), book_->completed(),
                     book_->total_backlog()});
}

ekbd::dining::ExclusionReport LoadScenario::exclusion() const {
  return sim_ != nullptr ? sim_->exclusion() : rt_->exclusion();
}

ekbd::dining::WaitFreedomReport LoadScenario::wait_freedom(Time starvation_horizon) const {
  return sim_ != nullptr ? sim_->wait_freedom(starvation_horizon)
                         : rt_->wait_freedom(starvation_horizon);
}

std::string LoadScenario::monitor_agreement() const {
  if (sim_ != nullptr) {
    return sim_->monitors()->agreement_failures(sim_->trace(), sim_->graph(),
                                                sim_->sim().network());
  }
  return rt_->monitor_agreement();
}

ekbd::obs::Histogram LoadScenario::latency() const {
  if (sim_ != nullptr) {
    const ekbd::obs::Histogram* h =
        sim_->metrics()->find_histogram("dining.hungry_latency");
    return h != nullptr ? *h : ekbd::obs::Histogram(0.0, 1.0, 1);
  }
  return rt_->driver().latency_histogram();
}

std::string LoadScenario::telemetry_json() const {
  std::string out = sim_ != nullptr ? sim_->telemetry_json() : rt_->telemetry_json();
  const ekbd::obs::Histogram lat = latency();
  std::string lj = "{\"offered\":" + std::to_string(book_->offered());
  lj += ",\"completed\":" + std::to_string(book_->completed());
  lj += ",\"dropped\":" + std::to_string(book_->dropped());
  lj += ",\"max_actor_backlog\":" + std::to_string(book_->max_backlog());
  lj += ",\"overload\":" + overload_.to_json();
  lj += ",\"churn\":{\"planned\":" + std::to_string(plan_.ops.size());
  lj += ",\"adds\":" + std::to_string(plan_.adds);
  lj += ",\"removes\":" + std::to_string(plan_.removes);
  lj += ",\"recolors\":" + std::to_string(plan_.recolors);
  lj += ",\"issued\":" + std::to_string(churn_issued());
  lj += ",\"skipped\":" + std::to_string(churn_skipped()) + "}";
  lj += ",\"recoveries\":" + std::to_string(cfg_.recoveries.size());
  lj += ",\"latency\":{\"count\":" + std::to_string(lat.count());
  lj += ",\"p50\":" + ekbd::obs::json::format_double(lat.quantile(0.50));
  lj += ",\"p99\":" + ekbd::obs::json::format_double(lat.quantile(0.99));
  lj += ",\"p999\":" + ekbd::obs::json::format_double(lat.quantile(0.999)) + "}";
  lj += "}";
  assert(!out.empty() && out.back() == '}');
  out.pop_back();
  out += ",\"load\":" + lj + "}";
  return out;
}

}  // namespace ekbd::scenario
