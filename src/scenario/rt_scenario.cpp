#include "scenario/rt_scenario.hpp"

#include <cassert>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace ekbd::scenario {

RtScenario::RtScenario(Config cfg)
    : cfg_(std::move(cfg)),
      graph_(build_conflict_graph(cfg_)),
      colors_(ekbd::graph::welsh_powell_coloring(graph_)) {
  assert(cfg_.engine == Engine::kRt && "engine == kSim: use Scenario");
  assert(cfg_.net_mode != NetMode::kLossyPartition &&
         "rt engine: partitions need the multi-process transport (ROADMAP)");
  assert(cfg_.detector != DetectorKind::kScripted &&
         "scripted detector is sim-only (virtual time); use heartbeat for rt runs");

  // -- observability ------------------------------------------------------
  if (cfg_.observability) {
    event_log_ = std::make_unique<ekbd::sim::EventLog>();
    metrics_ = std::make_unique<ekbd::obs::MetricsRegistry>();
    monitors_ = std::make_unique<ekbd::obs::MonitorHub>(graph_);
    recorder_.set_event_log(event_log_.get());
    recorder_.set_event_sink(monitors_.get());
    recorder_.set_watch(monitors_.get());
    recorder_.set_trace_observer(monitors_.get());
  }

  // -- runtime ------------------------------------------------------------
  ekbd::rt::Options opt;
  opt.seed = cfg_.seed;
  opt.tick_ns = cfg_.rt_tick_ns;
  opt.mailbox_capacity = cfg_.rt_mailbox_capacity;
  opt.mailbox = cfg_.rt_mutex_mailbox ? ekbd::rt::MailboxKind::kMutex
                                      : ekbd::rt::MailboxKind::kLockFree;
  opt.shards = cfg_.rt_shards;
  if (cfg_.net_mode != NetMode::kIdeal) {
    // Lossy channels, rt style: seed-deterministic drop/dup coins on the
    // detector layer. The dining layer keeps the reliable in-process
    // channels (the paper's model assumes reliable dining channels; a ◇P₁
    // implementation must survive a lossy wire).
    opt.faults.drop_prob = cfg_.link_faults.drop_prob;
    opt.faults.dup_prob = cfg_.link_faults.dup_prob;
  }
  rt_ = std::make_unique<ekbd::rt::Runtime>(opt, recorder_);

  // -- detector -----------------------------------------------------------
  switch (cfg_.detector) {
    case DetectorKind::kNever:
      owned_detector_ = std::make_unique<ekbd::fd::NeverSuspect>();
      break;
    case DetectorKind::kPerfect:
      owned_detector_ = std::make_unique<ekbd::rt::RtPerfectDetector>(*rt_);
      break;
    case DetectorKind::kHeartbeat: {
      auto det = std::make_unique<ekbd::fd::HeartbeatDetector>();
      heartbeat_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kPingPong: {
      auto det = std::make_unique<ekbd::fd::PingPongDetector>();
      pingpong_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kAccrual: {
      auto det = std::make_unique<ekbd::fd::AccrualDetector>();
      accrual_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kScripted:
      // Unreachable (asserted above); fall back to never-suspect so a
      // release build still runs something sane.
      owned_detector_ = std::make_unique<ekbd::fd::NeverSuspect>();
      break;
  }
  detector_ = owned_detector_.get();

  // -- driver + diners ----------------------------------------------------
  driver_ = std::make_unique<ekbd::rt::DiningDriver>(*rt_, graph_, cfg_.harness);
  diners_.reserve(graph_.size());
  for (std::size_t v = 0; v < graph_.size(); ++v) {
    const auto p = static_cast<ProcessId>(v);
    std::vector<ProcessId> neighbors = graph_.neighbors(p);
    std::vector<int> ncolors;
    ncolors.reserve(neighbors.size());
    for (ProcessId j : neighbors) ncolors.push_back(colors_[static_cast<std::size_t>(j)]);
    const int color = colors_[v];

    ekbd::dining::Diner* d = nullptr;
    switch (cfg_.algorithm) {
      case Algorithm::kWaitFree:
        d = rt_->make_actor<ekbd::core::WaitFreeDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::core::WaitFreeDiner::Options{.acks_per_session = cfg_.acks_per_session});
        break;
      case Algorithm::kChoySingh:
        d = rt_->make_actor<ekbd::baseline::DoorwayDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::baseline::DoorwayDiner::Options{.single_ack_per_session = false});
        break;
      case Algorithm::kChoySinghSingleAck:
        d = rt_->make_actor<ekbd::baseline::DoorwayDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::baseline::DoorwayDiner::Options{.single_ack_per_session = true});
        break;
      case Algorithm::kHierarchical:
        d = rt_->make_actor<ekbd::baseline::HierarchicalDiner>(std::move(neighbors), color,
                                                               std::move(ncolors), *detector_);
        break;
      case Algorithm::kChandyMisra:
        d = rt_->make_actor<ekbd::baseline::ChandyMisraDiner>(std::move(neighbors), color,
                                                              std::move(ncolors), *detector_);
        break;
    }
    diners_.push_back(d);
    driver_->manage(d);
  }

  if (heartbeat_ != nullptr) driver_->install_heartbeats(*heartbeat_, cfg_.heartbeat);
  if (pingpong_ != nullptr) driver_->install_pingpongs(*pingpong_, cfg_.pingpong);
  if (accrual_ != nullptr) driver_->install_accruals(*accrual_, cfg_.accrual);

  for (const auto& [p, at] : cfg_.crashes) {
    rt_->schedule_crash(p, at);
  }
}

void RtScenario::run() {
  assert(!ran_);
  ran_ = true;
  rt_->run_for(cfg_.run_for);
}

ekbd::dining::ExclusionReport RtScenario::exclusion() const {
  return ekbd::dining::check_exclusion(recorder_.trace(), graph_);
}

ekbd::dining::WaitFreedomReport RtScenario::wait_freedom(Time starvation_horizon) const {
  return ekbd::dining::check_wait_freedom(recorder_.trace(), rt_->crash_times(),
                                          starvation_horizon);
}

std::vector<ekbd::dining::OvertakeObservation> RtScenario::census() const {
  return ekbd::dining::overtake_census(recorder_.trace(), graph_);
}

std::string RtScenario::monitor_agreement() const {
  if (monitors_ == nullptr) return "monitors not attached (cfg.observability is false)";
  return monitors_->agreement_failures(recorder_.trace(), graph_, recorder_.network());
}

std::string RtScenario::telemetry_json() const {
  if (metrics_ == nullptr) return "{}";
  ekbd::obs::MetricsRegistry& reg = *metrics_;
  ekbd::obs::collect_network_metrics(recorder_.network(), reg);
  if (event_log_ != nullptr) {
    ekbd::obs::collect_event_log_metrics(*event_log_, reg);
  }
  std::string out = "{\"config\":{";
  out += "\"seed\":" + std::to_string(cfg_.seed);
  out += ",\"engine\":" + ekbd::obs::json::quote(to_string(cfg_.engine));
  out += ",\"topology\":" + ekbd::obs::json::quote(cfg_.topology);
  out += ",\"n\":" + std::to_string(cfg_.n);
  out += ",\"algorithm\":" + ekbd::obs::json::quote(to_string(cfg_.algorithm));
  out += ",\"detector\":" + ekbd::obs::json::quote(to_string(cfg_.detector));
  out += ",\"net_mode\":" + ekbd::obs::json::quote(to_string(cfg_.net_mode));
  out += ",\"run_for\":" + std::to_string(cfg_.run_for);
  out += ",\"tick_ns\":" + std::to_string(cfg_.rt_tick_ns);
  out += ",\"shards\":" + std::to_string(rt_->shard_count());
  const ekbd::rt::ExecutorStats st = rt_->stats();
  out += "},\"executor\":{";
  out += "\"dispatches\":" + std::to_string(st.dispatches);
  out += ",\"runs\":" + std::to_string(st.runs);
  out += ",\"steals\":" + std::to_string(st.steals);
  out += ",\"helps\":" + std::to_string(st.helps);
  out += ",\"timer_helps\":" + std::to_string(st.timer_helps);
  out += ",\"parks\":" + std::to_string(st.parks);
  out += "},\"metrics\":" + reg.to_json();
  out += ",\"monitors\":" + monitors_->to_json();
  out += "}";
  return out;
}

}  // namespace ekbd::scenario
