#include "scenario/rt_scenario.hpp"

#include <cassert>
#include <thread>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace ekbd::scenario {

RtScenario::RtScenario(Config cfg)
    : cfg_(std::move(cfg)),
      graph_(build_conflict_graph(cfg_)),
      colors_(ekbd::graph::welsh_powell_coloring(graph_)) {
  assert(cfg_.engine == Engine::kRt && "engine == kSim: use Scenario");
  assert(cfg_.net_mode != NetMode::kLossyPartition &&
         "rt engine: partitions need the multi-process transport (ROADMAP)");
  assert(cfg_.detector != DetectorKind::kScripted &&
         "scripted detector is sim-only (virtual time); use heartbeat for rt runs");

  // -- observability ------------------------------------------------------
  if (cfg_.observability) {
    // Capped log = bounded resident memory at 10⁵⁺ actors; the log counts
    // what it sheds, the Trace and network books stay exact.
    event_log_ = std::make_unique<ekbd::sim::EventLog>(cfg_.rt_event_log_cap);
    metrics_ = std::make_unique<ekbd::obs::MetricsRegistry>();
    monitors_ = std::make_unique<ekbd::obs::MonitorHub>(graph_);
    recorder_.set_event_log(event_log_.get());
    recorder_.set_event_sink(monitors_.get());
    recorder_.set_watch(monitors_.get());
    recorder_.set_trace_observer(monitors_.get());
  }

  // -- runtime ------------------------------------------------------------
  ekbd::rt::Options opt;
  opt.seed = cfg_.seed;
  opt.tick_ns = cfg_.rt_tick_ns;
  opt.mailbox_capacity = cfg_.rt_mailbox_capacity;
  opt.mailbox = cfg_.rt_mutex_mailbox ? ekbd::rt::MailboxKind::kMutex
                                      : ekbd::rt::MailboxKind::kLockFree;
  opt.shards = cfg_.rt_shards;
  opt.segmented_recorder = cfg_.rt_segmented_recorder;
  if (cfg_.rt_stream_window > 0) opt.stream_window_ticks = cfg_.rt_stream_window;
  opt.stream_pending_cap = cfg_.rt_stream_pending_cap;
  if (cfg_.net_mode != NetMode::kIdeal) {
    // Lossy channels, rt style: seed-deterministic drop/dup coins on the
    // detector layer. The dining layer keeps the reliable in-process
    // channels (the paper's model assumes reliable dining channels; a ◇P₁
    // implementation must survive a lossy wire).
    opt.faults.drop_prob = cfg_.link_faults.drop_prob;
    opt.faults.dup_prob = cfg_.link_faults.dup_prob;
  }
  rt_ = std::make_unique<ekbd::rt::Runtime>(opt, recorder_);

  // -- detector -----------------------------------------------------------
  switch (cfg_.detector) {
    case DetectorKind::kNever:
      owned_detector_ = std::make_unique<ekbd::fd::NeverSuspect>();
      break;
    case DetectorKind::kPerfect:
      owned_detector_ = std::make_unique<ekbd::rt::RtPerfectDetector>(*rt_);
      break;
    case DetectorKind::kHeartbeat: {
      auto det = std::make_unique<ekbd::fd::HeartbeatDetector>();
      heartbeat_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kPingPong: {
      auto det = std::make_unique<ekbd::fd::PingPongDetector>();
      pingpong_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kAccrual: {
      auto det = std::make_unique<ekbd::fd::AccrualDetector>();
      accrual_ = det.get();
      owned_detector_ = std::move(det);
      break;
    }
    case DetectorKind::kScripted:
      // Unreachable (asserted above); fall back to never-suspect so a
      // release build still runs something sane.
      owned_detector_ = std::make_unique<ekbd::fd::NeverSuspect>();
      break;
  }
  detector_ = owned_detector_.get();

  // -- driver + diners ----------------------------------------------------
  driver_ = std::make_unique<ekbd::rt::DiningDriver>(*rt_, graph_, cfg_.harness);
  if (cfg_.observability) {
    // Same shape as the sim harness's dining.hungry_latency histogram.
    driver_->enable_latency_histogram(0.0, 5000.0, 50);
  }
  diners_.reserve(graph_.size());
  for (std::size_t v = 0; v < graph_.size(); ++v) {
    const auto p = static_cast<ProcessId>(v);
    std::vector<ProcessId> neighbors = graph_.neighbors(p);
    std::vector<int> ncolors;
    ncolors.reserve(neighbors.size());
    for (ProcessId j : neighbors) ncolors.push_back(colors_[static_cast<std::size_t>(j)]);
    const int color = colors_[v];

    ekbd::dining::Diner* d = nullptr;
    switch (cfg_.algorithm) {
      case Algorithm::kWaitFree:
        d = rt_->make_actor<ekbd::core::WaitFreeDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::core::WaitFreeDiner::Options{.acks_per_session = cfg_.acks_per_session});
        break;
      case Algorithm::kChoySingh:
        d = rt_->make_actor<ekbd::baseline::DoorwayDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::baseline::DoorwayDiner::Options{.single_ack_per_session = false});
        break;
      case Algorithm::kChoySinghSingleAck:
        d = rt_->make_actor<ekbd::baseline::DoorwayDiner>(
            std::move(neighbors), color, std::move(ncolors), *detector_,
            ekbd::baseline::DoorwayDiner::Options{.single_ack_per_session = true});
        break;
      case Algorithm::kHierarchical:
        d = rt_->make_actor<ekbd::baseline::HierarchicalDiner>(std::move(neighbors), color,
                                                               std::move(ncolors), *detector_);
        break;
      case Algorithm::kChandyMisra:
        d = rt_->make_actor<ekbd::baseline::ChandyMisraDiner>(std::move(neighbors), color,
                                                              std::move(ncolors), *detector_);
        break;
    }
    diners_.push_back(d);
    driver_->manage(d);
  }

  if (heartbeat_ != nullptr) driver_->install_heartbeats(*heartbeat_, cfg_.heartbeat);
  if (pingpong_ != nullptr) driver_->install_pingpongs(*pingpong_, cfg_.pingpong);
  if (accrual_ != nullptr) driver_->install_accruals(*accrual_, cfg_.accrual);

  for (const auto& [p, at] : cfg_.crashes) {
    rt_->schedule_crash(p, at);
  }
}

void RtScenario::run() {
  assert(!ran_);
  ran_ = true;
  if (cfg_.rt_telemetry_interval <= 0) {
    rt_->run_for(cfg_.run_for);
    return;
  }
  // Live-telemetry mode: same start / sleep-to-horizon / join sequence as
  // Runtime::run_for, but the sleep is chopped into snapshot intervals.
  std::FILE* out = nullptr;
  if (!cfg_.rt_telemetry_path.empty()) {
    out = std::fopen(cfg_.rt_telemetry_path.c_str(), "w");
  }
  rt_->start();
  for (Time t = cfg_.rt_telemetry_interval; t < cfg_.run_for;
       t += cfg_.rt_telemetry_interval) {
    std::this_thread::sleep_until(rt_->clock().deadline(t));
    snapshot_telemetry(t, out, /*final_snapshot=*/false);
  }
  std::this_thread::sleep_until(rt_->clock().deadline(cfg_.run_for));
  rt_->stop_and_join();
  recorder_.set_end_time(rt_->now());
  // Final snapshot after the join: exact totals, closing the staircase.
  snapshot_telemetry(rt_->now(), out, /*final_snapshot=*/true);
  if (out != nullptr) std::fclose(out);
}

void RtScenario::snapshot_telemetry(Time at, std::FILE* out, bool final_snapshot) {
  const std::vector<ekbd::rt::ExecutorStats> shards = rt_->stats_per_shard();
  const ekbd::rt::StreamStats ss = recorder_.stream_stats();
  const ekbd::obs::Histogram lat =
      driver_->latency_enabled() ? driver_->latency_histogram()
                                 : ekbd::obs::Histogram(0.0, 1.0, 1);
  const double p50 = lat.quantile(0.50);
  const double p99 = lat.quantile(0.99);
  const double p999 = lat.quantile(0.999);

  auto track = [&](const std::string& name, double v) {
    counter_samples_.push_back({at, name, v});
  };
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::string pre = "shard" + std::to_string(i) + "/";
    track(pre + "dispatches", static_cast<double>(shards[i].dispatches));
    track(pre + "runs", static_cast<double>(shards[i].runs));
    track(pre + "parks", static_cast<double>(shards[i].parks));
  }
  track("latency/p50", p50);
  track("latency/p99", p99);
  track("latency/p999", p999);
  track("stream/merged_events", static_cast<double>(ss.merged_events));
  track("stream/max_pending", static_cast<double>(ss.max_pending));

  if (out == nullptr) return;
  std::string line = "{\"at\":" + std::to_string(at) + ",\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i != 0) line += ',';
    line += "{\"dispatches\":" + std::to_string(shards[i].dispatches) +
            ",\"runs\":" + std::to_string(shards[i].runs) +
            ",\"steals\":" + std::to_string(shards[i].steals) +
            ",\"helps\":" + std::to_string(shards[i].helps) +
            ",\"timer_helps\":" + std::to_string(shards[i].timer_helps) +
            ",\"parks\":" + std::to_string(shards[i].parks) + "}";
  }
  line += "],\"latency\":{\"count\":" + std::to_string(lat.count()) +
          ",\"p50\":" + ekbd::obs::json::format_double(p50) +
          ",\"p99\":" + ekbd::obs::json::format_double(p99) +
          ",\"p999\":" + ekbd::obs::json::format_double(p999) + "}";
  line += ",\"stream\":{\"collect_passes\":" + std::to_string(ss.collect_passes) +
          ",\"merged_events\":" + std::to_string(ss.merged_events) +
          ",\"merged_trace_events\":" + std::to_string(ss.merged_trace_events) +
          ",\"max_pending\":" + std::to_string(ss.max_pending) +
          ",\"dropped_records\":" + std::to_string(ss.dropped_records) +
          ",\"dropped_windows\":" + std::to_string(ss.dropped_windows) + "}";
  if (final_snapshot && event_log_ != nullptr) {
    line += ",\"event_log\":{\"size\":" + std::to_string(event_log_->size()) +
            ",\"dropped\":" + std::to_string(event_log_->dropped()) + "}";
  }
  line += "}\n";
  std::fputs(line.c_str(), out);
  std::fflush(out);
}

ekbd::dining::ExclusionReport RtScenario::exclusion() const {
  return ekbd::dining::check_exclusion(recorder_.trace(), graph_);
}

ekbd::dining::WaitFreedomReport RtScenario::wait_freedom(Time starvation_horizon) const {
  return ekbd::dining::check_wait_freedom(recorder_.trace(), rt_->crash_times(),
                                          starvation_horizon);
}

std::vector<ekbd::dining::OvertakeObservation> RtScenario::census() const {
  return ekbd::dining::overtake_census(recorder_.trace(), graph_);
}

std::string RtScenario::monitor_agreement() const {
  if (monitors_ == nullptr) return "monitors not attached (cfg.observability is false)";
  return monitors_->agreement_failures(recorder_.trace(), graph_, recorder_.network());
}

std::string RtScenario::telemetry_json() const {
  if (metrics_ == nullptr) return "{}";
  ekbd::obs::MetricsRegistry& reg = *metrics_;
  ekbd::obs::collect_network_metrics(recorder_.network(), reg);
  if (event_log_ != nullptr) {
    ekbd::obs::collect_event_log_metrics(*event_log_, reg);
  }
  std::string out = "{\"config\":{";
  out += "\"seed\":" + std::to_string(cfg_.seed);
  out += ",\"engine\":" + ekbd::obs::json::quote(to_string(cfg_.engine));
  out += ",\"topology\":" + ekbd::obs::json::quote(cfg_.topology);
  out += ",\"n\":" + std::to_string(cfg_.n);
  out += ",\"algorithm\":" + ekbd::obs::json::quote(to_string(cfg_.algorithm));
  out += ",\"detector\":" + ekbd::obs::json::quote(to_string(cfg_.detector));
  out += ",\"net_mode\":" + ekbd::obs::json::quote(to_string(cfg_.net_mode));
  out += ",\"run_for\":" + std::to_string(cfg_.run_for);
  out += ",\"tick_ns\":" + std::to_string(cfg_.rt_tick_ns);
  out += ",\"shards\":" + std::to_string(rt_->shard_count());
  const ekbd::rt::ExecutorStats st = rt_->stats();
  out += "},\"executor\":{";
  out += "\"dispatches\":" + std::to_string(st.dispatches);
  out += ",\"runs\":" + std::to_string(st.runs);
  out += ",\"steals\":" + std::to_string(st.steals);
  out += ",\"helps\":" + std::to_string(st.helps);
  out += ",\"timer_helps\":" + std::to_string(st.timer_helps);
  out += ",\"parks\":" + std::to_string(st.parks);
  if (driver_->latency_enabled()) {
    const ekbd::obs::Histogram lat = driver_->latency_histogram();
    out += "},\"latency\":{";
    out += "\"count\":" + std::to_string(lat.count());
    out += ",\"p50\":" + ekbd::obs::json::format_double(lat.quantile(0.50));
    out += ",\"p99\":" + ekbd::obs::json::format_double(lat.quantile(0.99));
    out += ",\"p999\":" + ekbd::obs::json::format_double(lat.quantile(0.999));
    out += ",\"hist\":" + lat.to_json();
  }
  const ekbd::rt::StreamStats ss = recorder_.stream_stats();
  out += "},\"stream\":{";
  out += "\"collect_passes\":" + std::to_string(ss.collect_passes);
  out += ",\"merged_events\":" + std::to_string(ss.merged_events);
  out += ",\"merged_trace_events\":" + std::to_string(ss.merged_trace_events);
  out += ",\"max_pending\":" + std::to_string(ss.max_pending);
  out += ",\"dropped_records\":" + std::to_string(ss.dropped_records);
  out += ",\"dropped_windows\":" + std::to_string(ss.dropped_windows);
  out += "},\"metrics\":" + reg.to_json();
  out += ",\"monitors\":" + monitors_->to_json();
  out += "}";
  return out;
}

}  // namespace ekbd::scenario
