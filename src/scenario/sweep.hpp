/// \file sweep.hpp
/// Parallel scenario sweeps.
///
/// Fuzz, stress and parameter-sweep suites all have the same shape: many
/// *independent* timed simulations (one `Simulator` per job, nothing
/// shared), followed by per-job property checks. The runner here shards
/// the simulations across the mc work-stealing pool and then hands each
/// finished job back to the caller **serially, in index order, on the
/// calling thread** — so gtest assertions, SCOPED_TRACE and any
/// accumulation stay single-threaded, and a sweep's pass/fail report is
/// identical for every thread count.
///
/// Jobs are inspected (and destroyed) as soon as their turn comes, so the
/// high-water memory is one window of out-of-order completions, not the
/// whole sweep.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mc/pool.hpp"
#include "scenario/load_scenario.hpp"
#include "scenario/proc_scenario.hpp"
#include "scenario/rt_scenario.hpp"
#include "scenario/scenario.hpp"

namespace ekbd::scenario {

struct SweepOptions {
  std::size_t threads = 0;  ///< pool width; 0 = hardware concurrency
  /// When non-empty, `run_scenarios` appends one `telemetry_json()` line
  /// per scenario to this file (JSONL), written serially in config order
  /// from the inspect loop — so the file order matches the config order
  /// for any thread count. Every line additionally carries a
  /// `"sweep":{"wall_seconds":..,"offered":..,"completed":..}` object:
  /// wall-clock build+run seconds measured on the worker, plus the
  /// trace's hungry-session (kBecameHungry) and completed-session
  /// (kStopEating) counts. Scenarios without `cfg.observability` emit
  /// the sweep object alone, keeping line `i` ↔ config `i`.
  std::string telemetry_path;
};

/// Run `count` independent jobs on a work-stealing pool; inspect results
/// serially in index order on the calling thread. `run` executes on pool
/// workers and must not touch shared mutable state; exceptions it throws
/// are rethrown from the matching `inspect` turn (so a gtest failure
/// points at the job index that died).
template <typename R>
void parallel_sweep(std::size_t count, std::size_t threads,
                    const std::function<R(std::size_t)>& run,
                    const std::function<void(std::size_t, R&)>& inspect) {
  mc::WorkStealingPool pool(mc::WorkStealingPool::resolve(threads));
  std::mutex mu;
  std::condition_variable done_cv;
  std::map<std::size_t, std::optional<R>> ready;       // completed, not yet inspected
  std::map<std::size_t, std::exception_ptr> failed;
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      std::optional<R> result;
      std::exception_ptr error;
      try {
        result.emplace(run(i));
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error) failed.emplace(i, error);
      ready.emplace(i, std::move(result));
      done_cv.notify_all();
    });
  }
  for (std::size_t next = 0; next < count; ++next) {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return ready.count(next) > 0; });
    std::optional<R> result = std::move(ready.at(next));
    ready.erase(next);
    const auto fail = failed.find(next);
    const std::exception_ptr error = fail == failed.end() ? nullptr : fail->second;
    lock.unlock();
    if (error) std::rethrow_exception(error);
    inspect(next, *result);
  }
}

/// Convenience: build + run one `Scenario` per config on the pool, then
/// inspect each serially in config order. This is the runner the fuzz and
/// stress suites drive; anything expressible as a `Config` parallelizes
/// through it unchanged.
void run_scenarios(const std::vector<Config>& configs,
                   const std::function<void(std::size_t, Scenario&)>& inspect,
                   const SweepOptions& options = {});

/// Same runner for rt-engine configs (engine == Engine::kRt). Mind the
/// width: every rt job spawns one OS thread per process on top of the
/// pool, so rt sweeps usually want a small explicit `threads` rather than
/// hardware concurrency.
void run_rt_scenarios(const std::vector<Config>& configs,
                      const std::function<void(std::size_t, RtScenario&)>& inspect,
                      const SweepOptions& options = {});

/// Same runner for workload-harness configs: one `LoadScenario` per
/// `LoadConfig`, parallel on the pool, inspected serially in config
/// order. Telemetry lines carry the scenario's own `"load"` object plus
/// the runner's `"sweep"` object. Mind the width for rt-engine configs
/// (one OS thread per actor per job, as `run_rt_scenarios`).
void run_load_scenarios(const std::vector<LoadConfig>& configs,
                        const std::function<void(std::size_t, LoadScenario&)>& inspect,
                        const SweepOptions& options = {});

/// Same runner for proc-engine configs (engine == Engine::kProc) — but
/// deliberately SERIAL, no pool: `ProcScenario::run()` forks one process
/// per node, and forking from a multithreaded parent is undefined enough
/// to matter (only async-signal-safe code may run between fork and exec).
/// Each scenario is its own cluster, so the parallelism lives in the node
/// processes instead. `options.threads` is ignored; `telemetry_path`
/// works as in the other runners.
void run_proc_scenarios(const std::vector<Config>& configs,
                        const std::function<void(std::size_t, ProcScenario&)>& inspect,
                        const SweepOptions& options = {});

}  // namespace ekbd::scenario
