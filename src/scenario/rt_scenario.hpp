/// \file rt_scenario.hpp
/// One-stop experiment builder for the real-threads engine.
///
/// The rt counterpart of `Scenario`: the same declarative `Config` (with
/// `engine = Engine::kRt`), wired onto `rt::Runtime` — one OS thread per
/// process, wall-clock timers, lock-free mailboxes — with the Recorder
/// feeding the same online monitors and post-hoc checkers.
///
/// Config mapping (vs. the sim engine):
///  * topology / algorithm / detector / harness / crashes / run_for —
///    shared verbatim; `run_for` ticks map to wall time via `rt_tick_ns`;
///  * delay model — none: real scheduling IS the delay model;
///  * detector kinds — kNever, kPerfect (an oracle over the runtime's
///    crash flags), kHeartbeat / kPingPong / kAccrual (real modules over
///    real timers). kScripted is sim-only (it is written against virtual
///    time) and asserts;
///  * net_mode kLossy — seed-deterministic drop/dup coins on the
///    *detector* layer (`link_faults.drop_prob` / `dup_prob`); the dining
///    layer keeps the reliable in-process channels, matching the paper's
///    model. Partitions and the ARQ transport are sim-only for now (see
///    ROADMAP: multi-process transport);
///  * observability — the MonitorHub rides the Recorder's streams; an
///    EventLog is attached so runs can be replayed (rt/replay.hpp) and
///    exported to Perfetto.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/perfetto.hpp"
#include "rt/dining_driver.hpp"
#include "rt/recorder.hpp"
#include "rt/runtime.hpp"
#include "scenario/scenario.hpp"

namespace ekbd::scenario {

class RtScenario {
 public:
  explicit RtScenario(Config cfg);

  /// Run to the configured horizon (may be called once). Blocks for
  /// run_for × rt_tick_ns wall nanoseconds. With `rt_telemetry_interval`
  /// set, the blocked wait becomes a snapshot loop: every interval ticks
  /// one JSONL line goes to `rt_telemetry_path` (if non-empty) and the
  /// same samples accumulate as Perfetto counter tracks
  /// (`counter_samples()`), all read live off the running executor.
  void run();

  // -- access ------------------------------------------------------------

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] ekbd::rt::Runtime& runtime() { return *rt_; }
  [[nodiscard]] ekbd::rt::Recorder& recorder() { return recorder_; }
  [[nodiscard]] ekbd::rt::DiningDriver& driver() { return *driver_; }
  [[nodiscard]] const ekbd::graph::ConflictGraph& graph() const { return graph_; }
  [[nodiscard]] const ekbd::graph::Coloring& colors() const { return colors_; }
  [[nodiscard]] const ekbd::dining::Trace& trace() const { return recorder_.trace(); }
  [[nodiscard]] ekbd::dining::Diner* diner(ProcessId p) {
    return diners_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const ekbd::fd::FailureDetector& detector() const { return *detector_; }
  /// Recorded event log (nullptr unless cfg.observability).
  [[nodiscard]] const ekbd::sim::EventLog* event_log() const { return event_log_.get(); }
  /// Metrics registry (nullptr unless cfg.observability).
  [[nodiscard]] ekbd::obs::MetricsRegistry* metrics() { return metrics_.get(); }
  /// Online invariant monitors (nullptr unless cfg.observability).
  [[nodiscard]] ekbd::obs::MonitorHub* monitors() { return monitors_.get(); }

  // -- canned reports ----------------------------------------------------

  [[nodiscard]] ekbd::dining::ExclusionReport exclusion() const;
  [[nodiscard]] ekbd::dining::WaitFreedomReport wait_freedom(Time starvation_horizon) const;
  [[nodiscard]] std::vector<ekbd::dining::OvertakeObservation> census() const;

  /// Cross-check the online monitors against the post-hoc checkers and
  /// the recorder's network books ("" on full agreement — the rt fuzz
  /// suite asserts exactly this on every run). Requires observability.
  [[nodiscard]] std::string monitor_agreement() const;

  /// One-line JSON telemetry snapshot (requires cfg.observability) —
  /// same shape as Scenario::telemetry_json, with "engine":"rt" plus
  /// "latency" (hungry→eat quantiles) and "stream" (recorder StreamStats)
  /// objects.
  [[nodiscard]] std::string telemetry_json() const;

  /// Counter-track samples collected by the live snapshot loop (empty
  /// unless rt_telemetry_interval was set). Feed to the CounterSample
  /// overload of obs::chrome_trace_json.
  [[nodiscard]] const std::vector<ekbd::obs::CounterSample>& counter_samples() const {
    return counter_samples_;
  }

 private:
  /// One live snapshot at tick `at`: JSONL line to `out` (may be null)
  /// plus counter samples. Safe while the executor runs — everything it
  /// reads is atomic or mutexed; the EventLog (plain, collector-owned
  /// while streaming) is only summarized when `final_snapshot` is true.
  void snapshot_telemetry(Time at, std::FILE* out, bool final_snapshot);

  Config cfg_;
  ekbd::graph::ConflictGraph graph_;
  ekbd::graph::Coloring colors_;
  // Observability first: the recorder points at the log/hub, the runtime
  // at the recorder — destruction must run in reverse.
  std::unique_ptr<ekbd::sim::EventLog> event_log_;
  std::unique_ptr<ekbd::obs::MetricsRegistry> metrics_;
  std::unique_ptr<ekbd::obs::MonitorHub> monitors_;
  ekbd::rt::Recorder recorder_;
  std::unique_ptr<ekbd::rt::Runtime> rt_;
  std::unique_ptr<ekbd::fd::FailureDetector> owned_detector_;
  ekbd::fd::FailureDetector* detector_ = nullptr;
  ekbd::fd::HeartbeatDetector* heartbeat_ = nullptr;
  ekbd::fd::PingPongDetector* pingpong_ = nullptr;
  ekbd::fd::AccrualDetector* accrual_ = nullptr;
  std::unique_ptr<ekbd::rt::DiningDriver> driver_;
  std::vector<ekbd::dining::Diner*> diners_;
  std::vector<ekbd::obs::CounterSample> counter_samples_;
  bool ran_ = false;
};

}  // namespace ekbd::scenario
