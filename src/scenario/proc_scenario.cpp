#include "scenario/proc_scenario.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <memory>
#include <utility>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "rt/replay.hpp"

namespace ekbd::scenario {

namespace {

using ekbd::dining::Diner;
using ekbd::dining::TraceEventKind;
using ekbd::netproc::NodeEngine;

/// Same salt as the sim harness / rt driver env streams.
constexpr std::uint64_t kEnvSalt = 0x4a52ULL;

/// Child-side environment driver for the node's single diner: plays the
/// paper's environment (think → hungry, finite eat durations) exactly
/// like rt::DiningDriver, reduced to one process. Lives on the engine's
/// retain list; all callbacks run on the node's only thread.
struct NodeWiring {
  NodeEngine* eng = nullptr;
  dining::HarnessOptions opt;
  std::unique_ptr<sim::Rng> env_rng;
  Diner* diner = nullptr;
  std::unique_ptr<ekbd::fd::FailureDetector> detector;
  ekbd::fd::HeartbeatDetector* heartbeat = nullptr;  ///< typed view when used

  void schedule_hunger(Time delay) {
    eng->call_after(delay, [this] {
      if (diner->thinking()) diner->become_hungry();
    });
  }

  void on_event(Diner& d, TraceEventKind kind) {
    eng->recorder().on_trace(d.id(), eng->now(), kind);
    switch (kind) {
      case TraceEventKind::kStartEating: {
        const Time duration = env_rng->uniform_int(opt.eat_lo, opt.eat_hi);
        Diner* dp = &d;
        eng->call_after(duration, [dp] {
          if (dp->eating()) dp->finish_eating();
        });
        break;
      }
      case TraceEventKind::kStopEating:
        schedule_hunger(env_rng->uniform_int(opt.think_lo, opt.think_hi));
        break;
      default:
        break;
    }
  }
};

/// Divide every timestamp by `s` (ns ticks → Config ticks). Monotone, so
/// the merged linearization's order is preserved; ties keep merge order.
rt::Recording rescale(const rt::Recording& rec, std::int64_t s) {
  rt::Recording out = rec;
  if (s <= 1) return out;
  for (auto& ev : out.events) ev.at /= s;
  for (auto& te : out.trace) te.at /= s;
  if (out.end_time > 0) out.end_time /= s;
  return out;
}

}  // namespace

ProcScenario::ProcScenario(Config cfg)
    : cfg_(std::move(cfg)),
      graph_(build_conflict_graph(cfg_)),
      colors_(ekbd::graph::welsh_powell_coloring(graph_)) {
  assert(cfg_.engine == Engine::kProc && "use Scenario / RtScenario for other engines");
  assert((cfg_.detector == DetectorKind::kNever || cfg_.detector == DetectorKind::kPerfect ||
          cfg_.detector == DetectorKind::kHeartbeat) &&
         "proc engine wires kNever / kPerfect (CrashNotice) / kHeartbeat only");
  log_dir_ = "ekbd_proc_logs." + std::to_string(::getpid()) + "." +
             std::to_string(cfg_.seed);
}

void ProcScenario::run() {
  assert(!ran_ && "run() may be called once");
  ran_ = true;

  // Scale: the Config speaks `rt_tick_ns`-sized ticks, the socket engine
  // nanosecond ticks (so merged cross-node stamps linearize).
  const auto scale = static_cast<std::int64_t>(cfg_.rt_tick_ns == 0 ? 1 : cfg_.rt_tick_ns);

  ::mkdir(log_dir_.c_str(), 0755);

  ekbd::netproc::ClusterOptions copt;
  copt.n = graph_.size();
  copt.seed = cfg_.seed;
  copt.tick_ns = 1;
  copt.horizon = cfg_.run_for * scale;
  copt.log_dir = log_dir_;
  if (cfg_.net_mode != NetMode::kIdeal) copt.link_faults = cfg_.link_faults;
  if (cfg_.net_mode == NetMode::kLossyPartition) {
    for (net::Partition p : cfg_.partitions) {
      p.from *= scale;
      if (p.until >= 0) p.until *= scale;
      copt.partitions.push_back(std::move(p));
    }
    for (net::EdgeCut c : cfg_.edge_cuts) {
      c.from *= scale;
      if (c.until >= 0) c.until *= scale;
      copt.edge_cuts.push_back(c);
    }
  }
  for (const auto& [p, at] : cfg_.crashes) copt.crashes.emplace_back(p, at * scale);

  // -- child-side wiring, captured as plain (fork-safe) values -------------
  std::vector<std::vector<ProcessId>> adjacency(graph_.size());
  std::vector<int> colors(graph_.size());
  for (std::size_t v = 0; v < graph_.size(); ++v) {
    adjacency[v] = graph_.neighbors(static_cast<ProcessId>(v));
    colors[v] = colors_[v];
  }

  dining::HarnessOptions hopt = cfg_.harness;
  hopt.think_lo *= scale;
  hopt.think_hi *= scale;
  hopt.eat_lo *= scale;
  hopt.eat_hi *= scale;
  hopt.first_hunger_hi *= scale;
  hopt.recheck_period *= scale;

  ekbd::fd::HeartbeatModule::Params hb = cfg_.heartbeat;
  hb.period *= scale;
  hb.initial_timeout *= scale;
  hb.timeout_increment *= scale;

  ekbd::net::ReliableTransport::Params arq = cfg_.transport;
  arq.rto_initial *= scale;
  arq.rto_max *= scale;

  const std::uint64_t seed = cfg_.seed;
  const Algorithm algorithm = cfg_.algorithm;
  const DetectorKind detector_kind = cfg_.detector;
  const int acks = cfg_.acks_per_session;
  const bool use_arq = cfg_.net_mode != NetMode::kIdeal;

  const ekbd::netproc::NodeSetup setup = [=](NodeEngine& eng) {
    const ProcessId self = eng.config().self;
    const auto vi = static_cast<std::size_t>(self);

    auto wiring = std::make_shared<NodeWiring>();
    wiring->eng = &eng;
    wiring->opt = hopt;
    wiring->env_rng = std::make_unique<sim::Rng>(
        sim::Rng(seed ^ kEnvSalt).fork(static_cast<std::uint64_t>(self) + 1));

    switch (detector_kind) {
      case DetectorKind::kNever:
        wiring->detector = std::make_unique<ekbd::fd::NeverSuspect>();
        break;
      case DetectorKind::kPerfect:
        wiring->detector = std::make_unique<ekbd::netproc::CrashNoticeDetector>(eng);
        break;
      case DetectorKind::kHeartbeat: {
        auto det = std::make_unique<ekbd::fd::HeartbeatDetector>();
        wiring->heartbeat = det.get();
        wiring->detector = std::move(det);
        break;
      }
      default:
        wiring->detector = std::make_unique<ekbd::fd::NeverSuspect>();
        break;
    }
    const ekbd::fd::FailureDetector& det = *wiring->detector;

    std::vector<ProcessId> neighbors = adjacency[vi];
    std::vector<int> ncolors;
    ncolors.reserve(neighbors.size());
    for (ProcessId j : neighbors) ncolors.push_back(colors[static_cast<std::size_t>(j)]);
    const int color = colors[vi];

    Diner* d = nullptr;
    switch (algorithm) {
      case Algorithm::kWaitFree:
        d = eng.make_actor<ekbd::core::WaitFreeDiner>(
            std::vector<ProcessId>(neighbors), color, std::move(ncolors), det,
            ekbd::core::WaitFreeDiner::Options{.acks_per_session = acks});
        break;
      case Algorithm::kChoySingh:
        d = eng.make_actor<ekbd::baseline::DoorwayDiner>(
            std::vector<ProcessId>(neighbors), color, std::move(ncolors), det,
            ekbd::baseline::DoorwayDiner::Options{.single_ack_per_session = false});
        break;
      case Algorithm::kChoySinghSingleAck:
        d = eng.make_actor<ekbd::baseline::DoorwayDiner>(
            std::vector<ProcessId>(neighbors), color, std::move(ncolors), det,
            ekbd::baseline::DoorwayDiner::Options{.single_ack_per_session = true});
        break;
      case Algorithm::kHierarchical:
        d = eng.make_actor<ekbd::baseline::HierarchicalDiner>(
            std::vector<ProcessId>(neighbors), color, std::move(ncolors), det);
        break;
      case Algorithm::kChandyMisra:
        d = eng.make_actor<ekbd::baseline::ChandyMisraDiner>(
            std::vector<ProcessId>(neighbors), color, std::move(ncolors), det);
        break;
    }
    wiring->diner = d;
    d->set_recheck_period(hopt.recheck_period);
    d->set_event_callback([w = wiring.get()](Diner& dn, TraceEventKind kind) {
      w->on_event(dn, kind);
    });

    if (wiring->heartbeat != nullptr) {
      auto module = std::make_unique<ekbd::fd::HeartbeatModule>(neighbors, hb);
      wiring->heartbeat->attach(self, module.get());
      d->host_fd_module(std::move(module));
    }

    if (use_arq) eng.install_arq(arq, wiring->detector.get());

    wiring->schedule_hunger(wiring->env_rng->uniform_int(0, hopt.first_hunger_hi));
    eng.retain(std::move(wiring));
  };

  result_ = ekbd::netproc::run_cluster(copt, setup);

  // -- rebuild the cluster-wide books from the merged shipped logs ---------
  const rt::Recording scaled = rescale(result_.merged, scale);
  hub_ = std::make_unique<ekbd::obs::MonitorHub>(graph_);
  rt::rebuild(scaled, *hub_, net_, trace_, &log_);

  // Keep the shipped logs when something went wrong (CI uploads them);
  // remove them after a clean run.
  if (result_.ok) {
    for (const auto& node : result_.nodes) {
      if (!node.log_path.empty()) (void)std::remove(node.log_path.c_str());
    }
    (void)::rmdir(log_dir_.c_str());
  }
}

std::vector<Time> ProcScenario::crash_times() const {
  std::vector<Time> times(graph_.size(), -1);
  for (const auto& [p, at] : cfg_.crashes) {
    if (p >= 0 && static_cast<std::size_t>(p) < times.size()) {
      times[static_cast<std::size_t>(p)] = at;
    }
  }
  return times;
}

ekbd::dining::ExclusionReport ProcScenario::exclusion() const {
  return ekbd::dining::check_exclusion(trace_, graph_);
}

ekbd::dining::WaitFreedomReport ProcScenario::wait_freedom(Time starvation_horizon) const {
  return ekbd::dining::check_wait_freedom(trace_, crash_times(), starvation_horizon);
}

std::vector<ekbd::dining::OvertakeObservation> ProcScenario::census() const {
  return ekbd::dining::overtake_census(trace_, graph_);
}

std::string ProcScenario::monitor_agreement() const {
  if (hub_ == nullptr) return "run() has not executed";
  return hub_->agreement_failures(trace_, graph_, net_);
}

std::string ProcScenario::replay_agreement() const {
  if (hub_ == nullptr) return "run() has not executed";
  ekbd::obs::MonitorHub fresh(graph_);
  rt::replay(log_, trace_, fresh);
  const std::string live = hub_->to_json();
  const std::string replayed = fresh.to_json();
  if (live == replayed) return "";
  return "replay verdicts diverge:\n  live:     " + live + "\n  replayed: " + replayed;
}

std::string ProcScenario::telemetry_json() const {
  ekbd::obs::MetricsRegistry reg;
  ekbd::obs::collect_network_metrics(net_, reg);
  ekbd::obs::collect_event_log_metrics(log_, reg);
  std::string out = "{\"config\":{";
  out += "\"seed\":" + std::to_string(cfg_.seed);
  out += ",\"engine\":" + ekbd::obs::json::quote(to_string(cfg_.engine));
  out += ",\"topology\":" + ekbd::obs::json::quote(cfg_.topology);
  out += ",\"n\":" + std::to_string(cfg_.n);
  out += ",\"algorithm\":" + ekbd::obs::json::quote(to_string(cfg_.algorithm));
  out += ",\"detector\":" + ekbd::obs::json::quote(to_string(cfg_.detector));
  out += ",\"net_mode\":" + ekbd::obs::json::quote(to_string(cfg_.net_mode));
  out += ",\"run_for\":" + std::to_string(cfg_.run_for);
  out += ",\"tick_ns\":" + std::to_string(cfg_.rt_tick_ns);
  out += "},\"cluster\":{";
  out += "\"ok\":" + std::string(result_.ok ? "true" : "false");
  out += ",\"error\":" + ekbd::obs::json::quote(result_.error);
  out += ",\"crashes\":" + std::to_string(result_.crashes.size());
  std::size_t truncated = 0;
  for (const auto& part : result_.parts) truncated += part.truncated ? 1 : 0;
  out += ",\"truncated_logs\":" + std::to_string(truncated);
  out += "},\"metrics\":" + reg.to_json();
  out += ",\"monitors\":" + (hub_ != nullptr ? hub_->to_json() : std::string("{}"));
  out += "}";
  return out;
}

}  // namespace ekbd::scenario
