#include "scenario/liveness.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "graph/coloring.hpp"
#include "graph/topology.hpp"
#include "sim/delay_model.hpp"
#include "sim/rng.hpp"

namespace ekbd::scenario {

using ekbd::core::WaitFreeDiner;
using ekbd::dining::TraceEventKind;
using ekbd::drinking::DrinkingDiner;
using ekbd::sim::ExecMode;
using ekbd::sim::PendingEvent;

namespace {

ekbd::graph::ConflictGraph build_graph(const LivenessConfig& cfg) {
  // Seeded but irrelevant for the certification set (clique/ring/grid are
  // deterministic); a fixed seed keeps factories replay-identical even
  // for the random family.
  ekbd::sim::Rng rng(1);
  return ekbd::graph::by_name(cfg.topology, cfg.n, rng);
}

}  // namespace

// ------------------------------------------------------- dinner world --

DinnerLivenessWorld::DinnerLivenessWorld(const LivenessConfig& cfg)
    : cfg_(cfg),
      graph_(build_graph(cfg)),
      colors_(ekbd::graph::greedy_coloring(graph_)),
      sim_(1, ekbd::sim::make_fixed_delay(1), ExecMode::kControlled),
      perfect_(sim_) {
  const std::size_t n = graph_.size();
  assert(n <= 16 && "liveness worlds must stay small (state key packing)");
  const ekbd::fd::FailureDetector& det =
      cfg_.mutation == LivenessMutation::kStuckDetector
          ? static_cast<const ekbd::fd::FailureDetector&>(never_)
          : static_cast<const ekbd::fd::FailureDetector&>(perfect_);
  WaitFreeDiner::Options dopt;
  dopt.acks_per_session = cfg_.acks_per_session;
  dopt.mutate_drop_fork_handover = cfg_.mutation == LivenessMutation::kDropForkHandover;
  dopt.mutate_grant_beyond_budget = cfg_.mutation == LivenessMutation::kGrantBeyondBudget;

  meals_done_.assign(n, 0);
  overtakes_.assign(n * n, 0);
  diners_.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    const auto pid = static_cast<ProcessId>(p);
    std::vector<int> ncolors;
    ncolors.reserve(graph_.degree(pid));
    for (ProcessId q : graph_.neighbors(pid)) {
      ncolors.push_back(colors_[static_cast<std::size_t>(q)]);
    }
    auto* d = sim_.make_actor<WaitFreeDiner>(graph_.neighbors(pid), colors_[p],
                                             std::move(ncolors), det, dopt);
    d->set_event_callback(
        [this](ekbd::dining::Diner& dd, TraceEventKind kind) { on_trace(dd, kind); });
    diners_.push_back(d);
  }
  sim_.start();
  if (cfg_.crash_victim >= 0) schedule_choice(Role::kCrash, cfg_.crash_victim);
  for (std::size_t p = 0; p < n; ++p) {
    if ((cfg_.initial_hungry >> p) & 1ULL) diners_[p]->become_hungry();
  }
}

void DinnerLivenessWorld::schedule_choice(Role role, ProcessId p) {
  const std::uint64_t id = sim_.next_event_id();
  scheduled_roles_.emplace(id, std::make_pair(role, p));
  sim_.schedule(sim_.now(), [this, id, role, p] {
    scheduled_roles_.erase(id);
    auto* d = diners_[static_cast<std::size_t>(p)];
    switch (role) {
      case Role::kFinish:
        if (!sim_.crashed(p) && d->eating()) d->finish_eating();
        break;
      case Role::kRehungry:
        if (!sim_.crashed(p) && d->thinking()) d->become_hungry();
        break;
      case Role::kCrash:
        sim_.crash(p);
        break;
    }
  });
}

void DinnerLivenessWorld::on_trace(ekbd::dining::Diner& d, TraceEventKind kind) {
  const ProcessId p = d.id();
  const std::size_t n = graph_.size();
  const auto pi = static_cast<std::size_t>(p);
  trace_.record(sim_.now(), p, kind);
  switch (kind) {
    case TraceEventKind::kBecameHungry:
      // New hungry session: the P4 overtake counters restart.
      std::fill_n(overtakes_.begin() + static_cast<std::ptrdiff_t>(pi * n),
                  static_cast<std::ptrdiff_t>(n), 0);
      break;
    case TraceEventKind::kStartEating:
      for (ProcessId q : graph_.neighbors(p)) {
        if (!sim_.crashed(q) && diners_[static_cast<std::size_t>(q)]->hungry()) {
          int& c = overtakes_[static_cast<std::size_t>(q) * n + pi];
          c = std::min(c + 1, cfg_.overtake_bound + 1);
        }
      }
      schedule_choice(Role::kFinish, p);
      break;
    case TraceEventKind::kStopEating:
      ++meals_done_[pi];
      if (cfg_.meals < 0 || meals_done_[pi] < cfg_.meals) {
        schedule_choice(Role::kRehungry, p);
      }
      break;
    default:
      break;
  }
}

std::string DinnerLivenessWorld::check() {
  std::uint64_t lemma11 = 0;
  for (auto* d : diners_) lemma11 += d->lemma11_violations();
  if (lemma11 > 0) return "Lemma 1.1 violated (request reached a non-holder)";
  const std::size_t n = graph_.size();
  for (std::size_t a = 0; a < n; ++a) {
    const auto pa = static_cast<ProcessId>(a);
    for (ProcessId b : graph_.neighbors(pa)) {
      if (b < pa) continue;  // each edge once
      auto* da = diners_[a];
      auto* db = diners_[static_cast<std::size_t>(b)];
      if (da->holds_fork(b) && db->holds_fork(pa)) return "fork duplicated";
      if (da->holds_token(b) && db->holds_token(pa)) return "token duplicated";
      if (da->eating() && db->eating() && !sim_.crashed(pa) && !sim_.crashed(b)) {
        return "live neighbors eating simultaneously with a truthful oracle";
      }
    }
  }
  if (cfg_.check_overtakes) {
    for (std::size_t w = 0; w < n; ++w) {
      for (std::size_t e = 0; e < n; ++e) {
        if (overtakes_[w * n + e] > cfg_.overtake_bound) {
          return "bounded waiting violated: process " + std::to_string(e) + " overtook hungry " +
                 std::to_string(w) + " " + std::to_string(overtakes_[w * n + e]) +
                 " times (bound " + std::to_string(cfg_.overtake_bound) + ")";
        }
      }
    }
  }
  return "";
}

bool DinnerLivenessWorld::done() {
  if (cfg_.meals < 0) return false;
  for (std::size_t p = 0; p < graph_.size(); ++p) {
    if (sim_.crashed(static_cast<ProcessId>(p))) continue;
    if (meals_done_[p] < cfg_.meals || !diners_[p]->thinking()) return false;
  }
  return true;
}

void DinnerLivenessWorld::state_key(std::vector<std::uint64_t>& out) const {
  const std::size_t n = graph_.size();
  for (std::size_t p = 0; p < n; ++p) {
    const auto* d = diners_[p];
    std::uint64_t word = static_cast<std::uint64_t>(d->state());
    word |= static_cast<std::uint64_t>(d->inside_doorway()) << 2;
    if (cfg_.meals >= 0) {
      // Finite-meal worlds put the (capped) meal counter in the key;
      // infinite-meal worlds leave it out so the graph closes into cycles.
      word |= static_cast<std::uint64_t>(std::min(meals_done_[p], cfg_.meals)) << 3;
    }
    out.push_back(word);
    std::uint64_t slots = 0;
    int shift = 0;
    for (ProcessId q : graph_.neighbors(static_cast<ProcessId>(p))) {
      std::uint64_t s = static_cast<std::uint64_t>(d->holds_fork(q));
      s |= static_cast<std::uint64_t>(d->holds_token(q)) << 1;
      s |= static_cast<std::uint64_t>(d->has_pending_ping(q)) << 2;
      s |= static_cast<std::uint64_t>(d->has_ack_from(q)) << 3;
      s |= static_cast<std::uint64_t>(d->has_deferred_ping_from(q)) << 4;
      s |= static_cast<std::uint64_t>(std::min(d->acks_granted_to(q), 7)) << 5;
      slots |= s << shift;
      shift += 8;
      assert(shift <= 64 && "degree too high for one packed word");
    }
    out.push_back(slots);
  }
  if (cfg_.check_overtakes) {
    for (std::size_t w = 0; w < n; ++w) {
      std::uint64_t word = 0;
      for (std::size_t e = 0; e < n; ++e) {
        word |= static_cast<std::uint64_t>(overtakes_[w * n + e] & 0xF) << (4 * e);
      }
      out.push_back(word);
    }
  }
}

std::uint64_t DinnerLivenessWorld::hungry_mask() const {
  std::uint64_t mask = 0;
  for (std::size_t p = 0; p < graph_.size(); ++p) {
    if (!sim_.crashed(static_cast<ProcessId>(p)) && diners_[p]->hungry()) {
      mask |= 1ULL << p;
    }
  }
  return mask;
}

std::uint64_t DinnerLivenessWorld::event_fingerprint(const PendingEvent& ev) const {
  if (ev.kind == PendingEvent::Kind::kTimer) {
    // The only timers in this world are the per-diner pump timers (no fd
    // module is hosted), so the owner identifies the timer.
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.owner));
  }
  const auto& [role, p] = scheduled_roles_.at(ev.id);  // throws on unknown: fail loud
  return (static_cast<std::uint64_t>(role) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
}

std::vector<Time> DinnerLivenessWorld::crash_times() const {
  std::vector<Time> ct(graph_.size(), -1);
  for (const auto& ev : trace_.events()) {
    if (ev.kind == TraceEventKind::kCrashed) ct[static_cast<std::size_t>(ev.process)] = ev.at;
  }
  return ct;
}

ekbd::mc::LivenessWorldFactory make_dinner_liveness_factory(LivenessConfig cfg) {
  return [cfg] { return std::make_unique<DinnerLivenessWorld>(cfg); };
}

// ----------------------------------------------------- drinking world --

DrinkingEdgeLivenessWorld::DrinkingEdgeLivenessWorld()
    : sim_(1, ekbd::sim::make_fixed_delay(1), ExecMode::kControlled) {
  hi_ = sim_.make_actor<DrinkingDiner>(std::vector<ProcessId>{1}, 1, std::vector<int>{0},
                                       never_);
  lo_ = sim_.make_actor<DrinkingDiner>(std::vector<ProcessId>{0}, 0, std::vector<int>{1},
                                       never_);
  wire(hi_, 1);
  wire(lo_, 0);
  sim_.start();
  hi_->become_thirsty({1});
  lo_->become_thirsty({0});
}

void DrinkingEdgeLivenessWorld::wire(DrinkingDiner* d, ProcessId peer) {
  (void)peer;
  d->set_drink_callback([this](DrinkingDiner& dd, DrinkingDiner::DrinkEvent ev) {
    if (ev == DrinkingDiner::DrinkEvent::kStartDrinking) {
      schedule_choice(Role::kFinishDrink, dd.id());
    } else if (ev == DrinkingDiner::DrinkEvent::kStopDrinking) {
      schedule_choice(Role::kRethirst, dd.id());
    }
  });
}

void DrinkingEdgeLivenessWorld::schedule_choice(Role role, ProcessId p) {
  const std::uint64_t id = sim_.next_event_id();
  scheduled_roles_.emplace(id, std::make_pair(role, p));
  sim_.schedule(sim_.now(), [this, id, role, p] {
    scheduled_roles_.erase(id);
    DrinkingDiner* d = p == 0 ? hi_ : lo_;
    const ProcessId peer = p == 0 ? 1 : 0;
    switch (role) {
      case Role::kFinishDrink:
        if (d->drinking()) d->finish_drinking();
        break;
      case Role::kRethirst:
        if (d->thirsty() || d->drinking()) break;
        if (!d->thinking()) {
          // The catalyst dining session is still draining; retry. The
          // retry is a fresh choice with the same role, so the state key
          // is unchanged and the retry loop dedups into a self-loop.
          schedule_choice(Role::kRethirst, p);
          break;
        }
        d->become_thirsty({peer});
        break;
    }
  });
}

std::string DrinkingEdgeLivenessWorld::check() {
  if (hi_->holds_bottle(1) && lo_->holds_bottle(0)) return "bottle duplicated";
  if (hi_->bottle_conservation_violations() + lo_->bottle_conservation_violations() > 0) {
    return "bottle conservation violated";
  }
  if (hi_->drinking() && lo_->drinking()) {
    return "shared-bottle co-drinking with a truthful oracle";
  }
  if (hi_->holds_fork(1) && lo_->holds_fork(0)) return "fork duplicated";
  if (hi_->holds_token(1) && lo_->holds_token(0)) return "token duplicated";
  return "";
}

void DrinkingEdgeLivenessWorld::state_key(std::vector<std::uint64_t>& out) const {
  const DrinkingDiner* ds[2] = {hi_, lo_};
  const ProcessId peer[2] = {1, 0};
  for (int i = 0; i < 2; ++i) {
    const DrinkingDiner* d = ds[i];
    const ProcessId q = peer[i];
    std::uint64_t word = static_cast<std::uint64_t>(d->state());
    word |= static_cast<std::uint64_t>(d->inside_doorway()) << 2;
    word |= static_cast<std::uint64_t>(d->thirsty()) << 3;
    word |= static_cast<std::uint64_t>(d->drinking()) << 4;
    word |= static_cast<std::uint64_t>(!d->needed().empty()) << 5;
    word |= static_cast<std::uint64_t>(d->holds_bottle(q)) << 6;
    word |= static_cast<std::uint64_t>(d->holds_bottle_token(q)) << 7;
    word |= static_cast<std::uint64_t>(d->holds_fork(q)) << 8;
    word |= static_cast<std::uint64_t>(d->holds_token(q)) << 9;
    word |= static_cast<std::uint64_t>(d->has_pending_ping(q)) << 10;
    word |= static_cast<std::uint64_t>(d->has_ack_from(q)) << 11;
    word |= static_cast<std::uint64_t>(d->has_deferred_ping_from(q)) << 12;
    word |= static_cast<std::uint64_t>(std::min(d->acks_granted_to(q), 7)) << 13;
    out.push_back(word);
  }
}

std::uint64_t DrinkingEdgeLivenessWorld::hungry_mask() const {
  std::uint64_t mask = 0;
  if (hi_->thirsty() && !hi_->drinking()) mask |= 1ULL << 0;
  if (lo_->thirsty() && !lo_->drinking()) mask |= 1ULL << 1;
  return mask;
}

std::uint64_t DrinkingEdgeLivenessWorld::event_fingerprint(const PendingEvent& ev) const {
  if (ev.kind == PendingEvent::Kind::kTimer) {
    // Pump and thirst timers of the same owner collide here, which is
    // fine for this crash-free world: it is explored message-driven
    // (include_timers = false), so timers never become edge labels, and
    // in the state key the collision is disambiguated by the
    // thirsty/hungry bits that determine which timers are armed.
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.owner));
  }
  const auto& [role, p] = scheduled_roles_.at(ev.id);
  return (static_cast<std::uint64_t>(role) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
}

ekbd::mc::LivenessWorldFactory make_drinking_edge_liveness_factory() {
  return [] { return std::make_unique<DrinkingEdgeLivenessWorld>(); };
}

}  // namespace ekbd::scenario
