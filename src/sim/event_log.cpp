#include "sim/event_log.hpp"

#include <cstdio>

#if defined(__GNUG__)
#include <cxxabi.h>

#include <cstdlib>
#include <memory>
#endif

namespace ekbd::sim {

namespace {

std::string demangle(const char* name) {
#if defined(__GNUG__)
  int status = 0;
  std::unique_ptr<char, void (*)(void*)> demangled(
      abi::__cxa_demangle(name, nullptr, nullptr, &status), std::free);
  if (status == 0 && demangled) return demangled.get();
#endif
  return name;
}

}  // namespace

std::string LoggedEvent::payload_name() const {
  if (payload == std::type_index(typeid(void))) return "";
  std::string full = demangle(payload.name());
  const auto pos = full.rfind("::");
  return pos == std::string::npos ? full : full.substr(pos + 2);
}

std::string LoggedEvent::describe() const {
  char buf[128];
  switch (kind) {
    case Kind::kSend:
      std::snprintf(buf, sizeof(buf), "t=%lld send    p%d -> p%d  %s",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kDeliver:
      std::snprintf(buf, sizeof(buf), "t=%lld deliver p%d -> p%d  %s",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kDrop:
      std::snprintf(buf, sizeof(buf), "t=%lld drop    p%d -> p%d  %s (recipient dead)",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kTimer:
      std::snprintf(buf, sizeof(buf), "t=%lld timer   p%d", static_cast<long long>(at), from);
      break;
    case Kind::kCrash:
      std::snprintf(buf, sizeof(buf), "t=%lld CRASH   p%d", static_cast<long long>(at), from);
      break;
    case Kind::kLoss:
      std::snprintf(buf, sizeof(buf), "t=%lld LOSS    p%d -> p%d  %s (link fault)",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kDuplicate:
      std::snprintf(buf, sizeof(buf), "t=%lld dup     p%d -> p%d  %s (adversary copy)",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kPartitionLoss:
      std::snprintf(buf, sizeof(buf), "t=%lld CUT     p%d -> p%d  %s (partitioned)",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
  }
  return buf;
}

}  // namespace ekbd::sim
