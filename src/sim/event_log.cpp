#include "sim/event_log.hpp"

#include <cstdio>

namespace ekbd::sim {

std::string LoggedEvent::describe() const {
  char buf[128];
  switch (kind) {
    case Kind::kSend:
      std::snprintf(buf, sizeof(buf), "t=%lld send    p%d -> p%d  %s",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kDeliver:
      std::snprintf(buf, sizeof(buf), "t=%lld deliver p%d -> p%d  %s",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kDrop:
      std::snprintf(buf, sizeof(buf), "t=%lld drop    p%d -> p%d  %s (recipient dead)",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kTimer:
      std::snprintf(buf, sizeof(buf), "t=%lld timer   p%d", static_cast<long long>(at), from);
      break;
    case Kind::kCrash:
      std::snprintf(buf, sizeof(buf), "t=%lld CRASH   p%d", static_cast<long long>(at), from);
      break;
    case Kind::kLoss:
      std::snprintf(buf, sizeof(buf), "t=%lld LOSS    p%d -> p%d  %s (link fault)",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kDuplicate:
      std::snprintf(buf, sizeof(buf), "t=%lld dup     p%d -> p%d  %s (adversary copy)",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kPartitionLoss:
      std::snprintf(buf, sizeof(buf), "t=%lld CUT     p%d -> p%d  %s (partitioned)",
                    static_cast<long long>(at), from, to, payload_name().c_str());
      break;
    case Kind::kRecover:
      std::snprintf(buf, sizeof(buf), "t=%lld RECOVER p%d", static_cast<long long>(at),
                    from);
      break;
  }
  return buf;
}

std::string EventLog::describe() const {
  char buf[96];
  if (cap_ == 0) {
    std::snprintf(buf, sizeof(buf), "event log: %zu events (unbounded)", events_.size());
  } else {
    std::snprintf(buf, sizeof(buf), "event log: %zu events (cap %zu, %llu dropped)",
                  events_.size(), cap_, static_cast<unsigned long long>(dropped_));
  }
  return buf;
}

}  // namespace ekbd::sim
