#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ekbd::sim {

// -------------------------------------------------- TransportIface glue --

void TransportIface::bind(Actor& actor, TransportIface* ctx, ProcessId id) {
  actor.ctx_ = ctx;
  actor.id_ = id;
}

// ---------------------------------------------------------------- Actor --

void Actor::send(ProcessId to, const Payload& payload, MsgLayer layer) {
  assert(ctx_ != nullptr && "actor not registered with an engine");
  ctx_->send(id_, to, payload, layer);
}

TimerId Actor::set_timer(Time delay) { return ctx_->set_timer(id_, delay); }

void Actor::cancel_timer(TimerId id) { ctx_->cancel_timer(id_, id); }

Time Actor::now() const { return ctx_->now(); }

Rng& Actor::rng() { return ctx_->actor_rng(id_); }

// ------------------------------------------------------------ Simulator --

std::string PendingEvent::describe() const {
  switch (kind) {
    case Kind::kMessage:
      return "msg p" + std::to_string(from) + "->p" + std::to_string(to);
    case Kind::kTimer:
      return "timer@p" + std::to_string(owner);
    case Kind::kScheduled:
      return "scheduled";
  }
  return "?";
}

Simulator::Simulator(std::uint64_t seed, std::unique_ptr<DelayModel> delays, ExecMode mode)
    : seed_(seed),
      rng_(seed),
      delays_(delays ? std::move(delays) : make_uniform_delay(1, 10)),
      mode_(mode) {}

ProcessId Simulator::add_actor(std::unique_ptr<Actor> actor) {
  assert(!started_ && "register all actors before start()");
  auto id = static_cast<ProcessId>(actors_.size());
  bind(*actor, this, id);
  actors_.push_back(std::move(actor));
  actor_rngs_.push_back(nullptr);
  crash_times_.push_back(-1);
  last_recover_.push_back(-1);
  return id;
}

void Simulator::start() {
  if (started_) return;
  started_ = true;
  for (auto& a : actors_) {
    if (!crashed(a->id())) a->on_start();
  }
}

Rng& Simulator::actor_rng(ProcessId p) {
  auto idx = static_cast<std::size_t>(p);
  if (!actor_rngs_[idx]) {
    // Stable derivation: depends only on the master seed and the id, not on
    // how many draws other components made before first use (in particular
    // it must NOT consume the master stream — that would make the actor's
    // stream, and everything drawn from the master afterwards, depend on
    // which actor asked first).
    actor_rngs_[idx] =
        std::make_unique<Rng>(Rng(seed_).fork(static_cast<std::uint64_t>(p) + 1));
  }
  return *actor_rngs_[idx];
}

std::uint32_t Simulator::acquire_slot() {
  static_assert(std::is_trivially_copyable_v<Event>,
                "Event must stay a flat record (slab stores are memcpys)");
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (slab_.size() >= kMaxSlots) {
    // The packed heap key has 21 slot bits; ~2M *concurrently pending*
    // events means the workload is broken — fail loudly, never mis-order.
    std::fprintf(stderr, "sim: more than %llu concurrently pending events\n",
                 static_cast<unsigned long long>(kMaxSlots));
    std::abort();
  }
  const auto slot = static_cast<std::uint32_t>(slab_.size());
  slab_.emplace_back();
  return slot;
}

std::uint64_t Simulator::commit_event(std::uint32_t slot) {
  Event& ev = slab_[slot];
  assert(ev.at >= now_ && "cannot schedule into the past");
  ev.seq = next_event_seq_++;
  heap_.push_back(HeapEntry{ev.at, ev.seq * kMaxSlots + slot});
  heap_sift_up(heap_.size() - 1);
  if (metrics_.queue_depth != nullptr) {
    metrics_.queue_depth->set(static_cast<std::int64_t>(heap_.size()));
  }
  if (metrics_.slab_live != nullptr) {
    metrics_.slab_live->set(static_cast<std::int64_t>(slab_.size() - free_slots_.size()));
  }
  return ev.seq;
}

void Simulator::heap_sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!event_later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (event_later(heap_[best], heap_[c])) best = c;
    }
    if (!event_later(e, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::heap_pop_front() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0);
}

std::uint64_t Simulator::push_event(const Event& ev) {
  const std::uint32_t slot = acquire_slot();
  slab_[slot] = ev;
  return commit_event(slot);
}

Simulator::ControlledEvent& Simulator::push_controlled(PendingEvent::Kind kind,
                                                       ProcessId from, ProcessId to,
                                                       ProcessId owner,
                                                       std::uint64_t channel_rank) {
  const std::uint64_t id = next_event_seq_++;
  ControlledEvent& ev = controlled_[id];
  ev.info.id = id;
  ev.info.kind = kind;
  ev.info.from = from;
  ev.info.to = to;
  ev.info.owner = owner;
  ev.info.channel_rank = channel_rank;
  if (kind == PendingEvent::Kind::kMessage) {
    channel_fifo_[PendingEvent::channel_key(from, to)].push_back(id);
  }
  return ev;
}

void Simulator::schedule(Time at, std::function<void()> fn) {
  if (mode_ == ExecMode::kControlled) {
    push_controlled(PendingEvent::Kind::kScheduled, kNoProcess, kNoProcess, kNoProcess, 0)
        .fn = std::move(fn);
    return;
  }
  Event ev;
  ev.at = at;
  ev.kind = Event::Kind::kCallback;
  const std::uint64_t seq = push_event(ev);
  callbacks_[seq] = std::move(fn);
}

void Simulator::send(ProcessId from, ProcessId to, const Payload& payload,
                     MsgLayer layer) {
  assert(to >= 0 && static_cast<std::size_t>(to) < actors_.size());
  if (crashed(from)) return;  // a dead process sends nothing
  if (transport_ != nullptr && mode_ == ExecMode::kTimed && transport_->covers(layer)) {
    transport_->logical_send(from, to, payload, layer);
    return;
  }
  raw_send(from, to, payload, layer);
}

void Simulator::raw_send(ProcessId from, ProcessId to, const Payload& payload,
                         MsgLayer layer) {
  assert(to >= 0 && static_cast<std::size_t>(to) < actors_.size());
  if (crashed(from)) return;  // a dead process sends nothing
  if (mode_ == ExecMode::kControlled) {
    Message m;
    m.from = from;
    m.to = to;
    m.layer = layer;
    m.payload = payload;
    // Delay is nondeterministic — the driver chooses the arrival order.
    network_.stamp(m, now_, 1, crashed(to));
    if (metrics_.sends != nullptr) metrics_.sends->inc();
    if (tracing()) {
      emit(LoggedEvent{now_, LoggedEvent::Kind::kSend, from, to, layer, m.seq,
                       payload_tag(m.payload)});
    }
    const std::uint64_t rank = channel_send_rank_[PendingEvent::channel_key(from, to)]++;
    push_controlled(PendingEvent::Kind::kMessage, from, to, kNoProcess, rank).msg = m;
    return;
  }
  const bool legacy_dup = dup_prob_ > 0.0 && rng_.chance(dup_prob_);
  bool reorder = reorder_prob_ > 0.0 && rng_.chance(reorder_prob_);
  bool drop = false;
  bool partitioned = false;
  bool adversary_dup = false;
  if (adversary_ != nullptr) {
    const FaultDecision d = adversary_->on_send(from, to, layer, now_);
    drop = d.drop;
    partitioned = d.partitioned;
    adversary_dup = !drop && d.duplicate;
    reorder = reorder || d.reorder;
  }
  const bool duplicate = adversary_dup || (!drop && legacy_dup);
  const Time latency = delays_->sample(from, to, now_, rng_);
  // Build the delivery record directly in its slab slot — no stack
  // Message, no stack Event, no copies. Slots are recycled, so every
  // field a later reader touches is (re)assigned here.
  const std::uint32_t slot = acquire_slot();
  {
    Event& ev = slab_[slot];
    ev.msg.from = from;
    ev.msg.to = to;
    ev.msg.layer = layer;
    ev.msg.payload = payload;
  }
  if (duplicate) {
    // Stamped (so it draws the earlier network seq), logged and committed
    // before the original — exactly the order the copy-based code used.
    const std::uint32_t dup_slot = acquire_slot();  // may move the slab
    Event& dup_ev = slab_[dup_slot];
    dup_ev.msg = slab_[slot].msg;  // independent delay for the ghost
    network_.stamp(dup_ev.msg, now_, delays_->sample(from, to, now_, rng_), crashed(to),
                   /*fifo=*/false);
    if (adversary_dup && tracing()) {
      emit(LoggedEvent{now_, LoggedEvent::Kind::kDuplicate, from, to, layer,
                       dup_ev.msg.seq, payload_tag(dup_ev.msg.payload)});
    }
    dup_ev.at = dup_ev.msg.deliver_at;
    dup_ev.kind = Event::Kind::kDeliver;
    dup_ev.partitioned = false;
    commit_event(dup_slot);
  }
  Event& ev = slab_[slot];
  network_.stamp(ev.msg, now_, latency, crashed(to), /*fifo=*/!reorder);
  if (metrics_.sends != nullptr) metrics_.sends->inc(duplicate ? 2 : 1);
  if (tracing()) {
    emit(LoggedEvent{now_, LoggedEvent::Kind::kSend, from, to, layer,
                     ev.msg.seq, payload_tag(ev.msg.payload)});
  }
  ev.at = ev.msg.deliver_at;
  if (drop) {
    // Lost in flight: the message occupies the channel until its delivery
    // time, then the books settle and the loss is logged — never handed to
    // the recipient. Same settlement discipline as drop-at-crashed-target.
    ev.kind = Event::Kind::kDropSettle;
    ev.partitioned = partitioned;
  } else {
    ev.kind = Event::Kind::kDeliver;
    ev.partitioned = false;  // slots are recycled: clear stale state
  }
  commit_event(slot);
}

void Simulator::deliver(const Message& m) {
  network_.delivered(m);
  if (crashed(m.to)) {
    if (tracing()) {
      emit(LoggedEvent{now_, LoggedEvent::Kind::kDrop, m.from, m.to, m.layer,
                       m.seq, payload_tag(m.payload)});
    }
    return;  // dropped on the floor of a dead process
  }
  if (m.sent_at < last_recover_[static_cast<std::size_t>(m.to)]) {
    // Addressed to a previous incarnation: recovery fences every inbound
    // channel, so traffic from before the recovery instant is lost just
    // like traffic delivered mid-crash.
    if (tracing()) {
      emit(LoggedEvent{now_, LoggedEvent::Kind::kDrop, m.from, m.to, m.layer,
                       m.seq, payload_tag(m.payload)});
    }
    return;
  }
  if (tracing()) {
    emit(LoggedEvent{now_, LoggedEvent::Kind::kDeliver, m.from, m.to, m.layer,
                     m.seq, payload_tag(m.payload)});
  }
  if (transport_ != nullptr && transport_->on_physical_deliver(m)) return;
  actors_[static_cast<std::size_t>(m.to)]->on_message(m);
}

void Simulator::deliver_logical(ProcessId from, ProcessId to, const Payload& payload,
                                MsgLayer layer, std::uint64_t logical_seq, Time sent_at) {
  network_.logical_delivered(from, to, layer);
  if (crashed(to) || sent_at < last_recover_[static_cast<std::size_t>(to)]) {
    if (tracing()) {
      emit(LoggedEvent{now_, LoggedEvent::Kind::kDrop, from, to, layer,
                       logical_seq, payload_tag(payload)});
    }
    return;
  }
  if (tracing()) {
    emit(LoggedEvent{now_, LoggedEvent::Kind::kDeliver, from, to, layer,
                     logical_seq, payload_tag(payload)});
  }
  Message m;
  m.from = from;
  m.to = to;
  m.layer = layer;
  m.seq = logical_seq;
  m.sent_at = sent_at;
  m.deliver_at = now_;
  m.payload = payload;
  actors_[static_cast<std::size_t>(m.to)]->on_message(m);
}

void Simulator::fire_timer(ProcessId owner, TimerId id) {
  if (active_timers_.erase(id) == 0) return;  // cancelled (controlled mode)
  if (crashed(owner)) return;
  if (tracing()) {
    emit(LoggedEvent{now_, LoggedEvent::Kind::kTimer, owner, kNoProcess,
                     MsgLayer::kOther, 0, kNoPayloadTag});
  }
  actors_[static_cast<std::size_t>(owner)]->on_timer(id);
}

TimerId Simulator::set_timer(ProcessId owner, Time delay) {
  TimerId id = next_timer_id_++;
  active_timers_.insert(id);
  if (mode_ == ExecMode::kControlled) {
    // Kept as a pending (no-op if cancelled) choice on purpose: pruning
    // cancelled timers here would shrink the explored choice sets.
    push_controlled(PendingEvent::Kind::kTimer, kNoProcess, kNoProcess, owner, 0)
        .timer_id = id;
  } else {
    Event ev;
    ev.at = now_ + delay;
    ev.kind = Event::Kind::kTimer;
    ev.owner = owner;
    ev.timer_id = id;
    push_event(std::move(ev));
  }
  return id;
}

void Simulator::cancel_timer(TimerId id) { active_timers_.erase(id); }

void Simulator::crash(ProcessId p) {
  auto idx = static_cast<std::size_t>(p);
  if (crash_times_[idx] >= 0) return;
  crash_times_[idx] = now_;
  if (tracing()) {
    emit(LoggedEvent{now_, LoggedEvent::Kind::kCrash, p, kNoProcess,
                     MsgLayer::kOther, 0, kNoPayloadTag});
  }
  actors_[idx]->on_crash();
}

void Simulator::recover(ProcessId p) {
  assert(mode_ == ExecMode::kTimed && "recovery is a timed-mode feature");
  auto idx = static_cast<std::size_t>(p);
  if (crash_times_[idx] < 0) return;  // live: nothing to do
  // The dead incarnation's pending timers must never fire into the new one
  // (the Actor contract discards a crashed actor's timers). Crashes without
  // recovery get this for free from the crashed() check in fire_timer; here
  // the flag is about to clear, so cancel them explicitly.
  for (const HeapEntry& he : heap_) {
    const Event& ev = slab_[he.slot()];
    if (ev.kind == Event::Kind::kTimer && ev.owner == p) {
      active_timers_.erase(ev.timer_id);
    }
  }
  crash_times_[idx] = -1;
  last_recover_[idx] = now_;
  if (tracing()) {
    emit(LoggedEvent{now_, LoggedEvent::Kind::kRecover, p, kNoProcess,
                     MsgLayer::kOther, 0, kNoPayloadTag});
  }
  actors_[idx]->on_recover();
}

void Simulator::schedule_recovery(ProcessId p, Time at) {
  schedule(at, [this, p] { recover(p); });
}

void Simulator::schedule_crash(ProcessId p, Time at) {
  // Always on the timed heap (historical quirk, preserved: in controlled
  // mode the heap is never drained, so a scheduled crash never fires —
  // mc worlds crash processes via crash() from a scheduled choice).
  Event ev;
  ev.at = at;
  ev.kind = Event::Kind::kCrash;
  ev.owner = p;
  push_event(std::move(ev));
}

std::vector<ProcessId> Simulator::live_processes() const {
  std::vector<ProcessId> out;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (crash_times_[i] < 0) out.push_back(static_cast<ProcessId>(i));
  }
  return out;
}

bool Simulator::is_eligible(const ControlledEvent& ev) const {
  if (ev.info.kind != PendingEvent::Kind::kMessage) return true;
  // FIFO: only the oldest pending message per directed channel may arrive.
  const auto it = channel_fifo_.find(ev.info.channel());
  return it != channel_fifo_.end() && !it->second.empty() &&
         it->second.front() == ev.info.id;
}

std::vector<PendingEvent> Simulator::eligible_events() const {
  assert(mode_ == ExecMode::kControlled);
  std::vector<PendingEvent> out;
  for (const auto& [id, ev] : controlled_) {
    if (is_eligible(ev)) out.push_back(ev.info);
  }
  return out;  // std::map iteration: sorted by id already
}

void Simulator::controlled_state_key(std::vector<std::uint64_t>& out) const {
  assert(mode_ == ExecMode::kControlled);
  assert(actors_.size() <= 64 && "controlled worlds are small");
  std::uint64_t crash_mask = 0;
  for (std::size_t i = 0; i < crash_times_.size(); ++i) {
    if (crash_times_[i] >= 0) crash_mask |= 1ULL << i;
  }
  out.push_back(crash_mask);

  // Directed channels in key order, each as (key, len, [tag, bits]...):
  // the in-flight payload *sequences* are state; the event ids carrying
  // them are not.
  std::vector<std::uint64_t> chans;
  chans.reserve(channel_fifo_.size());
  for (const auto& [key, fifo] : channel_fifo_) {
    if (!fifo.empty()) chans.push_back(key);
  }
  std::sort(chans.begin(), chans.end());
  for (std::uint64_t key : chans) {
    const auto& fifo = channel_fifo_.at(key);
    out.push_back(key);
    out.push_back(fifo.size());
    for (std::uint64_t id : fifo) {
      std::uint8_t tag = 0;
      std::uint64_t bits = 0;
      const Payload& p = controlled_.at(id).msg.payload;
      if (!pack_payload(p, tag, bits)) {  // oversized: tag-only fingerprint
        tag = payload_tag(p);
        bits = 0;
      }
      out.push_back(tag);
      out.push_back(bits);
    }
  }

  // Pending timers per owner, (owner, live, cancelled) in owner order. A
  // cancelled timer is inert but still a pending no-op choice, so two
  // states with different cancelled counts have different out-degrees and
  // must not collapse.
  std::map<ProcessId, std::pair<std::uint64_t, std::uint64_t>> timers;
  std::uint64_t scheduled = 0;
  for (const auto& [id, ev] : controlled_) {
    if (ev.info.kind == PendingEvent::Kind::kScheduled) {
      ++scheduled;
    } else if (ev.info.kind == PendingEvent::Kind::kTimer) {
      auto& [live, cancelled] = timers[ev.info.owner];
      (active_timers_.count(ev.timer_id) != 0 ? live : cancelled) += 1;
    }
  }
  for (const auto& [owner, counts] : timers) {
    out.push_back(static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner)));
    out.push_back(counts.first);
    out.push_back(counts.second);
  }
  // Scheduled closures are opaque here; the count is state, their roles
  // are the world's to fingerprint (LivenessWorld::event_fingerprint).
  out.push_back(scheduled);
}

bool Simulator::execute_event(std::uint64_t id) {
  assert(mode_ == ExecMode::kControlled);
  start();
  auto it = controlled_.find(id);
  if (it == controlled_.end() || !is_eligible(it->second)) return false;
  ControlledEvent ev = std::move(it->second);
  controlled_.erase(it);
  if (ev.info.kind == PendingEvent::Kind::kMessage) {
    auto fifo = channel_fifo_.find(ev.info.channel());
    fifo->second.pop_front();  // eligibility guaranteed it was the front
    if (fifo->second.empty()) channel_fifo_.erase(fifo);
  }
  now_ += 1;
  ++events_processed_;
  if (metrics_.events != nullptr) metrics_.events->inc();
  switch (ev.info.kind) {
    case PendingEvent::Kind::kMessage:
      deliver(ev.msg);
      break;
    case PendingEvent::Kind::kTimer:
      fire_timer(ev.info.owner, ev.timer_id);
      break;
    case PendingEvent::Kind::kScheduled:
      ev.fn();
      break;
  }
  return true;
}

void Simulator::dispatch(Event&& ev) {
  switch (ev.kind) {
    case Event::Kind::kDeliver:
      deliver(ev.msg);
      break;
    case Event::Kind::kTimer:
      fire_timer(ev.owner, ev.timer_id);
      break;
    case Event::Kind::kDropSettle:
      network_.delivered(ev.msg);
      if (tracing()) {
        emit(LoggedEvent{
            now_,
            ev.partitioned ? LoggedEvent::Kind::kPartitionLoss : LoggedEvent::Kind::kLoss,
            ev.msg.from, ev.msg.to, ev.msg.layer, ev.msg.seq, payload_tag(ev.msg.payload)});
      }
      break;
    case Event::Kind::kCrash:
      crash(ev.owner);
      break;
    case Event::Kind::kCallback: {
      auto it = callbacks_.find(ev.seq);
      assert(it != callbacks_.end());
      // Detach before invoking: the closure may schedule more events.
      std::function<void()> fn = std::move(it->second);
      callbacks_.erase(it);
      fn();
      break;
    }
  }
}

void Simulator::prune_cancelled() {
  // A cancelled timer's record stays in the heap (removing from the middle
  // of a binary heap is O(n)); it is discarded when it surfaces, without
  // advancing time or counting as a processed event.
  while (!heap_.empty()) {
    // Touching the front's slab line here is free: a live front is read
    // from the same line by pop_and_dispatch() immediately after.
    const std::uint32_t slot = heap_.front().slot();
    const Event& front = slab_[slot];
    if (front.kind != Event::Kind::kTimer) break;
    if (active_timers_.find(front.timer_id) != active_timers_.end()) break;
    free_slots_.push_back(slot);
    heap_pop_front();
  }
}

void Simulator::pop_and_dispatch() {
  const HeapEntry entry = heap_.front();
  const std::uint32_t slot = entry.slot();
  heap_pop_front();
  assert(entry.at >= now_);
  now_ = entry.at;
  ++events_processed_;
  if (metrics_.events != nullptr) metrics_.events->inc();
  if (metrics_.queue_depth != nullptr) {
    metrics_.queue_depth->set(static_cast<std::int64_t>(heap_.size()));
  }
  // The handler may push events, which can recycle (or reallocate) the
  // slot being read — so copy out before dispatching. Deliveries (the
  // overwhelming bulk) copy only the Message, not the whole record.
  if (slab_[slot].kind == Event::Kind::kDeliver) {
    const Message m = slab_[slot].msg;
    free_slots_.push_back(slot);
    deliver(m);
    return;
  }
  Event ev = slab_[slot];
  free_slots_.push_back(slot);
  dispatch(std::move(ev));
}

bool Simulator::step() {
  assert(mode_ == ExecMode::kTimed && "use execute_event in controlled mode");
  prune_cancelled();
  if (heap_.empty()) return false;
  pop_and_dispatch();
  return true;
}

void Simulator::run_until(Time t) {
  assert(mode_ == ExecMode::kTimed && "drive controlled mode via execute_event");
  start();
  for (;;) {
    // Prune before the horizon check: a cancelled record at the front must
    // not be mistaken for a runnable event, nor hide one behind it.
    prune_cancelled();
    if (heap_.empty() || heap_.front().at > t) break;
    pop_and_dispatch();
  }
  if (t > now_) now_ = t;
}

}  // namespace ekbd::sim
