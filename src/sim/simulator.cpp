#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace ekbd::sim {

// ---------------------------------------------------------------- Actor --

void Actor::send(ProcessId to, std::any payload, MsgLayer layer) {
  assert(sim_ != nullptr && "actor not registered with a simulator");
  sim_->send(id_, to, std::move(payload), layer);
}

TimerId Actor::set_timer(Time delay) { return sim_->set_timer(id_, delay); }

void Actor::cancel_timer(TimerId id) { sim_->cancel_timer(id); }

Time Actor::now() const { return sim_->now(); }

Rng& Actor::rng() { return sim_->actor_rng(id_); }

// ------------------------------------------------------------ Simulator --

std::string PendingEvent::describe() const {
  switch (kind) {
    case Kind::kMessage:
      return "msg p" + std::to_string(from) + "->p" + std::to_string(to);
    case Kind::kTimer:
      return "timer@p" + std::to_string(owner);
    case Kind::kScheduled:
      return "scheduled";
  }
  return "?";
}

Simulator::Simulator(std::uint64_t seed, std::unique_ptr<DelayModel> delays, ExecMode mode)
    : rng_(seed),
      delays_(delays ? std::move(delays) : make_uniform_delay(1, 10)),
      mode_(mode) {}

ProcessId Simulator::add_actor(std::unique_ptr<Actor> actor) {
  assert(!started_ && "register all actors before start()");
  auto id = static_cast<ProcessId>(actors_.size());
  actor->sim_ = this;
  actor->id_ = id;
  actors_.push_back(std::move(actor));
  actor_rngs_.push_back(nullptr);
  crash_times_.push_back(-1);
  return id;
}

void Simulator::start() {
  if (started_) return;
  started_ = true;
  for (auto& a : actors_) {
    if (!crashed(a->id())) a->on_start();
  }
}

Rng& Simulator::actor_rng(ProcessId p) {
  auto idx = static_cast<std::size_t>(p);
  if (!actor_rngs_[idx]) {
    // Stable derivation: depends only on the master seed and the id, not on
    // how many draws other components made before first use.
    actor_rngs_[idx] = std::make_unique<Rng>(
        Rng(0xA5A5A5A5ULL ^ static_cast<std::uint64_t>(p)).fork(0).u64() ^ rng_.u64());
  }
  return *actor_rngs_[idx];
}

void Simulator::push_event(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  queue_.push(Event{at, next_event_seq_++, std::move(fn)});
}

void Simulator::push_controlled(PendingEvent::Kind kind, ProcessId from, ProcessId to,
                                ProcessId owner, std::uint64_t channel_rank,
                                std::function<void()> fn) {
  ControlledEvent ev;
  ev.info.id = next_event_seq_++;
  ev.info.kind = kind;
  ev.info.from = from;
  ev.info.to = to;
  ev.info.owner = owner;
  ev.info.channel_rank = channel_rank;
  ev.fn = std::move(fn);
  controlled_.emplace(ev.info.id, std::move(ev));
}

void Simulator::schedule(Time at, std::function<void()> fn) {
  if (mode_ == ExecMode::kControlled) {
    push_controlled(PendingEvent::Kind::kScheduled, kNoProcess, kNoProcess, kNoProcess, 0,
                    std::move(fn));
    return;
  }
  push_event(at, std::move(fn));
}

void Simulator::send(ProcessId from, ProcessId to, std::any payload, MsgLayer layer) {
  assert(to >= 0 && static_cast<std::size_t>(to) < actors_.size());
  if (crashed(from)) return;  // a dead process sends nothing
  if (transport_ != nullptr && mode_ == ExecMode::kTimed && transport_->covers(layer)) {
    transport_->logical_send(from, to, std::move(payload), layer);
    return;
  }
  raw_send(from, to, std::move(payload), layer);
}

void Simulator::raw_send(ProcessId from, ProcessId to, std::any payload, MsgLayer layer) {
  assert(to >= 0 && static_cast<std::size_t>(to) < actors_.size());
  if (crashed(from)) return;  // a dead process sends nothing
  Message m;
  m.from = from;
  m.to = to;
  m.layer = layer;
  m.payload = std::move(payload);
  if (mode_ == ExecMode::kControlled) {
    // Delay is nondeterministic — the driver chooses the arrival order.
    network_.stamp(m, now_, 1, crashed(to));
    if (event_log_ != nullptr) {
      event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kSend, from, to, layer, m.seq,
                                     std::type_index(m.payload.type())});
    }
    const std::uint64_t rank = channel_send_rank_[PendingEvent::channel_key(from, to)]++;
    push_controlled(PendingEvent::Kind::kMessage, from, to, kNoProcess, rank,
                    [this, m = std::move(m)]() mutable { deliver(std::move(m)); });
    return;
  }
  const bool legacy_dup = dup_prob_ > 0.0 && rng_.chance(dup_prob_);
  bool reorder = reorder_prob_ > 0.0 && rng_.chance(reorder_prob_);
  bool drop = false;
  bool partitioned = false;
  bool adversary_dup = false;
  if (adversary_ != nullptr) {
    const FaultDecision d = adversary_->on_send(from, to, layer, now_);
    drop = d.drop;
    partitioned = d.partitioned;
    adversary_dup = !drop && d.duplicate;
    reorder = reorder || d.reorder;
  }
  const bool duplicate = adversary_dup || (!drop && legacy_dup);
  Time latency = delays_->sample(from, to, now_, rng_);
  if (duplicate) {
    Message copy = m;  // independent delay for the ghost
    network_.stamp(copy, now_, delays_->sample(from, to, now_, rng_), crashed(to),
                   /*fifo=*/false);
    if (adversary_dup && event_log_ != nullptr) {
      event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kDuplicate, from, to, layer,
                                     copy.seq, std::type_index(copy.payload.type())});
    }
    push_event(copy.deliver_at, [this, copy = std::move(copy)]() mutable {
      deliver(std::move(copy));
    });
  }
  network_.stamp(m, now_, latency, crashed(to), /*fifo=*/!reorder);
  if (event_log_ != nullptr) {
    event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kSend, from, to, layer, m.seq,
                                   std::type_index(m.payload.type())});
  }
  Time at = m.deliver_at;
  if (drop) {
    // Lost in flight: the message occupies the channel until its delivery
    // time, then the books settle and the loss is logged — never handed to
    // the recipient. Same settlement discipline as drop-at-crashed-target.
    push_event(at, [this, m = std::move(m), partitioned]() mutable {
      network_.delivered(m);
      if (event_log_ != nullptr) {
        event_log_->append(LoggedEvent{
            now_,
            partitioned ? LoggedEvent::Kind::kPartitionLoss : LoggedEvent::Kind::kLoss,
            m.from, m.to, m.layer, m.seq, std::type_index(m.payload.type())});
      }
    });
    return;
  }
  push_event(at, [this, m = std::move(m)]() mutable { deliver(std::move(m)); });
}

void Simulator::deliver(Message m) {
  network_.delivered(m);
  if (crashed(m.to)) {
    if (event_log_ != nullptr) {
      event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kDrop, m.from, m.to, m.layer,
                                     m.seq, std::type_index(m.payload.type())});
    }
    return;  // dropped on the floor of a dead process
  }
  if (event_log_ != nullptr) {
    event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kDeliver, m.from, m.to, m.layer,
                                   m.seq, std::type_index(m.payload.type())});
  }
  if (transport_ != nullptr && transport_->on_physical_deliver(m)) return;
  actors_[static_cast<std::size_t>(m.to)]->on_message(m);
}

void Simulator::deliver_logical(ProcessId from, ProcessId to, std::any payload,
                                MsgLayer layer, std::uint64_t logical_seq, Time sent_at) {
  network_.logical_delivered(from, to, layer);
  if (crashed(to)) {
    if (event_log_ != nullptr) {
      event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kDrop, from, to, layer,
                                     logical_seq, std::type_index(payload.type())});
    }
    return;
  }
  if (event_log_ != nullptr) {
    event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kDeliver, from, to, layer,
                                   logical_seq, std::type_index(payload.type())});
  }
  Message m;
  m.from = from;
  m.to = to;
  m.layer = layer;
  m.seq = logical_seq;
  m.sent_at = sent_at;
  m.deliver_at = now_;
  m.payload = std::move(payload);
  actors_[static_cast<std::size_t>(m.to)]->on_message(m);
}

TimerId Simulator::set_timer(ProcessId owner, Time delay) {
  TimerId id = next_timer_id_++;
  active_timers_.insert(id);
  auto fire = [this, owner, id] {
    if (active_timers_.erase(id) == 0) return;  // cancelled
    if (crashed(owner)) return;
    if (event_log_ != nullptr) {
      event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kTimer, owner, kNoProcess,
                                     MsgLayer::kOther, 0, std::type_index(typeid(void))});
    }
    actors_[static_cast<std::size_t>(owner)]->on_timer(id);
  };
  if (mode_ == ExecMode::kControlled) {
    push_controlled(PendingEvent::Kind::kTimer, kNoProcess, kNoProcess, owner, 0,
                    std::move(fire));
  } else {
    push_event(now_ + delay, std::move(fire));
  }
  return id;
}

void Simulator::cancel_timer(TimerId id) { active_timers_.erase(id); }

void Simulator::crash(ProcessId p) {
  auto idx = static_cast<std::size_t>(p);
  if (crash_times_[idx] >= 0) return;
  crash_times_[idx] = now_;
  if (event_log_ != nullptr) {
    event_log_->append(LoggedEvent{now_, LoggedEvent::Kind::kCrash, p, kNoProcess,
                                   MsgLayer::kOther, 0, std::type_index(typeid(void))});
  }
  actors_[idx]->on_crash();
}

void Simulator::schedule_crash(ProcessId p, Time at) {
  push_event(at, [this, p] { crash(p); });
}

std::vector<ProcessId> Simulator::live_processes() const {
  std::vector<ProcessId> out;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (crash_times_[i] < 0) out.push_back(static_cast<ProcessId>(i));
  }
  return out;
}

bool Simulator::is_eligible(const ControlledEvent& ev) const {
  if (ev.info.kind != PendingEvent::Kind::kMessage) return true;
  // FIFO: only the oldest pending message per directed channel may arrive.
  for (const auto& [id, other] : controlled_) {
    if (other.info.kind == PendingEvent::Kind::kMessage && other.info.from == ev.info.from &&
        other.info.to == ev.info.to && other.info.channel_rank < ev.info.channel_rank) {
      return false;
    }
  }
  return true;
}

std::vector<PendingEvent> Simulator::eligible_events() const {
  assert(mode_ == ExecMode::kControlled);
  std::vector<PendingEvent> out;
  for (const auto& [id, ev] : controlled_) {
    if (is_eligible(ev)) out.push_back(ev.info);
  }
  return out;  // std::map iteration: sorted by id already
}

bool Simulator::execute_event(std::uint64_t id) {
  assert(mode_ == ExecMode::kControlled);
  start();
  auto it = controlled_.find(id);
  if (it == controlled_.end() || !is_eligible(it->second)) return false;
  auto fn = std::move(it->second.fn);
  controlled_.erase(it);
  now_ += 1;
  ++events_processed_;
  fn();
  return true;
}

bool Simulator::step() {
  assert(mode_ == ExecMode::kTimed && "use execute_event in controlled mode");
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied out, then popped.
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.at >= now_);
  now_ = ev.at;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::run_until(Time t) {
  assert(mode_ == ExecMode::kTimed && "drive controlled mode via execute_event");
  start();
  while (!queue_.empty() && queue_.top().at <= t) {
    step();
  }
  if (t > now_) now_ = t;
}

}  // namespace ekbd::sim
