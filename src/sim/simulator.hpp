/// \file simulator.hpp
/// Deterministic discrete-event simulator.
///
/// Executes a set of Actors over virtual time: a single priority queue of
/// events (message deliveries, timers, externally scheduled callbacks)
/// ordered by (time, sequence number). Given the same seed and the same
/// sequence of API calls, two runs are bit-identical — every experiment in
/// this repository is replayable from its parameters.
///
/// Crash faults follow the paper's model (Cristian-style crash): a crashed
/// process ceases execution without warning. Concretely, once `crash(p)`
/// takes effect no handler of `p` runs again; messages in flight *to* p
/// are silently dropped at delivery time; messages already sent *by* p are
/// still delivered (they left the process before the crash). As an
/// extension beyond the paper, `recover(p)` brings the process back at a
/// later instant (timed mode only): the dead incarnation's timers are
/// cancelled, inbound traffic sent before the recovery is dropped, and the
/// actor's `on_recover` runs a protocol-level rejoin.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/actor.hpp"
#include "sim/delay_model.hpp"
#include "sim/event_log.hpp"
#include "sim/message.hpp"
#include "sim/net_hooks.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/transport_iface.hpp"

namespace ekbd::sim {

/// Metric handles the simulator updates when instrumented (see
/// obs::attach_simulator_metrics). All null by default: a handle that is
/// not attached costs one branch at its update site and nothing else —
/// the same discipline as the event log, enforced by the E21 perf gate
/// and the hot-path allocation test.
struct SimMetrics {
  obs::Counter* events = nullptr;      ///< events dispatched
  obs::Counter* sends = nullptr;       ///< physical sends (raw_send)
  obs::Gauge* queue_depth = nullptr;   ///< timed event heap size
  obs::Gauge* slab_live = nullptr;     ///< live slab records (occupancy)
};

/// How the simulator orders events.
///
///  * kTimed: the normal mode — events fire in virtual-time order given by
///    the delay model; used by every experiment.
///  * kControlled: model-checking mode — pending events are exposed as an
///    explicit choice set and an external driver (mc::Explorer) picks which
///    fires next, subject only to per-channel FIFO. This is the literal
///    asynchronous model of the paper: any in-flight message may be the
///    next to arrive. Virtual time advances one tick per executed event.
enum class ExecMode { kTimed, kControlled };

/// Descriptor of one pending event in controlled mode.
struct PendingEvent {
  enum class Kind { kMessage, kTimer, kScheduled };
  std::uint64_t id = 0;
  Kind kind = Kind::kScheduled;
  ProcessId from = kNoProcess;  ///< messages: sender
  ProcessId to = kNoProcess;    ///< messages: recipient
  ProcessId owner = kNoProcess; ///< timers: owning process
  /// Messages: send order on the directed channel (from,to). Per-channel
  /// FIFO eligibility and the mc commutativity oracle both key off this.
  std::uint64_t channel_rank = 0;

  /// Packed key of a directed channel; the only ordering domain the
  /// asynchronous model constrains (reliable per-channel FIFO).
  [[nodiscard]] static std::uint64_t channel_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(to));
  }

  /// This event's channel key (messages only; meaningless otherwise).
  [[nodiscard]] std::uint64_t channel() const { return channel_key(from, to); }

  [[nodiscard]] std::string describe() const;
};

class Simulator final : public TransportIface {
 public:
  /// \param seed   master seed for every random stream in the run
  /// \param delays model for message latencies (defaults to Uniform[1,10])
  /// \param mode   kTimed for experiments, kControlled for model checking
  explicit Simulator(std::uint64_t seed,
                     std::unique_ptr<DelayModel> delays = nullptr,
                     ExecMode mode = ExecMode::kTimed);

  // -- topology -------------------------------------------------------

  /// Register an actor; returns its ProcessId (0, 1, 2, ... in order).
  /// All actors must be registered before `start()`.
  ProcessId add_actor(std::unique_ptr<Actor> actor);

  /// Construct and register an actor in place; returns a non-owning typed
  /// pointer (valid for the simulator's lifetime).
  template <typename T, typename... Args>
  T* make_actor(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    add_actor(std::move(owned));
    return raw;
  }

  [[nodiscard]] std::size_t num_processes() const { return actors_.size(); }
  [[nodiscard]] Actor* actor(ProcessId p) { return actors_[static_cast<std::size_t>(p)].get(); }
  [[nodiscard]] const Actor* actor(ProcessId p) const {
    return actors_[static_cast<std::size_t>(p)].get();
  }

  // -- lifecycle ------------------------------------------------------

  /// Deliver `on_start` to every (non-crashed) actor. Idempotent.
  void start();

  /// Run all events with timestamp <= t; afterwards now() == t.
  void run_until(Time t);

  /// Run for `d` more ticks of virtual time.
  void run_for(Time d) { run_until(now_ + d); }

  /// Execute the single earliest pending event. Returns false if idle.
  /// (kTimed mode only.)
  bool step();

  /// True if no events are pending.
  [[nodiscard]] bool idle() const {
    return mode_ == ExecMode::kTimed ? heap_.empty() : controlled_.empty();
  }

  // -- controlled (model-checking) mode ---------------------------------

  [[nodiscard]] ExecMode mode() const { return mode_; }

  /// Pending events that may legally fire next: every timer and scheduled
  /// callback, plus — per directed channel — only the oldest in-flight
  /// message (reliable FIFO channels). Stable order (by event id).
  [[nodiscard]] std::vector<PendingEvent> eligible_events() const;

  /// Fire the pending event with this id (must be eligible). Advances
  /// virtual time by one tick. Returns false if the id is unknown or not
  /// currently eligible.
  bool execute_event(std::uint64_t id);

  /// Append the simulator's contribution to a *semantic* state
  /// fingerprint (mc::check_liveness): the crash mask, every directed
  /// channel's in-flight payload sequence (FIFO order, packed via
  /// pack_payload), and per-owner pending timer counts (live and
  /// cancelled-but-unfired separately — a cancelled timer is still a
  /// no-op choice). Deliberately excludes now(), event ids and channel
  /// ranks: two states that differ only in how many ticks it took to
  /// reach them fingerprint identically, which is what lets lasso
  /// detection close cycles. (kControlled only.)
  void controlled_state_key(std::vector<std::uint64_t>& out) const;

  /// The id the next controlled-mode event will receive. Lets a harness
  /// that calls schedule() learn the id of the choice it just created
  /// (read before the call): mc::LivenessWorld uses this to give
  /// scheduled closures stable semantic fingerprints.
  [[nodiscard]] std::uint64_t next_event_id() const { return next_event_seq_; }

  // -- actor services (the sim::TransportIface implementation) ----------

  void send(ProcessId from, ProcessId to, const Payload& payload, MsgLayer layer) override;
  TimerId set_timer(ProcessId owner, Time delay) override;
  /// Timer ids are unique per simulator, so the owner is redundant here —
  /// the interface carries it for engines with per-actor timer state.
  void cancel_timer(ProcessId owner, TimerId id) override { (void)owner; cancel_timer(id); }
  void cancel_timer(TimerId id);

  // -- net hooks (link-fault adversary + reliable transport) -------------

  /// Install (or clear with nullptr) a channel adversary consulted on
  /// every physical send in timed mode. Not owned; must outlive the run.
  void set_adversary(ChannelAdversary* adversary) { adversary_ = adversary; }
  [[nodiscard]] ChannelAdversary* adversary() const { return adversary_; }

  /// Install (or clear with nullptr) a transport shim. Logical sends on
  /// covered layers are diverted to it; its physical segments are handed
  /// back to it at delivery time. Not owned; must outlive the run.
  void set_transport(Transport* transport) { transport_ = transport; }
  [[nodiscard]] Transport* transport() const { return transport_; }

  /// Physical send that bypasses the transport shim (but not the
  /// adversary) — the transport's own segments travel through this.
  void raw_send(ProcessId from, ProcessId to, const Payload& payload, MsgLayer layer);

  /// Hand a transport-released logical message to the recipient actor,
  /// settling the logical channel books and the event log. `logical_seq`
  /// is the sequence number `Network::logical_sent` returned for it;
  /// `sent_at` the original logical send time.
  void deliver_logical(ProcessId from, ProcessId to, const Payload& payload, MsgLayer layer,
                       std::uint64_t logical_seq, Time sent_at);

  /// Record a logged event with the log and/or streaming sink (no-op when
  /// neither is attached) — lets the transport record logical sends
  /// alongside the physical record.
  void append_log(const LoggedEvent& ev) { emit(ev); }

  // -- external scheduling (harness / tests) ---------------------------

  /// Run `fn` at absolute virtual time `at` (>= now).
  void schedule(Time at, std::function<void()> fn);

  /// Run `fn` `delay` ticks from now.
  void schedule_in(Time delay, std::function<void()> fn) { schedule(now_ + delay, std::move(fn)); }

  // -- event tracing ------------------------------------------------------

  /// Attach (or detach with nullptr) a low-level event log: every send,
  /// delivery, drop, timer firing and crash is appended. The log is not
  /// owned and must outlive its attachment.
  void set_event_log(EventLog* log) { event_log_ = log; }
  /// Currently attached log (nullptr when detached).
  [[nodiscard]] EventLog* event_log() const { return event_log_; }

  /// Attach (or detach with nullptr) a streaming event sink: receives
  /// exactly the events the log would, in the same order, as they happen
  /// (the online invariant monitors ride on this). Not owned; must not
  /// re-enter the simulator.
  void set_event_sink(EventSink* sink) { sink_ = sink; }

  /// Attach (or reset with {}) metric handles. Plain pointers into an
  /// obs::MetricsRegistry owned elsewhere; every handle is optional.
  void set_metrics(const SimMetrics& m) { metrics_ = m; }

  // -- channel faults (model-violation experiments) ----------------------

  /// Break the reliable-FIFO channel assumptions on purpose (kTimed only):
  /// with probability `dup_prob` a sent message is delivered twice (the
  /// duplicate takes an independent delay), and with probability
  /// `reorder_prob` a message ignores the per-channel FIFO order (it may
  /// undercut earlier messages). The paper's Lemmas 1.1/1.2 *assume* these
  /// never happen; bench/e17_model_assumptions shows what breaks when they
  /// do. Default: 0/0 — the paper's model.
  void set_channel_faults(double dup_prob, double reorder_prob) {
    dup_prob_ = dup_prob;
    reorder_prob_ = reorder_prob;
  }

  // -- crash faults -----------------------------------------------------

  /// Crash `p` immediately (idempotent).
  void crash(ProcessId p);

  /// Crash `p` at absolute time `at`.
  void schedule_crash(ProcessId p, Time at);

  /// Bring a crashed `p` back (timed mode only; no-op if live). The new
  /// incarnation keeps the actor object's local state; the dead one's
  /// pending timers are cancelled and every message sent to `p` before
  /// this instant is dropped at delivery (recovery fences the inbound
  /// channels). Fires `Actor::on_recover`.
  void recover(ProcessId p);

  /// Recover `p` at absolute time `at`.
  void schedule_recovery(ProcessId p, Time at);

  [[nodiscard]] bool crashed(ProcessId p) const {
    return crash_times_[static_cast<std::size_t>(p)] >= 0;
  }

  /// Time at which `p` crashed, or -1 if live.
  [[nodiscard]] Time crash_time(ProcessId p) const {
    return crash_times_[static_cast<std::size_t>(p)];
  }

  /// Processes that have not crashed (so far).
  [[nodiscard]] std::vector<ProcessId> live_processes() const;

  // -- introspection ----------------------------------------------------

  [[nodiscard]] Time now() const override { return now_; }
  Rng& rng() { return rng_; }
  Network& network() { return network_; }
  [[nodiscard]] const Network& network() const { return network_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

  /// Per-actor independent random stream (created lazily, stable per id:
  /// derived as Rng(seed).fork(p + 1), the same derivation every engine
  /// uses).
  Rng& actor_rng(ProcessId p) override;

 private:
  /// One record in the timed event heap. A typed discriminant instead of a
  /// per-event heap-allocated `std::function` closure: the steady-state
  /// kinds (deliveries, timers, drop settlements, crashes) carry their
  /// operands inline, so pushing and popping them never allocates — and
  /// the record is trivially copyable, so slab stores are plain memcpys.
  /// Externally scheduled callbacks (`schedule()`) keep a closure, parked
  /// in `callbacks_` under the event's seq — they are harness-frequency,
  /// not message-frequency.
  struct Event {
    enum class Kind : std::uint8_t {
      kDeliver,     ///< hand `msg` to its recipient (or drop at a corpse)
      kTimer,       ///< fire timer `timer_id` at `owner` unless cancelled
      kDropSettle,  ///< `msg` was lost in flight: settle books, log loss
      kCrash,       ///< crash process `owner`
      kCallback,    ///< run the closure filed under `seq` in `callbacks_`
    };
    Time at = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::kCallback;
    bool partitioned = false;      ///< kDropSettle: partition cut vs. random loss
    ProcessId owner = kNoProcess;  ///< kTimer / kCrash subject
    TimerId timer_id = 0;          ///< kTimer
    Message msg;                   ///< kDeliver / kDropSettle
  };
  /// What the heap actually sifts: 16 bytes — the firing time plus a
  /// packed (seq, slot) word, seq in the high bits so comparing the word
  /// orders by seq (slot is dead weight below unique-seq bits). Keeping
  /// the ~100-byte Event records out of the heap makes every sift step a
  /// two-word move, and at 16 bytes the four children of a 4-ary node
  /// share a single cache line — the difference between O(log n) in
  /// theory and in the cache.
  struct HeapEntry {
    Time at = 0;
    std::uint64_t seq_slot = 0;
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & (kMaxSlots - 1));
    }
  };
  /// Slab slots spendable before the packed word runs out of room:
  /// 2^21 ≈ 2M *concurrently pending* events (seq gets the other 43
  /// bits — centuries of simulated traffic). acquire_slot() hard-fails
  /// at the cap rather than silently mis-ordering.
  static constexpr std::uint64_t kMaxSlots = 1ULL << 21;
  /// Strict "a fires after b" on the (at, seq) key. seq is unique, so
  /// this is a *total* order: the pop sequence is fully determined by the
  /// key and does not depend on the heap's internal shape or arity.
  static bool event_later(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq_slot > b.seq_slot;
  }

  /// A pending event in controlled mode: descriptor (including the
  /// per-channel FIFO rank for messages) plus inline operands — same
  /// typed-record scheme as the timed heap; only kScheduled carries a
  /// closure.
  struct ControlledEvent {
    PendingEvent info;
    TimerId timer_id = 0;      ///< kTimer
    Message msg;               ///< kMessage
    std::function<void()> fn;  ///< kScheduled only
  };

  /// Grab a free slab slot (recycled or fresh). The returned reference is
  /// valid only until the next acquire (the slab may reallocate).
  std::uint32_t acquire_slot();
  /// Assign the next event seq to the record in `slot` and push it on the
  /// heap. The record's `at` and `kind` must be final. Returns the seq
  /// (keys `callbacks_` for kCallback records).
  std::uint64_t commit_event(std::uint32_t slot);
  /// Cold-path convenience: copy a ready-made record into a slot and
  /// commit it. The hot send path builds records in place instead.
  std::uint64_t push_event(const Event& ev);
  ControlledEvent& push_controlled(PendingEvent::Kind kind, ProcessId from, ProcessId to,
                                   ProcessId owner, std::uint64_t channel_rank);
  /// 4-ary min-heap primitives over `heap_` (earliest (at, seq) on top).
  /// Quarter the depth of a binary heap and all four children share one
  /// cache line (4 × 24 B), so pops touch far less memory; because
  /// (at, seq) is a total order the pop sequence is identical to any
  /// other heap arity — arity is pure mechanics, not semantics.
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  /// Remove heap_[0], restoring the heap property.
  void heap_pop_front();
  /// Pop-and-discard cancelled-timer records at the heap front. They are
  /// dead weight, not events: skipping them must not advance time or the
  /// events_processed counter.
  void prune_cancelled();
  /// Pop and run the earliest event. Precondition: prune_cancelled() was
  /// just called and the heap is non-empty.
  void pop_and_dispatch();
  void dispatch(Event&& ev);
  void fire_timer(ProcessId owner, TimerId id);
  [[nodiscard]] bool is_eligible(const ControlledEvent& ev) const;
  void deliver(const Message& m);

  /// True when anyone is listening for logged events. Every event
  /// construction site is guarded by this, so the uninstrumented hot path
  /// never builds a LoggedEvent.
  [[nodiscard]] bool tracing() const { return event_log_ != nullptr || sink_ != nullptr; }
  /// Fan one event out to the log and the sink (same order everywhere).
  void emit(const LoggedEvent& ev) {
    if (event_log_ != nullptr) event_log_->append(ev);
    if (sink_ != nullptr) sink_->on_event(ev);
  }

  std::uint64_t seed_;
  Rng rng_;
  std::unique_ptr<DelayModel> delays_;
  ExecMode mode_;
  Network network_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<std::unique_ptr<Rng>> actor_rngs_;
  std::vector<Time> crash_times_;
  /// Latest recovery instant per process (-1: never recovered). Deliveries
  /// of messages sent before this are dropped — see recover().
  std::vector<Time> last_recover_;
  /// Timed mode: 4-ary min-heap over (at, seq) on a plain vector of
  /// compact HeapEntry keys; the Event records live in `slab_` (slots
  /// recycled through `free_slots_`), so sifting moves 24-byte keys, not
  /// 100-byte records.
  std::vector<HeapEntry> heap_;
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_slots_;
  /// Closures of pending kCallback events, keyed by event seq.
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
  std::map<std::uint64_t, ControlledEvent> controlled_;  // by event id
  /// Controlled mode: per-directed-channel FIFO of pending message event
  /// ids, in send (= channel_rank) order. An event is eligible iff it is
  /// at the front of its channel — O(1), making eligible_events()
  /// O(pending) instead of O(pending²).
  std::unordered_map<std::uint64_t, std::deque<std::uint64_t>> channel_fifo_;
  std::unordered_map<std::uint64_t, std::uint64_t> channel_send_rank_;
  std::unordered_set<TimerId> active_timers_;
  std::uint64_t next_event_seq_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::uint64_t events_processed_ = 0;
  double dup_prob_ = 0.0;
  double reorder_prob_ = 0.0;
  ChannelAdversary* adversary_ = nullptr;
  Transport* transport_ = nullptr;
  EventLog* event_log_ = nullptr;
  EventSink* sink_ = nullptr;
  SimMetrics metrics_;
  Time now_ = 0;
  bool started_ = false;
};

}  // namespace ekbd::sim
