#include "sim/codec.hpp"

#include <variant>

namespace ekbd::sim::codec {

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad magic";
    case DecodeStatus::kBadVersion: return "bad version";
    case DecodeStatus::kBadLength: return "bad length";
    case DecodeStatus::kBadChecksum: return "bad checksum";
    case DecodeStatus::kBadBody: return "bad body";
  }
  return "?";
}

std::size_t seal_frame(std::uint8_t* buf, std::size_t cap, std::uint8_t kind,
                       std::size_t body_len) {
  if (body_len > kMaxBodySize || kHeaderSize + body_len > cap) return 0;
  std::uint32_t sum = fnv1a(&kind, 1);
  sum = fnv1a(buf + kHeaderSize, body_len, sum);
  Writer w(buf, kHeaderSize);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(kind);
  w.u32(static_cast<std::uint32_t>(body_len));
  w.u32(sum);
  return w.ok() ? kHeaderSize + body_len : 0;
}

DecodeStatus open_frame(const std::uint8_t* buf, std::size_t len, std::uint8_t& kind,
                        const std::uint8_t*& body, std::size_t& body_len) {
  if (len < kHeaderSize) return DecodeStatus::kTruncated;
  Reader r(buf, kHeaderSize);
  if (r.u16() != kMagic) return DecodeStatus::kBadMagic;
  if (r.u8() != kVersion) return DecodeStatus::kBadVersion;
  const std::uint8_t k = r.u8();
  const std::uint32_t blen = r.u32();
  const std::uint32_t sum = r.u32();
  if (blen > kMaxBodySize) return DecodeStatus::kBadLength;
  if (len < kHeaderSize + blen) return DecodeStatus::kTruncated;
  std::uint32_t expect = fnv1a(&k, 1);
  expect = fnv1a(buf + kHeaderSize, blen, expect);
  if (expect != sum) return DecodeStatus::kBadChecksum;
  kind = k;
  body = buf + kHeaderSize;
  body_len = blen;
  return DecodeStatus::kOk;
}

void encode_payload(const Payload& p, Writer& w) {
  const PayloadTag tag = payload_tag(p);
  w.u8(tag);
  if (const auto* ds = std::get_if<net::DataSegment>(&p)) {
    w.u64(ds->header);
    w.u64(ds->inner_bits);
    w.i64(ds->logical_sent_at);
    return;
  }
  if (kPayloadWireSize[tag] == 8) {
    std::uint8_t t = 0;
    std::uint64_t bits = 0;
    // Cannot fail: the wire-size table already classified this tag as
    // word-packable (the static_assert in wire_size_of enforces it).
    (void)pack_payload(p, t, bits);
    w.u64(bits);
  }
  // 0-byte alternatives (empty structs, monostate): the tag is the value.
}

DecodeStatus decode_payload(Reader& r, Payload& out) {
  const std::uint8_t tag = r.u8();
  if (!r.ok() || tag >= std::variant_size_v<Payload>) return DecodeStatus::kBadBody;
  const std::size_t vsize = kPayloadWireSize[tag];
  if (r.remaining() < vsize) return DecodeStatus::kBadBody;
  if (tag == kPayloadTagOf<net::DataSegment>) {
    net::DataSegment ds;
    ds.header = r.u64();
    ds.inner_bits = r.u64();
    ds.logical_sent_at = r.i64();
    out = ds;
    return DecodeStatus::kOk;
  }
  const std::uint64_t bits = vsize == 8 ? r.u64() : 0;
  out = unpack_payload(tag, bits);
  return DecodeStatus::kOk;
}

std::size_t encode_message(const Message& m, std::uint8_t* buf, std::size_t cap) {
  if (cap < kHeaderSize) return 0;
  Writer w(buf + kHeaderSize, cap - kHeaderSize);
  w.i32(m.from);
  w.i32(m.to);
  w.i64(m.sent_at);
  w.u8(static_cast<std::uint8_t>(m.layer));
  w.u64(m.seq);
  encode_payload(m.payload, w);
  if (!w.ok()) return 0;
  return seal_frame(buf, cap, static_cast<std::uint8_t>(FrameKind::kMessage), w.size());
}

DecodeStatus decode_message(const std::uint8_t* body, std::size_t body_len, Message& out) {
  Reader r(body, body_len);
  Message m;
  m.from = r.i32();
  m.to = r.i32();
  m.sent_at = r.i64();
  const std::uint8_t layer = r.u8();
  m.seq = r.u64();
  if (!r.ok() || layer >= kNumMsgLayers) return DecodeStatus::kBadBody;
  m.layer = static_cast<MsgLayer>(layer);
  const DecodeStatus st = decode_payload(r, m.payload);
  if (st != DecodeStatus::kOk) return st;
  if (!r.exhausted()) return DecodeStatus::kBadBody;  // trailing garbage
  out = m;
  return DecodeStatus::kOk;
}

std::size_t encode_event(const LoggedEvent& ev, std::uint8_t* buf, std::size_t cap) {
  if (cap < kHeaderSize) return 0;
  Writer w(buf + kHeaderSize, cap - kHeaderSize);
  w.i64(ev.at);
  w.u8(static_cast<std::uint8_t>(ev.kind));
  w.i32(ev.from);
  w.i32(ev.to);
  w.u8(static_cast<std::uint8_t>(ev.layer));
  w.u64(ev.seq);
  w.u8(ev.payload);
  if (!w.ok()) return 0;
  return seal_frame(buf, cap, static_cast<std::uint8_t>(FrameKind::kEvent), w.size());
}

DecodeStatus decode_event(const std::uint8_t* body, std::size_t body_len,
                          LoggedEvent& out) {
  Reader r(body, body_len);
  LoggedEvent ev;
  ev.at = r.i64();
  const std::uint8_t kind = r.u8();
  ev.from = r.i32();
  ev.to = r.i32();
  const std::uint8_t layer = r.u8();
  ev.seq = r.u64();
  const std::uint8_t tag = r.u8();
  if (!r.exhausted()) return DecodeStatus::kBadBody;
  if (kind > static_cast<std::uint8_t>(LoggedEvent::Kind::kRecover) ||
      layer >= kNumMsgLayers || tag >= std::variant_size_v<Payload>) {
    return DecodeStatus::kBadBody;
  }
  ev.kind = static_cast<LoggedEvent::Kind>(kind);
  ev.layer = static_cast<MsgLayer>(layer);
  ev.payload = tag;
  out = ev;
  return DecodeStatus::kOk;
}

}  // namespace ekbd::sim::codec
