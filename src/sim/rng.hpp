/// \file rng.hpp
/// Deterministic random number generation.
///
/// Every source of randomness in the repository flows through `Rng`, seeded
/// explicitly, so each execution is exactly reproducible from
/// (seed, parameters). `fork` derives statistically independent child
/// streams (per process, per channel, ...) without sharing state, which
/// keeps runs reproducible even when components draw in data-dependent
/// order.
#pragma once

#include <cstdint>
#include <random>

namespace ekbd::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(mix(seed)) {}

  /// Raw 64 random bits.
  std::uint64_t u64() { return engine_(); }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed duration with the given mean (> 0).
  std::int64_t exponential(double mean) {
    double x = std::exponential_distribution<double>(1.0 / mean)(engine_);
    return static_cast<std::int64_t>(x);
  }

  /// Uniform index into a container of size `n` (n > 0).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Derive an independent child stream. Children with distinct
  /// `stream_id`s (or from distinct parents) do not correlate.
  Rng fork(std::uint64_t stream_id) { return Rng(mix(u64() ^ mix(stream_id))); }

 private:
  /// SplitMix64 finalizer: decorrelates small / sequential seeds.
  static std::uint64_t mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace ekbd::sim
