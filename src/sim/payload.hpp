/// \file payload.hpp
/// The closed universe of wire types, as one `std::variant`.
///
/// The paper's channel-capacity analysis (§7) is what makes this closure
/// sound: between any pair of neighbors at most one fork, one token and
/// two ping/acks are ever in transit, and every message is one of a small
/// fixed set of constant-size records (the only payload data is a color —
/// hence the O(log n) message size of §7 / P5). A dynamically typed
/// envelope (`std::any`) therefore buys nothing and costs an allocation
/// plus RTTI on every send; `sim::Payload` replaces it with a flat
/// 32-byte tagged union, which is what keeps the simulator's
/// send→deliver path allocation-free (see docs/PERF.md).
///
/// Every protocol's wire structs are *defined* here (their home headers
/// include this file) because the variant must see complete types. To add
/// a wire type: define the struct in its home namespace below, append it
/// to the `Payload` alternative list (append — the tag order is part of
/// the DataSegment wire encoding), and keep it trivially copyable and
/// within the size budget enforced by the static_asserts at the bottom.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <variant>

#include "sim/time.hpp"

namespace ekbd::sim {

/// Which subsystem a message belongs to, for per-layer accounting.
enum class MsgLayer : std::uint8_t {
  kDining,     ///< ping/ack/fork/token traffic of a dining algorithm
  kDetector,   ///< failure-detector heartbeats
  kOther,      ///< anything else (tests, examples)
  kTransport,  ///< ARQ segments/acks of net::ReliableTransport (physical)
};

/// Number of MsgLayer values (per-layer bookkeeping array sizes).
inline constexpr int kNumMsgLayers = 4;

/// Generic value payload — the escape hatch for tests, examples and
/// harness plumbing that need to send "some number" without minting a
/// protocol wire type.
struct Datum {
  std::int64_t value = 0;
};

}  // namespace ekbd::sim

// -- core: Algorithm 1 wire format (paper §3 / §7) -------------------------
//
// Four message types, matching the paper's channel-capacity analysis.
// Sender identity comes from the simulator's message envelope; the only
// payload data is the requester's color inside a fork request.

namespace ekbd::core {

/// Doorway ack solicitation (Action 2 → Action 3).
struct Ping {};

/// Doorway permission (Action 3/10 → Action 4).
struct Ack {};

/// Fork request; sending it passes the shared token to the fork holder
/// (Action 6 → Action 7). Carries the requester's static color, which the
/// holder compares against its own (higher color wins).
struct ForkRequest {
  int color = 0;
};

/// The shared fork itself (Action 7/10 → Action 8).
struct Fork {};

// -- dynamic-graph extension (load harness: churn + crash-recovery) --------
//
// Five control messages layered on top of Algorithm 1 for scenarios whose
// conflict graph changes mid-run. All are constant-size (§7 still holds)
// and only ever travel on reliable FIFO channels: the safety arguments in
// docs/LOADGEN.md lean on FIFO ordering between these and the dining
// messages they fence.

/// Edge addition, initiator → acceptor: "we now conflict; my color is
/// `color`". Sent while the initiator is thinking.
struct EdgeProposal {
  int color = 0;
};

/// Edge addition, acceptor → initiator. The acceptor placed the initial
/// fork/token (higher color holds the fork, ties broken toward the higher
/// id) and reports its color plus which side got the fork so both ends
/// agree. Fields sized to leave no padding (raw bytes travel through
/// pack_payload).
struct EdgeAccept {
  std::int32_t color = 0;
  std::uint32_t acceptor_has_fork = 0;
};

/// Edge removal (either direction). The sender has already dropped the
/// edge; the receiver drops it on delivery and FIFO guarantees no dining
/// message for the dead edge arrives afterwards.
struct EdgeDrop {};

/// Rejoin solicitation from a recovered process. `epoch` counts the
/// sender's incarnations; stale acks from a previous incarnation echo an
/// older epoch and are ignored.
struct RejoinRequest {
  std::uint32_t epoch = 0;
};

/// Rejoin answer: the surviving neighbor reports who holds the shared
/// fork and token so the recovered process rebuilds its half of the edge
/// state without ever minting a second fork. Fields are sized to leave no
/// padding (the raw bytes travel through pack_payload).
struct RejoinAck {
  std::uint32_t epoch = 0;
  std::uint16_t has_fork = 0;
  std::uint16_t has_token = 0;
};

}  // namespace ekbd::core

// -- fd: failure-detector wire format --------------------------------------

namespace ekbd::fd {

/// Wire format of a heartbeat (sender comes from the envelope).
struct Heartbeat {};

/// Probe and its echo. `seq` matches responses to requests (stale echoes
/// from a previous probe round are ignored, not misread as fresh).
struct Probe {
  std::uint64_t seq = 0;
};
struct ProbeEcho {
  std::uint64_t seq = 0;
};

}  // namespace ekbd::fd

// -- drinking: bottle wire format ------------------------------------------

namespace ekbd::drinking {

/// Bottle wire format (mirrors core::ForkRequest / core::Fork). The
/// request carries whether the requester was eating when it asked: under
/// ◇WX two neighbors may *co-eat* before the detector converges, and both
/// deferring the shared bottle would deadlock — the tie-break (lower
/// color yields to a co-eating higher color) breaks exactly that case and
/// never fires once exclusion holds.
struct BottleRequest {
  bool requester_eating = false;
};
struct Bottle {};
/// Sent when a requester with an outstanding (possibly deferred) request
/// *starts eating*: its earlier request may carry a stale
/// `requester_eating = false`, and the co-eating tie-break must still see
/// the escalated priority. FIFO guarantees the escalation arrives after
/// the request it upgrades.
struct BottleEscalate {};

}  // namespace ekbd::drinking

// -- net: ARQ segment wire format ------------------------------------------

namespace ekbd::net {

/// Physical wire format of the ARQ shim: one logical message per data
/// segment. The carried logical payload cannot be a `sim::Payload` member
/// (the variant would be recursive), so it is nested as its variant tag
/// plus its raw bytes — every payload the transport covers is trivially
/// copyable and at most 8 bytes (enforced via `sim::pack_payload`), the
/// same constant-size-record property §7 rests on. Bookkeeping fields are
/// bit-packed into one word; the widths bound a single run at 2^26 ARQ
/// segments per directed edge and 2^30 logical sends total, far above any
/// experiment in this repository (debug builds assert the bounds).
struct DataSegment {
  // header: [ seq:26 | logical_seq:30 | layer:2 | inner_tag:6 ]
  std::uint64_t header = 0;
  std::uint64_t inner_bits = 0;      ///< raw bytes of the logical payload
  ekbd::sim::Time logical_sent_at = 0;  ///< sender hand-off time to the ARQ

  static constexpr std::uint64_t kMaxSeq = (1ULL << 26) - 1;
  static constexpr std::uint64_t kMaxLogicalSeq = (1ULL << 30) - 1;

  DataSegment() = default;
  DataSegment(std::uint64_t seq, ekbd::sim::MsgLayer layer, std::uint64_t logical_seq,
              ekbd::sim::Time sent_at, std::uint8_t inner_tag, std::uint64_t bits)
      : header((seq << 38) | ((logical_seq & kMaxLogicalSeq) << 8) |
               (static_cast<std::uint64_t>(layer) << 6) | (inner_tag & 0x3F)),
        inner_bits(bits),
        logical_sent_at(sent_at) {}

  [[nodiscard]] std::uint64_t seq() const { return header >> 38; }
  [[nodiscard]] std::uint64_t logical_seq() const { return (header >> 8) & kMaxLogicalSeq; }
  [[nodiscard]] ekbd::sim::MsgLayer layer() const {
    return static_cast<ekbd::sim::MsgLayer>((header >> 6) & 0x3);
  }
  [[nodiscard]] std::uint8_t inner_tag() const {
    return static_cast<std::uint8_t>(header & 0x3F);
  }
};

/// Cumulative acknowledgement: "I have delivered everything < cumulative".
struct AckSegment {
  std::uint64_t cumulative = 0;
};

}  // namespace ekbd::net

namespace ekbd::sim {

/// The closed set of everything that travels on a channel. `monostate`
/// is the empty envelope; `int` and `Datum` serve tests/examples. Append
/// new alternatives at the end: the index is the wire tag DataSegment
/// uses to nest logical payloads.
using Payload = std::variant<std::monostate,
                             core::Ping,
                             core::Ack,
                             core::ForkRequest,
                             core::Fork,
                             fd::Heartbeat,
                             fd::Probe,
                             fd::ProbeEcho,
                             drinking::BottleRequest,
                             drinking::Bottle,
                             drinking::BottleEscalate,
                             net::DataSegment,
                             net::AckSegment,
                             int,
                             Datum,
                             core::EdgeProposal,
                             core::EdgeAccept,
                             core::EdgeDrop,
                             core::RejoinRequest,
                             core::RejoinAck>;

namespace detail {
template <typename V>
struct AllTriviallyCopyable;
template <typename... Ts>
struct AllTriviallyCopyable<std::variant<Ts...>>
    : std::conjunction<std::is_trivially_copyable<Ts>...> {};
}  // namespace detail

// The whole point: a Payload is a flat value — copying one is a memcpy,
// destroying one is free, and none of it ever touches the heap.
static_assert(sizeof(Payload) <= 32, "keep the message envelope small (§7: O(log n))");
static_assert(detail::AllTriviallyCopyable<Payload>::value,
              "wire types must be trivially copyable (zero-allocation hot path)");
static_assert(std::variant_size_v<Payload> <= 64,
              "DataSegment packs the tag into 6 bits");

/// Payload discriminator for the event log and the telemetry layer: the
/// variant index, a single byte. Tag 0 (monostate) doubles as "no
/// payload" — timers and crashes carry it instead of a fake type.
using PayloadTag = std::uint8_t;

/// The empty-envelope tag (monostate).
inline constexpr PayloadTag kNoPayloadTag = 0;

/// Tag of the held alternative.
[[nodiscard]] inline PayloadTag payload_tag(const Payload& p) {
  return static_cast<PayloadTag>(p.index());
}

namespace detail {
template <typename T, std::size_t I = 0>
constexpr std::size_t payload_index_of() {
  static_assert(I < std::variant_size_v<Payload>, "T is not a Payload alternative");
  if constexpr (std::is_same_v<std::variant_alternative_t<I, Payload>, T>) {
    return I;
  } else {
    return payload_index_of<T, I + 1>();
  }
}
}  // namespace detail

/// Compile-time tag of a specific wire type — lets streaming observers
/// match e.g. core::Fork events without constructing a Payload.
template <typename T>
inline constexpr PayloadTag kPayloadTagOf =
    static_cast<PayloadTag>(detail::payload_index_of<T>());

/// Deterministic human-readable name of a tag ("Ping", "Fork", ...;
/// monostate reads as "" — "no payload"). Unlike RTTI demangling, the
/// table below is identical on every compiler and toolchain.
[[nodiscard]] inline const char* payload_tag_name(PayloadTag tag) {
  static constexpr const char* kNames[] = {
      "",          "Ping",          "Ack",    "ForkRequest",    "Fork",
      "Heartbeat", "Probe",         "ProbeEcho",
      "BottleRequest", "Bottle",    "BottleEscalate",
      "DataSegment",   "AckSegment", "int",   "Datum",
      "EdgeProposal",  "EdgeAccept", "EdgeDrop",
      "RejoinRequest", "RejoinAck"};
  static_assert(sizeof(kNames) / sizeof(kNames[0]) == std::variant_size_v<Payload>,
                "add the new alternative's name (same position as in the variant)");
  return tag < std::variant_size_v<Payload> ? kNames[tag] : "?";
}

/// True for alternatives DataSegment can nest: at most one word of raw
/// bytes. The transport never covers MsgLayer::kTransport, so DataSegment
/// itself (the only oversize alternative) never needs to pack.
template <typename T>
inline constexpr bool is_packable_payload_v =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t);

/// Encode `p` as (variant tag, raw bytes) for nesting inside a
/// DataSegment. Returns false for the (never transported) oversize
/// alternatives.
[[nodiscard]] inline bool pack_payload(const Payload& p, std::uint8_t& tag,
                                       std::uint64_t& bits) {
  tag = static_cast<std::uint8_t>(p.index());
  bits = 0;
  return std::visit(
      [&bits](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_empty_v<T>) {
          // An empty wire struct's single byte is padding, not data:
          // copying it would leak an indeterminate byte into the encoding
          // (and into the model checker's state keys, where it breaks
          // state dedup). Canonical form is bits == 0.
          (void)v;
          return true;
        } else if constexpr (is_packable_payload_v<T>) {
          std::memcpy(&bits, static_cast<const void*>(&v), sizeof(T));
          return true;
        } else {
          (void)v;
          return false;
        }
      },
      p);
}

namespace detail {
template <std::size_t I>
Payload unpack_at(std::size_t tag, std::uint64_t bits) {
  if constexpr (I < std::variant_size_v<Payload>) {
    if (tag == I) {
      using T = std::variant_alternative_t<I, Payload>;
      if constexpr (is_packable_payload_v<T>) {
        T v{};
        // void* casts: the types are trivially copyable (static_assert
        // above); NSDMIs alone trip gcc's -Wclass-memaccess.
        std::memcpy(static_cast<void*>(&v), &bits, sizeof(T));
        return Payload{std::in_place_index<I>, v};
      } else {
        return Payload{};  // oversize tags never appear on the wire
      }
    }
    return unpack_at<I + 1>(tag, bits);
  } else {
    (void)bits;
    return Payload{};  // unknown tag: empty envelope
  }
}
}  // namespace detail

/// Inverse of `pack_payload`.
[[nodiscard]] inline Payload unpack_payload(std::uint8_t tag, std::uint64_t bits) {
  return detail::unpack_at<0>(tag, bits);
}

}  // namespace ekbd::sim
