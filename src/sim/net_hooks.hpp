/// \file net_hooks.hpp
/// Seams between the simulator core and the optional net/ subsystem.
///
/// The simulator stays ignorant of how faults are chosen and how
/// reliability is recovered; it only knows two interposition points:
///
///  * `ChannelAdversary` — consulted once per physical send (timed mode):
///    may drop the message in flight, inject a duplicate, or exempt it
///    from per-channel FIFO (reordering). net::LinkFaultModel implements
///    it with seed-deterministic per-edge probabilities and scheduled
///    partitions.
///
///  * `Transport` — intercepts *logical* sends on the layers it covers and
///    consumes its own physical segments at delivery. net::ReliableTransport
///    implements it as a per-edge ARQ (sequence numbers, cumulative acks,
///    duplicate suppression, retransmission with capped exponential
///    backoff), rebuilding the reliable FIFO channel the paper assumes on
///    top of a faulty link.
///
/// Both hooks are inert unless installed (Simulator::set_adversary /
/// set_transport) and apply to ExecMode::kTimed only — controlled-mode
/// model checking explores the reliable-FIFO model directly.
#pragma once

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace ekbd::sim {

/// Per-send fault decision. `drop` wins over `duplicate`/`reorder`; a
/// dropped message still occupies the channel until its delivery time
/// (it was lost in flight, not at the sender), when the simulator settles
/// the books and logs kLoss/kPartitionLoss instead of delivering.
struct FaultDecision {
  bool drop = false;         ///< lose the message in flight
  bool partitioned = false;  ///< the drop was a partition cut (for logging)
  bool duplicate = false;    ///< deliver a second, independently delayed copy
  bool reorder = false;      ///< stamp outside the per-channel FIFO horizon
};

class ChannelAdversary {
 public:
  virtual ~ChannelAdversary() = default;

  /// Decide the fate of one physical message at send time. Called exactly
  /// once per send (and once more for the adversary's own duplicate), in
  /// deterministic simulator order — implementations draw from their own
  /// explicitly seeded Rng so equal seeds give equal fault schedules.
  virtual FaultDecision on_send(ProcessId from, ProcessId to, MsgLayer layer, Time now) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Layers this transport carries (others bypass it and hit the raw
  /// network directly — e.g. failure-detector heartbeats, which are
  /// loss-tolerant by design).
  [[nodiscard]] virtual bool covers(MsgLayer layer) const = 0;

  /// Accept a logical message from `from` for in-order reliable delivery
  /// to `to`. The transport emits physical segments via
  /// Simulator::raw_send and releases the payload through
  /// Simulator::deliver_logical once it arrives in order.
  virtual void logical_send(ProcessId from, ProcessId to, const Payload& payload,
                            MsgLayer layer) = 0;

  /// Offer a delivered physical message. Returns true if it was a
  /// transport segment (consumed); false lets the simulator dispatch it
  /// to the recipient actor as usual.
  virtual bool on_physical_deliver(const Message& m) = 0;
};

}  // namespace ekbd::sim
