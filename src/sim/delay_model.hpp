/// \file delay_model.hpp
/// Message-delay models: the adversary's half of the execution.
///
/// The paper's system model is asynchronous message passing (unbounded
/// delays), while its oracle ◇P₁ is implementable only under partial
/// synchrony. We therefore provide:
///
///  * `FixedDelay` / `UniformDelay` — simple models for unit tests;
///  * `PartialSynchronyDelay` — the Dwork–Lynch–Stockmeyer / Chandra–Toueg
///    model: before an (unknown to the algorithms) Global Stabilization
///    Time delays are arbitrary (heavy-tailed with spikes), after GST every
///    message is delivered within a bound Δ. Heartbeat-based ◇P₁ provably
///    converges in this model.
///
/// Models only *sample* a delay; FIFO ordering per channel is enforced by
/// the Network regardless of the sampled values.
#pragma once

#include <memory>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ekbd::sim {

/// Strategy interface: sample the in-flight latency for one message.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Latency (>= 1 tick enforced by the network) for a message from
  /// `from` to `to` sent at virtual time `now`.
  virtual Time sample(ProcessId from, ProcessId to, Time now, Rng& rng) = 0;
};

/// Every message takes exactly `delay` ticks. Deterministic unit tests.
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(Time delay) : delay_(delay) {}
  Time sample(ProcessId, ProcessId, Time, Rng&) override { return delay_; }

 private:
  Time delay_;
};

/// Uniform latency in [lo, hi].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(hi) {}
  Time sample(ProcessId, ProcessId, Time, Rng& rng) override;

 private:
  Time lo_;
  Time hi_;
};

/// Partial synchrony with an explicit GST.
///
/// Before `gst`: latency is uniform in [pre_lo, pre_hi], and additionally
/// with probability `spike_prob` a spike multiplies it by `spike_factor` —
/// this is what forces false positives out of timeout-based detectors.
/// From `gst` on: latency is uniform in [post_lo, post_hi]; `post_hi` plays
/// the role of the unknown bound Δ.
class PartialSynchronyDelay final : public DelayModel {
 public:
  struct Params {
    Time gst = 0;
    Time pre_lo = 1;
    Time pre_hi = 50;
    double spike_prob = 0.0;
    Time spike_factor = 10;
    Time post_lo = 1;
    Time post_hi = 10;
  };

  explicit PartialSynchronyDelay(Params p) : p_(p) {}

  Time sample(ProcessId from, ProcessId to, Time now, Rng& rng) override;

  [[nodiscard]] const Params& params() const { return p_; }

 private:
  Params p_;
};

/// Convenience factories.
std::unique_ptr<DelayModel> make_fixed_delay(Time delay);
std::unique_ptr<DelayModel> make_uniform_delay(Time lo, Time hi);
std::unique_ptr<DelayModel> make_partial_synchrony(PartialSynchronyDelay::Params p);

}  // namespace ekbd::sim
