#include "sim/delay_model.hpp"

#include <algorithm>

namespace ekbd::sim {

Time UniformDelay::sample(ProcessId, ProcessId, Time, Rng& rng) {
  return rng.uniform_int(lo_, hi_);
}

Time PartialSynchronyDelay::sample(ProcessId, ProcessId, Time now, Rng& rng) {
  if (now >= p_.gst) {
    return rng.uniform_int(p_.post_lo, p_.post_hi);
  }
  Time d = rng.uniform_int(p_.pre_lo, p_.pre_hi);
  if (p_.spike_prob > 0.0 && rng.chance(p_.spike_prob)) {
    d *= std::max<Time>(1, p_.spike_factor);
  }
  return d;
}

std::unique_ptr<DelayModel> make_fixed_delay(Time delay) {
  return std::make_unique<FixedDelay>(delay);
}

std::unique_ptr<DelayModel> make_uniform_delay(Time lo, Time hi) {
  return std::make_unique<UniformDelay>(lo, hi);
}

std::unique_ptr<DelayModel> make_partial_synchrony(PartialSynchronyDelay::Params p) {
  return std::make_unique<PartialSynchronyDelay>(p);
}

}  // namespace ekbd::sim
