#include "sim/network.hpp"

#include <algorithm>

namespace ekbd::sim {

namespace {
int layer_index(MsgLayer layer) { return static_cast<int>(layer); }
}  // namespace

void Network::grow_dense(int need) {
  int stride = dense_stride_ == 0 ? 16 : dense_stride_;
  while (stride <= need) stride *= 2;
  std::vector<DirState> grown(static_cast<std::size_t>(stride) *
                              static_cast<std::size_t>(stride));
  for (int f = 0; f < dense_stride_; ++f) {
    for (int t = 0; t < dense_stride_; ++t) {
      grown[static_cast<std::size_t>(f) * static_cast<std::size_t>(stride) +
            static_cast<std::size_t>(t)] =
          dense_dir_[static_cast<std::size_t>(f) * static_cast<std::size_t>(dense_stride_) +
                     static_cast<std::size_t>(t)];
    }
  }
  dense_dir_ = std::move(grown);
  dense_stride_ = stride;
}

std::uint64_t Network::logical_sent(ProcessId from, ProcessId to, MsgLayer layer, Time now,
                                    bool target_crashed) {
  const int li = layer_index(layer);
  ++totals_[li];
  ChannelStats& cs = pair_stats_[li][pair_key(from, to)];
  ++cs.total;
  ++cs.in_transit;
  const bool high = cs.in_transit > cs.max_in_transit;
  if (high) cs.max_in_transit = cs.in_transit;

  PerTarget& pt = per_target_[li][to];
  pt.last_send = now;
  if (target_crashed) ++pt.after_crash;

  if (watch_ != nullptr) {
    watch_->on_send(layer, from, to, now, target_crashed);
    if (high) watch_->on_high_water(layer, from, to, cs.in_transit, now);
  }
  return next_seq_++;
}

void Network::logical_delivered(ProcessId from, ProcessId to, MsgLayer layer) {
  const int li = layer_index(layer);
  auto it = pair_stats_[li].find(pair_key(from, to));
  if (it != pair_stats_[li].end()) --it->second.in_transit;
}

ChannelStats Network::channel(ProcessId a, ProcessId b, MsgLayer layer) const {
  const auto& map = pair_stats_[layer_index(layer)];
  auto it = map.find(pair_key(a, b));
  return it == map.end() ? ChannelStats{} : it->second;
}

int Network::max_in_transit_any(MsgLayer layer) const {
  int best = 0;
  for (const auto& [k, cs] : pair_stats_[layer_index(layer)]) {
    best = std::max(best, cs.max_in_transit);
  }
  return best;
}

std::uint64_t Network::total_sent(MsgLayer layer) const {
  return totals_[layer_index(layer)];
}

Time Network::last_send_to(ProcessId target, MsgLayer layer) const {
  const auto& map = per_target_[layer_index(layer)];
  auto it = map.find(target);
  return it == map.end() ? -1 : it->second.last_send;
}

std::uint64_t Network::sends_to_crashed(ProcessId target, MsgLayer layer) const {
  const auto& map = per_target_[layer_index(layer)];
  auto it = map.find(target);
  return it == map.end() ? 0 : it->second.after_crash;
}

void Network::for_each_pair(
    MsgLayer layer,
    const std::function<void(ProcessId, ProcessId, const ChannelStats&)>& fn) const {
  const auto& map = pair_stats_[layer_index(layer)];
  std::vector<std::uint64_t> keys;
  keys.reserve(map.size());
  for (const auto& [k, cs] : map) keys.push_back(k.key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    const auto a = static_cast<ProcessId>(key >> 32);
    const auto b = static_cast<ProcessId>(key & 0xFFFFFFFFu);
    fn(a, b, map.at(PairKey{key}));
  }
}

}  // namespace ekbd::sim
