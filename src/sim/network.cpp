#include "sim/network.hpp"

#include <algorithm>

namespace ekbd::sim {

namespace {
int layer_index(MsgLayer layer) { return static_cast<int>(layer); }
}  // namespace

void Network::stamp(Message& m, Time now, Time latency, bool target_crashed, bool fifo) {
  latency = std::max<Time>(1, latency);
  Time deliver_at = now + latency;
  if (fifo) {
    Time& horizon = fifo_horizon_[dir_key(m.from, m.to)];
    deliver_at = std::max(deliver_at, horizon);  // FIFO: never undercut
    horizon = deliver_at;
  }

  m.sent_at = now;
  m.deliver_at = deliver_at;
  m.seq = next_seq_++;

  const int li = layer_index(m.layer);
  ++totals_[li];
  ChannelStats& cs = pair_stats_[li][pair_key(m.from, m.to)];
  ++cs.total;
  ++cs.in_transit;
  cs.max_in_transit = std::max(cs.max_in_transit, cs.in_transit);

  PerTarget& pt = per_target_[li][m.to];
  pt.last_send = now;
  if (target_crashed) ++pt.after_crash;
}

void Network::delivered(const Message& m) {
  const int li = layer_index(m.layer);
  auto it = pair_stats_[li].find(pair_key(m.from, m.to));
  if (it != pair_stats_[li].end()) --it->second.in_transit;
}

std::uint64_t Network::logical_sent(ProcessId from, ProcessId to, MsgLayer layer, Time now,
                                    bool target_crashed) {
  const int li = layer_index(layer);
  ++totals_[li];
  ChannelStats& cs = pair_stats_[li][pair_key(from, to)];
  ++cs.total;
  ++cs.in_transit;
  cs.max_in_transit = std::max(cs.max_in_transit, cs.in_transit);

  PerTarget& pt = per_target_[li][to];
  pt.last_send = now;
  if (target_crashed) ++pt.after_crash;
  return next_seq_++;
}

void Network::logical_delivered(ProcessId from, ProcessId to, MsgLayer layer) {
  const int li = layer_index(layer);
  auto it = pair_stats_[li].find(pair_key(from, to));
  if (it != pair_stats_[li].end()) --it->second.in_transit;
}

ChannelStats Network::channel(ProcessId a, ProcessId b, MsgLayer layer) const {
  const auto& map = pair_stats_[layer_index(layer)];
  auto it = map.find(pair_key(a, b));
  return it == map.end() ? ChannelStats{} : it->second;
}

int Network::max_in_transit_any(MsgLayer layer) const {
  int best = 0;
  for (const auto& [k, cs] : pair_stats_[layer_index(layer)]) {
    best = std::max(best, cs.max_in_transit);
  }
  return best;
}

std::uint64_t Network::total_sent(MsgLayer layer) const {
  return totals_[layer_index(layer)];
}

Time Network::last_send_to(ProcessId target, MsgLayer layer) const {
  const auto& map = per_target_[layer_index(layer)];
  auto it = map.find(target);
  return it == map.end() ? -1 : it->second.last_send;
}

std::uint64_t Network::sends_to_crashed(ProcessId target, MsgLayer layer) const {
  const auto& map = per_target_[layer_index(layer)];
  auto it = map.find(target);
  return it == map.end() ? 0 : it->second.after_crash;
}

}  // namespace ekbd::sim
