/// \file actor.hpp
/// Base class for protocol processes.
///
/// An Actor is one process of the distributed system: it owns local state,
/// reacts to message deliveries and timer expirations, and interacts with
/// the world only through `send` / `set_timer`. Those helpers forward to
/// whichever engine registered the actor (a `sim::TransportIface`): the
/// deterministic discrete-event simulator, or the real-threads runtime
/// (src/rt/) where each actor runs on its own OS thread. Every engine
/// guarantees:
///
///  * handlers of one actor run atomically with respect to each other
///    (the simulator runs one event at a time globally; the rt engine one
///    event at a time per actor);
///  * a crashed actor's handlers are never invoked again and its
///    outstanding sends/timers are discarded;
///  * handlers of one actor always run in nondecreasing time.
///
/// This matches the paper's model: asynchronous processes executing guarded
/// actions with weak fairness, communicating over reliable FIFO channels,
/// subject to crash (not Byzantine) faults. As an extension beyond the
/// paper, engines may *recover* a crashed actor (`on_recover`): the process
/// comes back with its pre-crash local state at a fresh point in time, and
/// protocols that support rejoin resynchronize explicitly (see
/// core::WaitFreeDiner's rejoin handshake).
#pragma once

#include "sim/message.hpp"
#include "sim/time.hpp"
#include "sim/transport_iface.hpp"

namespace ekbd::sim {

class Rng;

class Actor {
 public:
  Actor() = default;
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  virtual ~Actor() = default;

  [[nodiscard]] ProcessId id() const { return id_; }

  /// Invoked once, after all actors are registered, before any event.
  virtual void on_start() {}

  /// A message addressed to this actor reached its delivery time.
  virtual void on_message(const Message& m) = 0;

  /// A timer created with `set_timer` expired (and was not cancelled).
  virtual void on_timer(TimerId id) { (void)id; }

  /// The actor just crashed. For instrumentation only — the "process" is
  /// dead and must not send or schedule anything here.
  virtual void on_crash() {}

  /// The actor rejoined after a crash (engines that support recovery call
  /// this at the recovery boundary, before any post-recovery handler).
  /// Unlike on_crash, the process is live again: it may send and schedule
  /// — this is where a protocol runs its rejoin handshake.
  virtual void on_recover() {}

 protected:
  /// Send `payload` to `to` over the reliable FIFO channel.
  void send(ProcessId to, const Payload& payload, MsgLayer layer = MsgLayer::kOther);

  /// Arm a one-shot timer `delay` ticks from now; returns its id.
  TimerId set_timer(Time delay);

  /// Cancel a pending timer (no-op if it already fired or was cancelled).
  void cancel_timer(TimerId id);

  /// Current virtual time.
  [[nodiscard]] Time now() const;

  /// This actor's private random stream.
  Rng& rng();

 private:
  friend class TransportIface;
  TransportIface* ctx_ = nullptr;
  ProcessId id_ = kNoProcess;
};

}  // namespace ekbd::sim
