/// \file event_log.hpp
/// Optional low-level event tracing.
///
/// The dining Trace (dining/trace.hpp) records *scheduling* events; this
/// log records the transport itself — every send, delivery, drop, timer
/// firing and crash — for debugging protocols and for rendering message
/// sequence charts (examples/msc_demo) or Perfetto traces (obs/perfetto).
/// Install with `Simulator::set_event_log`; when none is installed the
/// simulator pays a null-pointer check per event and nothing else.
///
/// For *streaming* consumers (the online invariant monitors in
/// obs/monitors.hpp) the simulator also accepts an `EventSink`: same
/// events, delivered by virtual call as they happen, nothing retained.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace ekbd::sim {

struct LoggedEvent {
  enum class Kind : std::uint8_t {
    kSend,           ///< message handed to the network
    kDeliver,        ///< message handed to the recipient
    kDrop,           ///< message reached a crashed recipient
    kTimer,          ///< a timer fired at `from`
    kCrash,          ///< process `from` crashed
    kLoss,           ///< message lost in flight (link-fault adversary)
    kDuplicate,      ///< adversary injected a duplicate copy
    kPartitionLoss,  ///< message lost because the (from,to) link was cut
    kRecover,        ///< process `from` rejoined after a crash
  };

  Time at = 0;
  Kind kind = Kind::kSend;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  MsgLayer layer = MsgLayer::kOther;
  std::uint64_t seq = 0;             ///< message seq (send/deliver/drop)
  PayloadTag payload = kNoPayloadTag;  ///< payload variant tag (messages only)

  /// Human-readable payload type ("Ping", "Fork", ...): the tag-table
  /// name — deterministic across compilers ("" for no payload).
  [[nodiscard]] std::string payload_name() const { return payload_tag_name(payload); }

  [[nodiscard]] std::string describe() const;
};

/// Streaming consumer of logged events. Installed with
/// `Simulator::set_event_sink`; receives every event the log would, in
/// the same order, as it happens. Implementations must not re-enter the
/// simulator (they observe, they do not schedule).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const LoggedEvent& ev) = 0;
};

/// Ring-buffer-less append log. For long runs prefer installing only
/// around the window of interest (set_event_log(nullptr) detaches).
class EventLog {
 public:
  /// Keep at most `cap` events (0 = unbounded). When full, appends are
  /// counted and dropped — debugging windows should be sized explicitly
  /// rather than silently eating memory; `dropped()` says how much of the
  /// run fell off the end.
  explicit EventLog(std::size_t cap = 0) : cap_(cap) {}

  void append(LoggedEvent ev) {
    if (cap_ != 0 && events_.size() >= cap_) {
      truncated_ = true;
      ++dropped_;
      return;
    }
    events_.push_back(ev);
  }

  [[nodiscard]] const std::vector<LoggedEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool truncated() const { return truncated_; }
  /// Appends refused because the log was at capacity.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    truncated_ = false;
    dropped_ = 0;
  }

  /// Count of events of one kind (convenience for tests/assertions).
  [[nodiscard]] std::size_t count(LoggedEvent::Kind kind) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

  /// One-line shape summary, e.g. "event log: 5194 events (cap 8192, 0
  /// dropped)".
  [[nodiscard]] std::string describe() const;

 private:
  std::size_t cap_;
  bool truncated_ = false;
  std::uint64_t dropped_ = 0;
  std::vector<LoggedEvent> events_;
};

}  // namespace ekbd::sim
