/// \file message.hpp
/// Network message envelope.
///
/// The transport carries one `sim::Payload` — the closed variant over
/// every protocol's wire structs (payload.hpp) — and receiving code
/// retrieves it with `Message::as<T>()`. The `layer` tag lets the network
/// keep separate books for dining-protocol traffic and failure-detector
/// traffic — the paper's quiescence claim (§7) is about the dining layer
/// only (a ◇P implementation must keep monitoring forever).
#pragma once

#include <cstdint>
#include <variant>

#include "sim/payload.hpp"
#include "sim/time.hpp"

namespace ekbd::sim {

struct Message {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Time sent_at = 0;
  Time deliver_at = 0;
  MsgLayer layer = MsgLayer::kOther;
  std::uint64_t seq = 0;  ///< global send sequence number (FIFO tie-break)
  Payload payload;

  /// Typed payload access. Returns nullptr if the payload is not a T —
  /// receiving code dispatches by probing the message kinds it knows.
  /// T must be a Payload alternative (compile error otherwise).
  template <typename T>
  const T* as() const {
    return std::get_if<T>(&payload);
  }
};

// The envelope is a flat value: moving events through the queue is a
// memcpy, never an allocation.
static_assert(std::is_trivially_copyable_v<Message>);

}  // namespace ekbd::sim
