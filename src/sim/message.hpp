/// \file message.hpp
/// Network message envelope.
///
/// The transport is payload-agnostic: each protocol defines its own payload
/// structs and retrieves them with `Message::as<T>()`. The `layer` tag lets
/// the network keep separate books for dining-protocol traffic and failure-
/// detector traffic — the paper's quiescence claim (§7) is about the dining
/// layer only (a ◇P implementation must keep monitoring forever).
#pragma once

#include <any>
#include <cstdint>

#include "sim/time.hpp"

namespace ekbd::sim {

/// Which subsystem a message belongs to, for per-layer accounting.
enum class MsgLayer : std::uint8_t {
  kDining,     ///< ping/ack/fork/token traffic of a dining algorithm
  kDetector,   ///< failure-detector heartbeats
  kOther,      ///< anything else (tests, examples)
  kTransport,  ///< ARQ segments/acks of net::ReliableTransport (physical)
};

/// Number of MsgLayer values (per-layer bookkeeping array sizes).
inline constexpr int kNumMsgLayers = 4;

struct Message {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Time sent_at = 0;
  Time deliver_at = 0;
  MsgLayer layer = MsgLayer::kOther;
  std::uint64_t seq = 0;  ///< global send sequence number (FIFO tie-break)
  std::any payload;

  /// Typed payload access. Returns nullptr if the payload is not a T —
  /// receiving code dispatches by probing the message kinds it knows.
  template <typename T>
  const T* as() const {
    return std::any_cast<T>(&payload);
  }
};

}  // namespace ekbd::sim
