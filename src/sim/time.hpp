/// \file time.hpp
/// Virtual-time primitives for the discrete-event simulator.
///
/// The simulator runs on an abstract integer clock. One tick is nominally a
/// microsecond, but nothing depends on the unit: the paper's model is fully
/// asynchronous, so only the *order* of events (and, for the partial-
/// synchrony delay models, ratios of delays) matters.
#pragma once

#include <cstdint>

namespace ekbd::sim {

/// Virtual timestamp / duration, in abstract ticks.
using Time = std::int64_t;

/// Identifier of a process (vertex of the conflict graph). Processes are
/// numbered 0..n-1 by the simulator in registration order.
using ProcessId = std::int32_t;

/// Identifier of a pending timer, unique per simulator instance.
using TimerId = std::uint64_t;

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = -1;

/// Convenience literals for readable test/bench parameters.
inline constexpr Time kMillisecond = 1'000;
inline constexpr Time kSecond = 1'000'000;

}  // namespace ekbd::sim
