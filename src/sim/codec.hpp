/// \file codec.hpp
/// Compact checksummed wire codec for the closed `sim::Payload` set.
///
/// The socket engine (src/netproc) puts real bytes on real UDP datagrams,
/// and the recorder's log shipper puts the same bytes in files, so the
/// encoding must be (a) fully deterministic — fixed little-endian layout,
/// no struct memcpy, no padding bytes (the PR-6 lesson: indeterminate
/// padding silently poisons anything keyed on the bytes), and (b) hostile-
/// input safe — a truncated, bit-flipped or garbage frame is *rejected*,
/// never undefined behavior. Every read is bounds-checked and every frame
/// carries a checksum over its kind and body.
///
/// Frame layout (kHeaderSize = 12 bytes, all integers little-endian):
///
///     offset  size  field
///          0     2  magic      0xEB0D
///          2     1  version    kVersion (1)
///          3     1  kind       FrameKind (or an orchestration kind >= 16)
///          4     4  body_len   bytes following the header
///          8     4  checksum   FNV-1a-32 over [kind, body bytes...]
///
/// Payload encoding inside a body: 1 tag byte, then a per-tag fixed-size
/// value — 0 bytes for empty wire structs (canonical, no padding byte),
/// 24 bytes for net::DataSegment (the one oversize alternative: header
/// word, inner bits word, logical_sent_at), 8 bytes (the canonical
/// `pack_payload` word) for everything else. One frame per UDP datagram;
/// log files are a plain concatenation of frames.
///
/// Layering: this header knows `sim` types only (Payload, Message,
/// LoggedEvent). Higher layers (rt trace records, netproc control frames)
/// reuse the Writer/Reader primitives and the generic frame functions
/// with their own kind bytes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "sim/event_log.hpp"
#include "sim/message.hpp"
#include "sim/payload.hpp"

namespace ekbd::sim::codec {

inline constexpr std::uint16_t kMagic = 0xEB0D;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;

/// Upper bound on any frame this codec will emit or accept. Generous:
/// the largest sim frame is a Message carrying a DataSegment (62 bytes);
/// orchestration frames (node port tables) stay well under this too.
/// Anything larger is garbage by definition and rejected before
/// allocation-free parsing even starts.
inline constexpr std::size_t kMaxFrameSize = 1024;
inline constexpr std::size_t kMaxBodySize = kMaxFrameSize - kHeaderSize;

/// Kind bytes of the frames this codec itself encodes. Values >= 16 are
/// reserved for the orchestration control channel (netproc/control.hpp),
/// which rides the same framing with its own bodies.
enum class FrameKind : std::uint8_t {
  kMessage = 1,  ///< one sim::Message (UDP data plane, one per datagram)
  kEvent = 2,    ///< one sim::LoggedEvent (recorder log record)
  kTrace = 3,    ///< one dining trace record (encoded by rt/log_io)
  kEndTime = 4,  ///< log trailer: the run's end time (i64)
  kControlBase = 16,
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,    ///< fewer bytes than the header/body claims
  kBadMagic,     ///< first two bytes are not kMagic
  kBadVersion,   ///< version byte mismatch
  kBadLength,    ///< body_len exceeds kMaxBodySize or the buffer
  kBadChecksum,  ///< FNV-1a over kind+body disagrees
  kBadBody,      ///< framing fine, body malformed (bad tag, wrong size)
};

[[nodiscard]] const char* to_string(DecodeStatus s);

/// FNV-1a-32 over `len` bytes starting at `data`, continuing from `seed`
/// (pass the default to start a fresh hash).
[[nodiscard]] inline std::uint32_t fnv1a(const std::uint8_t* data, std::size_t len,
                                         std::uint32_t seed = 2166136261u) {
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

// -- bounds-checked little-endian primitives -------------------------------

/// Serializer over a caller-provided buffer. Overflow latches `ok` false
/// and makes further puts no-ops — callers check once at the end.
class Writer {
 public:
  Writer(std::uint8_t* buf, std::size_t cap) : buf_(buf), cap_(cap) {}

  void u8(std::uint8_t v) { put(&v, 1); }
  void u16(std::uint16_t v) {
    std::uint8_t b[2] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8)};
    put(b, 2);
  }
  void u32(std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, 4);
  }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, 8);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t size() const { return len_; }

 private:
  void put(const std::uint8_t* b, std::size_t n) {
    if (!ok_ || len_ + n > cap_) {
      ok_ = false;
      return;
    }
    std::memcpy(buf_ + len_, b, n);
    len_ += n;
  }

  std::uint8_t* buf_;
  std::size_t cap_;
  std::size_t len_ = 0;
  bool ok_ = true;
};

/// Bounds-checked deserializer. A read past the end latches `ok` false
/// and returns zeros — never touches out-of-range memory.
class Reader {
 public:
  Reader(const std::uint8_t* buf, std::size_t len) : buf_(buf), len_(len) {}

  [[nodiscard]] std::uint8_t u8() {
    std::uint8_t b[1] = {};
    get(b, 1);
    return b[0];
  }
  [[nodiscard]] std::uint16_t u16() {
    std::uint8_t b[2] = {};
    get(b, 2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint8_t b[4] = {};
    get(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint8_t b[8] = {};
    get(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  [[nodiscard]] bool ok() const { return ok_; }
  /// True iff every byte was consumed and nothing over-read.
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == len_; }
  [[nodiscard]] std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

 private:
  void get(std::uint8_t* b, std::size_t n) {
    if (!ok_ || pos_ + n > len_) {
      ok_ = false;
      return;
    }
    std::memcpy(b, buf_ + pos_, n);
    pos_ += n;
  }

  const std::uint8_t* buf_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// -- generic framing -------------------------------------------------------

/// Finalize a frame whose body was written at `buf + kHeaderSize`
/// (`body_len` bytes): fills in the 12-byte header and returns the total
/// frame size. `cap` is the full buffer capacity; returns 0 if the frame
/// does not fit or body_len exceeds kMaxBodySize.
std::size_t seal_frame(std::uint8_t* buf, std::size_t cap, std::uint8_t kind,
                       std::size_t body_len);

/// Parse and verify one frame at the front of `buf`. On kOk, `kind`,
/// `body` and `body_len` describe the verified body (pointing into
/// `buf`). Any failure leaves the outputs untouched.
DecodeStatus open_frame(const std::uint8_t* buf, std::size_t len, std::uint8_t& kind,
                        const std::uint8_t*& body, std::size_t& body_len);

// -- payload encoding ------------------------------------------------------

namespace detail {
template <std::size_t I>
constexpr std::size_t wire_size_of() {
  using T = std::variant_alternative_t<I, Payload>;
  if constexpr (std::is_same_v<T, std::monostate> || std::is_empty_v<T>) {
    return 0;  // canonical empty encoding — no padding byte on the wire
  } else if constexpr (std::is_same_v<T, net::DataSegment>) {
    return 24;  // header word, inner bits word, logical_sent_at
  } else {
    static_assert(is_packable_payload_v<T>, "new oversize alternatives need a codec case");
    return 8;  // canonical pack_payload word
  }
}

template <std::size_t... Is>
constexpr std::array<std::uint8_t, sizeof...(Is)> make_wire_sizes(
    std::index_sequence<Is...>) {
  return {static_cast<std::uint8_t>(wire_size_of<Is>())...};
}
}  // namespace detail

/// Per-tag body size of the payload value (after the tag byte).
inline constexpr std::array<std::uint8_t, std::variant_size_v<Payload>> kPayloadWireSize =
    detail::make_wire_sizes(std::make_index_sequence<std::variant_size_v<Payload>>{});

/// Append `p` (tag byte + value) to `w`.
void encode_payload(const Payload& p, Writer& w);

/// Read one payload (tag byte + value) from `r`. Returns kBadBody on an
/// out-of-range tag or short value; the reader is left latched on error.
DecodeStatus decode_payload(Reader& r, Payload& out);

// -- message / event frames ------------------------------------------------

/// Encode one Message as a complete frame (header + body). Returns the
/// frame size, or 0 if it does not fit in `cap`. `deliver_at` is *not*
/// on the wire — the receiver stamps delivery itself.
std::size_t encode_message(const Message& m, std::uint8_t* buf, std::size_t cap);

/// Decode a verified kMessage body (from open_frame). `deliver_at` is
/// left 0 for the receiver to stamp.
DecodeStatus decode_message(const std::uint8_t* body, std::size_t body_len, Message& out);

/// Encode one LoggedEvent as a complete frame. Returns size or 0.
std::size_t encode_event(const LoggedEvent& ev, std::uint8_t* buf, std::size_t cap);

/// Decode a verified kEvent body.
DecodeStatus decode_event(const std::uint8_t* body, std::size_t body_len, LoggedEvent& out);

}  // namespace ekbd::sim::codec
