/// \file network.hpp
/// Channel bookkeeping: FIFO order, per-edge occupancy, per-layer traffic
/// accounting.
///
/// The Network does not schedule anything itself — the Simulator samples a
/// delay, asks the Network to stamp the message (which enforces per-channel
/// FIFO by never letting a later send undercut an earlier delivery), and
/// schedules the delivery event. Keeping the books here lets the property
/// checkers read off exactly the quantities the paper bounds in §7:
///
///  * at most 4 dining messages in transit per undirected neighbor pair;
///  * quiescence — dining traffic towards a crashed process stops.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace ekbd::sim {

/// Running statistics for one undirected process pair and one layer.
struct ChannelStats {
  int in_transit = 0;       ///< messages currently in flight (both directions)
  int max_in_transit = 0;   ///< high-water mark over the whole run
  std::uint64_t total = 0;  ///< messages ever sent on this pair
};

/// Streaming observer of channel bookkeeping (the §7 monitors ride on
/// this). Notified from stamp()/logical_sent(), i.e. *exactly* when the
/// books change — an observer that mirrors the callbacks agrees with the
/// Network's own books by construction. Implementations must not touch
/// the network or the simulator from inside a callback.
class NetworkWatch {
 public:
  virtual ~NetworkWatch() = default;
  /// Every accounted send (physical in raw mode, logical per
  /// logical_sent in transport mode, plus the transport's own physical
  /// segments on MsgLayer::kTransport).
  virtual void on_send(MsgLayer layer, ProcessId from, ProcessId to, Time at,
                       bool target_crashed) = 0;
  /// The undirected pair's in-transit count just set a new high-water
  /// mark (`in_transit` is the new maximum).
  virtual void on_high_water(MsgLayer layer, ProcessId from, ProcessId to, int in_transit,
                             Time at) = 0;
};

class Network {
 public:
  /// Stamp an outgoing message: assigns `deliver_at` respecting FIFO order
  /// on the (from, to) channel given the sampled `latency`, assigns the
  /// global sequence number, and updates occupancy/traffic books.
  /// `target_crashed` marks sends addressed to an already-crashed process
  /// (they still occupy the channel until their delivery time, when the
  /// simulator drops them). With `fifo` false (model-violation
  /// experiments only) the delivery time ignores the channel's FIFO
  /// horizon and may undercut earlier messages.
  void stamp(Message& m, Time now, Time latency, bool target_crashed, bool fifo = true);

  /// Record that a message reached its delivery time. This MUST be called
  /// for every stamped message exactly once — on normal delivery, on
  /// drop-at-delivery at a crashed target, and on adversarial loss — so
  /// channel occupancy always returns to 0 once the air clears.
  void delivered(const Message& m);

  // -- logical accounting (net::ReliableTransport) ----------------------
  //
  // When an ARQ transport is interposed, physical segments travel on
  // MsgLayer::kTransport while the *logical* messages the paper's §7
  // bounds are about (≤4 dining messages per edge, quiescence toward
  // crashed processes) are tracked here: `logical_sent` when the sender
  // hands a message to the transport, `logical_delivered` when the
  // receiving endpoint releases it to the actor, `logical_dropped` when
  // the sender abandons it (peer crashed and suspected). The same books
  // back both paths, so checkers read `channel()` / `max_in_transit_any`
  // / `sends_to_crashed` identically in raw and transport modes.

  /// Account a logical send on `layer`; returns its global sequence number.
  std::uint64_t logical_sent(ProcessId from, ProcessId to, MsgLayer layer, Time now,
                             bool target_crashed);

  /// A logical message was released to the receiving actor.
  void logical_delivered(ProcessId from, ProcessId to, MsgLayer layer);

  /// A logical message was abandoned by the transport (settles occupancy
  /// exactly like a drop-at-delivery).
  void logical_dropped(ProcessId from, ProcessId to, MsgLayer layer) {
    logical_delivered(from, to, layer);
  }

  /// Stats for the undirected pair {a, b} on `layer` (zeroes if no traffic).
  [[nodiscard]] ChannelStats channel(ProcessId a, ProcessId b, MsgLayer layer) const;

  /// Largest `max_in_transit` over all pairs for `layer`.
  /// For MsgLayer::kDining the paper proves this is at most 4.
  [[nodiscard]] int max_in_transit_any(MsgLayer layer) const;

  /// Total messages ever sent on `layer`.
  [[nodiscard]] std::uint64_t total_sent(MsgLayer layer) const;

  /// Time of the most recent send addressed to `target` on `layer`
  /// (-1 if none).
  [[nodiscard]] Time last_send_to(ProcessId target, MsgLayer layer) const;

  /// Number of messages addressed to `target` on `layer` *after* the
  /// target had crashed. Bounded for the dining layer (quiescence, §7);
  /// unbounded for heartbeats (◇P must monitor forever).
  [[nodiscard]] std::uint64_t sends_to_crashed(ProcessId target, MsgLayer layer) const;

  /// How many distinct undirected pairs ever communicated on `layer`.
  [[nodiscard]] std::size_t active_pairs(MsgLayer layer) const {
    return pair_stats_[static_cast<int>(layer)].size();
  }

  /// Visit every undirected pair that communicated on `layer`, in
  /// ascending (a, b) order (deterministic — snapshot/agreement code
  /// iterates this). a < b in every callback.
  void for_each_pair(MsgLayer layer,
                     const std::function<void(ProcessId a, ProcessId b,
                                              const ChannelStats&)>& fn) const;

  /// Attach (or detach with nullptr) a streaming watch. Not owned. When
  /// detached the books cost exactly what they did before the watch
  /// existed (one null check per stamp).
  void set_watch(NetworkWatch* watch) { watch_ = watch; }

 private:
  static constexpr int kLayers = kNumMsgLayers;

  struct PairKey {
    std::uint64_t key;
    bool operator==(const PairKey& o) const { return key == o.key; }
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      return std::hash<std::uint64_t>{}(k.key);
    }
  };
  static PairKey pair_key(ProcessId a, ProcessId b) {
    auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return PairKey{(lo << 32) | hi};
  }
  static PairKey dir_key(ProcessId from, ProcessId to) {
    return PairKey{(static_cast<std::uint64_t>(from) << 32) |
                   static_cast<std::uint64_t>(to)};
  }

  struct PerTarget {
    Time last_send = -1;
    std::uint64_t after_crash = 0;
  };

  /// Hot-path state of one *directed* channel: the FIFO horizon (latest
  /// deliver_at handed out) plus cached pointers into the undirected
  /// occupancy and per-target quiescence books. unordered_map nodes are
  /// reference-stable, so after the first send on a (direction, layer)
  /// pair, stamp() and delivered() each cost a single hash lookup instead
  /// of three.
  struct DirState {
    Time horizon = 0;
    ChannelStats* stats[kLayers] = {};
    PerTarget* target[kLayers] = {};
  };

  /// Hot-path lookup of the directed-channel state. The simulator numbers
  /// processes densely (0, 1, 2, ...), so for every realistic run the
  /// state lives in a flat stride×stride array — one indexed load, no
  /// hashing, no node chase. Ids beyond kDenseLimit (none exist today)
  /// fall back to the hash map so correctness never depends on the cap.
  DirState& dir_state(ProcessId from, ProcessId to);
  [[nodiscard]] const DirState* find_dir_state(ProcessId from, ProcessId to) const;
  void grow_dense(int need);

  static constexpr int kDenseLimit = 512;

  std::uint64_t next_seq_ = 0;
  std::uint64_t totals_[kLayers] = {};
  // Dense directed-channel state: row stride (power of two) and the
  // stride×stride cell array. Grows geometrically with the largest id
  // seen; cells are re-indexed on growth (their cached pointers are
  // node-stable, so a plain copy is safe).
  int dense_stride_ = 0;
  std::vector<DirState> dense_dir_;
  // Spill map for ids past kDenseLimit.
  std::unordered_map<PairKey, DirState, PairKeyHash> dir_state_;
  // Occupancy per undirected pair and layer.
  std::unordered_map<PairKey, ChannelStats, PairKeyHash> pair_stats_[kLayers];
  // Quiescence books per target process and layer.
  std::unordered_map<ProcessId, PerTarget> per_target_[kLayers];
  NetworkWatch* watch_ = nullptr;
};

// -- hot-path definitions (inline: once per message event, the calls
// must vanish into the simulator's send/deliver paths) -----------------

inline Network::DirState& Network::dir_state(ProcessId from, ProcessId to) {
  const ProcessId hi = from > to ? from : to;
  if (from >= 0 && to >= 0 && hi < kDenseLimit) {
    if (hi >= dense_stride_) grow_dense(hi);
    return dense_dir_[static_cast<std::size_t>(from) * static_cast<std::size_t>(dense_stride_) +
                      static_cast<std::size_t>(to)];
  }
  return dir_state_[dir_key(from, to)];
}

inline const Network::DirState* Network::find_dir_state(ProcessId from, ProcessId to) const {
  const ProcessId hi = from > to ? from : to;
  if (from >= 0 && to >= 0 && hi < kDenseLimit) {
    if (hi >= dense_stride_) return nullptr;
    return &dense_dir_[static_cast<std::size_t>(from) *
                           static_cast<std::size_t>(dense_stride_) +
                       static_cast<std::size_t>(to)];
  }
  const auto it = dir_state_.find(dir_key(from, to));
  return it == dir_state_.end() ? nullptr : &it->second;
}

inline void Network::stamp(Message& m, Time now, Time latency, bool target_crashed,
                           bool fifo) {
  latency = latency < 1 ? 1 : latency;
  Time deliver_at = now + latency;
  DirState& d = dir_state(m.from, m.to);
  if (fifo) {
    if (deliver_at < d.horizon) deliver_at = d.horizon;  // FIFO: never undercut
    d.horizon = deliver_at;
  }

  m.sent_at = now;
  m.deliver_at = deliver_at;
  m.seq = next_seq_++;

  const int li = static_cast<int>(m.layer);
  if (d.stats[li] == nullptr) {
    // First send on this (direction, layer): resolve and cache the book
    // entries (node-based maps — the pointers stay valid forever).
    d.stats[li] = &pair_stats_[li][pair_key(m.from, m.to)];
    d.target[li] = &per_target_[li][m.to];
  }
  ++totals_[li];
  ChannelStats& cs = *d.stats[li];
  ++cs.total;
  ++cs.in_transit;
  const bool high = cs.in_transit > cs.max_in_transit;
  if (high) cs.max_in_transit = cs.in_transit;

  PerTarget& pt = *d.target[li];
  pt.last_send = now;
  if (target_crashed) ++pt.after_crash;

  if (watch_ != nullptr) {
    watch_->on_send(m.layer, m.from, m.to, now, target_crashed);
    if (high) watch_->on_high_water(m.layer, m.from, m.to, cs.in_transit, now);
  }
}

inline void Network::delivered(const Message& m) {
  const int li = static_cast<int>(m.layer);
  // Every delivered message was stamped on the same (direction, layer),
  // so the cached pointer exists.
  const DirState* d = find_dir_state(m.from, m.to);
  if (d != nullptr && d->stats[li] != nullptr) --d->stats[li]->in_transit;
}

}  // namespace ekbd::sim
