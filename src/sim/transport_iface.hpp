/// \file transport_iface.hpp
/// The actor-facing send/timer/clock/rng surface, as one small interface.
///
/// An `Actor` interacts with the world only through its protected helpers
/// (`send`, `set_timer`, `cancel_timer`, `now`, `rng`). Those helpers
/// forward to a `TransportIface` — the seam that lets the *same* protocol
/// code (core/, baseline/, dining/, fd/ modules) execute under two very
/// different engines:
///
///  * `sim::Simulator` — the deterministic discrete-event engine: virtual
///    time, a single global event queue, replayable to the bit;
///  * `rt::Runtime` — the real-concurrency engine (src/rt/): one OS thread
///    per actor, lock-free mailboxes, wall-clock timers.
///
/// The contract every implementation must honor (it is what the paper's
/// model gives each process):
///
///  * handlers of one actor run atomically with respect to each other
///    (never two handlers of the same actor concurrently);
///  * per directed channel, messages are delivered in send order
///    (reliable FIFO channels);
///  * a crashed actor's sends are discarded and its handlers never run
///    again;
///  * `set_timer`/`cancel_timer` for an actor are only called from that
///    actor's own handlers (or before the run starts);
///  * `actor_rng(p)` is a private per-process stream derived purely from
///    (master seed, p) — identical across engines for equal seeds.
#pragma once

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace ekbd::sim {

class Actor;
class Rng;

class TransportIface {
 public:
  virtual ~TransportIface() = default;

  /// Hand `payload` from `from` to the engine for reliable FIFO delivery
  /// to `to`. A crashed sender's messages are silently discarded.
  virtual void send(ProcessId from, ProcessId to, const Payload& payload,
                    MsgLayer layer) = 0;

  /// Arm a one-shot timer for `owner`, `delay` ticks from now. Only ever
  /// called from `owner`'s own handlers (or before the run starts).
  virtual TimerId set_timer(ProcessId owner, Time delay) = 0;

  /// Cancel a pending timer of `owner` (no-op if it already fired or was
  /// never armed). Same calling restriction as `set_timer`.
  virtual void cancel_timer(ProcessId owner, TimerId id) = 0;

  /// Current time in ticks: virtual time under the simulator, elapsed
  /// wall-clock ticks under the real-threads runtime.
  [[nodiscard]] virtual Time now() const = 0;

  /// `p`'s private random stream, derived purely from (seed, p). Only
  /// touched from `p`'s own handlers.
  virtual Rng& actor_rng(ProcessId p) = 0;

 protected:
  /// Registration hook for engines: wires an actor to this engine under
  /// the given id. Protected static so every TransportIface subclass can
  /// bind actors without `Actor` naming each engine as a friend.
  static void bind(Actor& actor, TransportIface* ctx, ProcessId id);
};

}  // namespace ekbd::sim
