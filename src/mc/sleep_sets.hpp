/// \file sleep_sets.hpp
/// Sleep-set partial-order reduction for the stateless explorer.
///
/// Sleep sets (Godefroid) prune schedules that only permute *independent*
/// events: once the subtree below choice `a` has been explored, a sibling
/// subtree below `b` need not re-fire `a` first if `a` and `b` commute —
/// the state `s·b·a` is equivalent to the already-visited `s·a·b`. Sleep
/// sets alone (no persistent sets) still visit every reachable state at
/// least once, so per-step invariant checking and deadlock detection lose
/// nothing; only redundant interleavings disappear.
///
/// The independence oracle is derived from the model's one ordering law,
/// per-channel FIFO: two pending *message* deliveries at distinct
/// recipient processes commute. Delivering to p touches only p's actor
/// state; p's handler emits messages exclusively on channels (p, *), so
/// two handlers at distinct processes append to disjoint channels and the
/// per-channel FIFO ranks come out identical in either order. Neither
/// delivery can disable the other (messages are never withdrawn, and a
/// channel head stays the head when later sends append behind it). The
/// two orders differ only in the simulator's internal id assignment for
/// events *created* by the handlers — an isomorphism no invariant can
/// observe, since worlds check semantic state, never raw event ids.
///
/// Timers, scheduled callbacks (crash injections, meal endings) and
/// same-recipient messages are conservatively treated as dependent on
/// everything. Soundness caveat, documented in docs/MODELCHECK.md: the
/// oracle assumes handlers do not branch on the controlled-mode tick
/// counter (`now()`), because commuting two deliveries swaps their tick
/// stamps. Worlds with tick-scripted detector lies must explore with
/// `Options::sleep_sets = false`.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace ekbd::mc {

/// True iff executing `a` and `b` in either order from any state where
/// both are eligible reaches the same state (up to event-id renaming).
[[nodiscard]] bool independent(const sim::PendingEvent& a, const sim::PendingEvent& b);

/// A sleep set is the ids of currently-pending events whose subtrees are
/// already covered by sibling branches. Kept sorted for cheap lookup.
using SleepSet = std::vector<std::uint64_t>;

[[nodiscard]] bool sleeping(const SleepSet& sleep, std::uint64_t id);

/// The sleep set for the child reached by firing `chosen` from a node with
/// eligible set `eligible`: inherited sleepers and already-explored prior
/// siblings survive iff they commute with `chosen`.
///
/// \param eligible        the node's full eligible set (sleepers included)
/// \param parent_sleep    ids asleep at the node (each present in eligible)
/// \param explored_siblings  sibling choices whose subtrees are already
///                           scheduled for exploration (fired before `chosen`
///                           in the node's canonical id order)
[[nodiscard]] SleepSet child_sleep_set(const std::vector<sim::PendingEvent>& eligible,
                                       const SleepSet& parent_sleep,
                                       const std::vector<sim::PendingEvent>& explored_siblings,
                                       const sim::PendingEvent& chosen);

}  // namespace ekbd::mc
