/// \file explorer.hpp
/// Systematic interleaving exploration (stateless, parallel model checking).
///
/// The paper's proofs quantify over *all* asynchronous executions; timed
/// simulation samples only a few schedules per seed. The explorer closes
/// the gap for small configurations: running the simulator in
/// `ExecMode::kControlled`, it enumerates every legal order of pending
/// events (respecting per-channel FIFO — the only ordering constraint the
/// model imposes) and checks a user invariant after every step.
///
/// Exploration is *stateless* (à la dCDPW/Shuttle): a path is a sequence
/// of choice indices, and each node is reached by rebuilding the world
/// from its factory and replaying the prefix — actors need no snapshot
/// support. Statelessness is also what makes the search parallel for
/// free: any subtree can be handed to another worker as (prefix, sleep
/// set) and replayed there in a private `World`, so the `Simulator` stays
/// single-threaded per world. Subtrees are sharded across a work-stealing
/// pool (`Options::threads`); random walks run as independently-seeded
/// parallel shards. Sleep-set partial-order reduction
/// (`Options::sleep_sets`, see sleep_sets.hpp) prunes schedules that only
/// permute commuting deliveries, which is what makes exhaustive 3–4
/// process worlds tractable.
///
/// Determinism guarantee: as long as the node budget is not exhausted,
/// `Result` is bit-identical for ANY thread count — counters are
/// node-local sums over a search tree whose shape depends only on
/// `Options`, and when several schedules violate, the lexicographically
/// least counterexample wins the merge. (With `fail_fast`, or once
/// `max_nodes` trips mid-search, workers race to stop and counts become
/// timing-dependent; docs/MODELCHECK.md spells out the argument.)
///
/// Used by tests/mc_test.cpp and tests/mc_parallel_test.cpp to verify,
/// over *every* schedule of small instances of Algorithm 1: fork/token
/// uniqueness, exclusion (with a truthful oracle), absence of deadlock,
/// and termination of every meal; and by bench/e13_modelcheck to report
/// state counts and the threads × reduction grid.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace ekbd::mc {

/// One self-contained execution universe. The factory must produce
/// identical worlds on every call (same seeds, same wiring): statelessness
/// depends on replay determinism. Factories are invoked concurrently from
/// pool workers, so they must also be thread-safe (pure construction from
/// immutable captures — the usual `[] { return std::make_unique<W>(); }` —
/// qualifies); each produced World itself is only ever driven by one
/// worker at a time.
class World {
 public:
  virtual ~World() = default;

  /// The controlled-mode simulator driving this world.
  virtual ekbd::sim::Simulator& simulator() = 0;

  /// Check safety invariants; return "" if fine, else a description.
  /// Called after every executed event.
  [[nodiscard]] virtual std::string check() = 0;

  /// Has the execution reached its goal (e.g. everyone has eaten)?
  /// A world with no eligible events that is not done is a deadlock.
  [[nodiscard]] virtual bool done() = 0;
};

using WorldFactory = std::function<std::unique_ptr<World>()>;

/// Fairness predicate a lasso must satisfy to count as a liveness
/// violation (see liveness.hpp; explore() ignores this). The paper's P3
/// assumes weak fairness of *actions*; the daemon taxonomy of the related
/// work motivates the per-process and k-bounded variants.
enum class Fairness {
  /// Any cycle counts — even one that perpetually ignores a deliverable
  /// message. Useful to inspect raw cycles, useless for certification.
  kNone,
  /// Weak fairness per process: a process with some continuously
  /// available event must be activated infinitely often.
  kWeakActor,
  /// Weak fairness per event: an event that stays eligible forever must
  /// eventually fire — the paper's "every enabled action is eventually
  /// executed". Strongest predicate, so certification under it is the
  /// claim the paper makes.
  kWeakEvent,
  /// A k-bounded daemon: weak-event fair AND the witness cycle activates
  /// every continuously-enabled process within `fairness_k` activations
  /// of any other. Violations under this are starvation that even the
  /// most restrictive daemon class in the taxonomy can exhibit.
  kKBounded,
};

struct Options {
  std::size_t max_depth = 60;        ///< truncate paths longer than this
  /// Exploration budget: schedule steps + replayed events. Results are
  /// only guaranteed thread-count-deterministic while under budget.
  std::uint64_t max_nodes = 500'000;
  bool include_timers = true;        ///< offer timer events as choices
  /// When > 0: instead of exhaustive DFS, run this many uniformly random
  /// schedules to completion (or max_depth), as independently-seeded
  /// shards (shard layout is a function of the options alone, so the
  /// outcome is identical for any thread count).
  std::uint64_t random_walks = 0;
  std::uint64_t seed = 1;            ///< randomness for random walks
  /// Worker threads sharing the search (0 = hardware concurrency). Any
  /// value yields the same Result; more threads only buy wall-clock.
  std::size_t threads = 1;
  /// Sleep-set partial-order reduction (DFS only). Sound for worlds whose
  /// handlers do not branch on the controlled-mode tick counter — see
  /// sleep_sets.hpp for the commutativity argument and the caveat.
  bool sleep_sets = false;
  /// Stop all workers at the first violation instead of draining the
  /// search. Faster on buggy worlds, but with threads > 1 the winning
  /// counterexample and the counters become timing-dependent. (In
  /// check_liveness the stop happens at a level boundary, so liveness
  /// results stay deterministic even with fail_fast.)
  bool fail_fast = false;
  /// Liveness checking only (check_liveness; explore() ignores both):
  /// which schedules an infinite hungry cycle must admit to be reported.
  Fairness fairness = Fairness::kWeakEvent;
  /// The k of Fairness::kKBounded.
  int fairness_k = 2;
};

struct Result {
  std::uint64_t nodes_executed = 0;   ///< distinct schedule steps executed
  std::uint64_t replayed_events = 0;  ///< prefix-replay overhead (stateless cost)
  std::uint64_t paths_completed = 0;  ///< schedules that reached done()
  std::uint64_t paths_truncated = 0;  ///< schedules cut at max_depth
  std::uint64_t sleep_pruned = 0;     ///< choices skipped by sleep sets
  std::size_t max_depth_seen = 0;
  bool budget_exhausted = false;
  /// Wall-clock duration of the explore() call. The one field OUTSIDE the
  /// determinism guarantee: it measures the machine, not the search —
  /// compare counters across runs, never this. Feeds
  /// obs::collect_mc_metrics (states/sec).
  double wall_seconds = 0.0;

  // Liveness-pass exploration stats (check_liveness; 0 after explore()).
  // Counted so E13 and E23 report comparable exploration costs.
  std::uint64_t unique_states = 0;  ///< distinct semantic states in the graph
  std::uint64_t scc_count = 0;      ///< non-trivial SCCs (cycles) found
  std::uint64_t fair_cycles = 0;    ///< SCCs admitting a fair hungry-forever run

  // First failure found (if any). A violating step ends its own schedule
  // but (without fail_fast) not the search, so the reported counterexample
  // is the lexicographically least violating path — deterministic.
  bool violation_found = false;
  std::string violation;              ///< invariant message or "deadlock"
  std::vector<std::uint64_t> counterexample;  ///< event ids along the path
  /// Lasso shape of the counterexample (check_liveness only): the first
  /// `stem_length` ids reach the cycle, the last `cycle_length` ids close
  /// it — re-firing the cycle forever is the infinite violating run. A
  /// safety/deadlock counterexample has cycle_length == 0.
  std::uint64_t stem_length = 0;
  std::uint64_t cycle_length = 0;
  /// Non-empty when the *options* were rejected (e.g. sleep sets with
  /// liveness checking) — no exploration happened and no verdict exists.
  std::string config_error;

  [[nodiscard]] bool ok() const { return !violation_found && config_error.empty(); }
};

/// Explore schedules of worlds made by `factory` under `options`.
/// Exhaustive DFS by default; random walks if options.random_walks > 0.
Result explore(const WorldFactory& factory, const Options& options);

/// Outcome of re-driving a recorded path through a fresh world.
struct ReplayOutcome {
  bool valid = false;        ///< every event id executed legally, in order
  std::size_t fired = 0;     ///< events successfully executed
  /// First non-empty World::check() along the replay; if the path ends
  /// with no eligible events and done() false, the explorer's deadlock
  /// message. Empty if the replayed schedule is clean.
  std::string violation;

  /// Round-trip guard: the replay ran to the end and reproduced exactly
  /// the recorded violation at its final step.
  [[nodiscard]] bool reproduced(const std::string& expected, std::size_t path_len) const {
    return valid && fired == path_len && violation == expected;
  }
};

/// Feed a `Result::counterexample` (or any recorded path) back through a
/// fresh controlled-mode world: replays each event id in order, checking
/// invariants after every step. The returned outcome reports whether the
/// recorded violation reproduces — the round-trip guarantee the stateless
/// prefix-replay machinery depends on. Pass the same `options` the
/// exploration used so deadlock detection honors `include_timers`.
ReplayOutcome replay_counterexample(const WorldFactory& factory,
                                    const std::vector<std::uint64_t>& path,
                                    const Options& options = {});

}  // namespace ekbd::mc
