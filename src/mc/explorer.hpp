/// \file explorer.hpp
/// Systematic interleaving exploration (stateless model checking).
///
/// The paper's proofs quantify over *all* asynchronous executions; timed
/// simulation samples only a few schedules per seed. The explorer closes
/// the gap for small configurations: running the simulator in
/// `ExecMode::kControlled`, it enumerates every legal order of pending
/// events (respecting per-channel FIFO — the only ordering constraint the
/// model imposes) and checks a user invariant after every step.
///
/// Exploration is *stateless* (à la dCDPW/Shuttle): a path is a sequence of
/// choice indices, and each node is reached by rebuilding the world from
/// its factory and replaying the prefix — actors need no snapshot support.
/// Costs O(depth) per node; fine for the 2–3 process worlds where
/// exhaustive exploration is meaningful. For larger worlds, the random-
/// walk mode samples many schedules uniformly instead.
///
/// Used by tests/mc_test.cpp to verify, over *every* schedule of a
/// two-diner instance of Algorithm 1: fork/token uniqueness, exclusion
/// (with a truthful oracle), absence of deadlock, and termination of both
/// meals; and by bench/e13_modelcheck to report state counts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace ekbd::mc {

/// One self-contained execution universe. The factory must produce
/// identical worlds on every call (same seeds, same wiring): statelessness
/// depends on replay determinism.
class World {
 public:
  virtual ~World() = default;

  /// The controlled-mode simulator driving this world.
  virtual ekbd::sim::Simulator& simulator() = 0;

  /// Check safety invariants; return "" if fine, else a description.
  /// Called after every executed event.
  [[nodiscard]] virtual std::string check() = 0;

  /// Has the execution reached its goal (e.g. everyone has eaten)?
  /// A world with no eligible events that is not done is a deadlock.
  [[nodiscard]] virtual bool done() = 0;
};

using WorldFactory = std::function<std::unique_ptr<World>()>;

struct Options {
  std::size_t max_depth = 60;        ///< truncate paths longer than this
  std::uint64_t max_nodes = 500'000; ///< exploration budget (events executed)
  bool include_timers = true;        ///< offer timer events as choices
  /// When > 0: instead of exhaustive DFS, run this many uniformly random
  /// schedules to completion (or max_depth).
  std::uint64_t random_walks = 0;
  std::uint64_t seed = 1;            ///< randomness for random walks
};

struct Result {
  std::uint64_t nodes_executed = 0;   ///< events fired across all replays
  std::uint64_t paths_completed = 0;  ///< schedules that reached done()
  std::uint64_t paths_truncated = 0;  ///< schedules cut at max_depth
  std::size_t max_depth_seen = 0;
  bool budget_exhausted = false;

  // First failure found (if any):
  bool violation_found = false;
  std::string violation;              ///< invariant message or "deadlock"
  std::vector<std::uint64_t> counterexample;  ///< event ids along the path

  [[nodiscard]] bool ok() const { return !violation_found; }
};

/// Explore schedules of worlds made by `factory` under `options`.
/// Exhaustive DFS by default; random walks if options.random_walks > 0.
Result explore(const WorldFactory& factory, const Options& options);

}  // namespace ekbd::mc
