#include "mc/pool.hpp"

#include <utility>

namespace ekbd::mc {

namespace {
/// Index of the worker the current thread is, or npos on non-pool threads.
constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);
thread_local std::size_t t_worker_index = kNotAWorker;
}  // namespace

std::size_t WorkStealingPool::resolve(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

WorkStealingPool::WorkStealingPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  shards_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkStealingPool::submit(Task task) {
  // A worker pushes onto its own deque (popped LIFO by itself, stolen FIFO
  // by others); external threads scatter round-robin.
  const std::size_t me = t_worker_index;
  const std::size_t shard = me != kNotAWorker && me < shards_.size()
                                ? me
                                : rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shards_[shard]->mu);
    shards_[shard]->q.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: ensures a worker between its failed scan and
    // its wait observes the new queued_ value (no missed wakeup).
    std::lock_guard<std::mutex> lock(mu_);
  }
  work_cv_.notify_one();
}

bool WorkStealingPool::next_task(std::size_t me, Task& out) {
  {  // own deque, newest first
    Shard& mine = *shards_[me];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.q.empty()) {
      out = std::move(mine.q.back());
      mine.q.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal oldest-first from the others, starting after ourselves.
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    Shard& victim = *shards_[(me + k) % shards_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.q.empty()) {
      out = std::move(victim.q.front());
      victim.q.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker(std::size_t me) {
  t_worker_index = me;
  for (;;) {
    Task task;
    if (next_task(me, task)) {
      task();
      task = nullptr;  // release captures before signalling completion
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    work_cv_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void WorkStealingPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

}  // namespace ekbd::mc
