/// \file liveness.hpp
/// Bounded-liveness model checking: fair-lasso detection over the
/// controlled-mode state graph.
///
/// explore() (explorer.hpp) checks *safety* over every schedule: each
/// path either completes, truncates, or violates an invariant. The
/// paper's headline claims P3 (every correct hungry process eventually
/// eats) and P4 (eventual 2-bounded waiting) are *liveness* properties:
/// their counterexamples are infinite schedules. On a finite semantic
/// state graph an infinite schedule is a lasso — a stem followed by a
/// cycle repeated forever — so liveness checking reduces to finding a
/// cycle in which some process is hungry at every state while the cycle
/// admits a schedule satisfying the chosen fairness predicate
/// (Options::fairness). This is the standard fair-cycle formulation
/// (Aspnes, *Notes on Theory of Distributed Systems*; lasso detection à
/// la nested DFS / SCC analysis).
///
/// Mechanics: check_liveness() builds the semantic state graph
/// explicitly by level-synchronized parallel BFS over the same stateless
/// engine explore() uses — a state is rebuilt from the factory by
/// replaying its witness path, every eligible event is fired, and the
/// successor is identified by a tick-free *state key* (the world's
/// contribution via LivenessWorld::state_key plus the simulator's via
/// Simulator::controlled_state_key). Safety invariants (World::check)
/// and deadlocks are still checked at every edge, so a liveness run
/// subsumes a safety run over the same graph. SCC analysis (Tarjan) then
/// looks for non-trivial SCCs whose every state has a common hungry
/// process and which admit a fair infinite run; for such an SCC a
/// concrete witness lasso is constructed that fires every
/// always-eligible event at least once per cycle lap.
///
/// Edge identity across rebuilds: controlled-mode event ids are fresh on
/// every replay, so edges are labeled *semantically* — a message by its
/// directed channel (per-channel FIFO means at most one is eligible),
/// timers and scheduled closures by LivenessWorld::event_fingerprint.
/// Labels must be distinct within a state's eligible set and stable
/// across revisits of the same semantic state; the engine verifies
/// distinctness at every expansion and reports a config error otherwise.
///
/// The fairness argument leans on a monotonicity property of the
/// controlled simulator: an eligible event stays eligible until *it* is
/// fired (a FIFO head stays the head; timers and scheduled events never
/// lapse). Hence within an SCC either an always-eligible label is fired
/// on some internal edge — and a run touring all internal edges is
/// weakly fair — or no run confined to the SCC is fair at all. That
/// makes the per-SCC fairness check exact, not heuristic. (Worlds must
/// not cancel timers for this to hold; the dining worlds never do.)
///
/// Determinism: same guarantee as explore(). The graph, its SCCs and
/// the witness lasso are pure functions of (factory, options); the BFS
/// merges frontier results in deterministic order at every level, so the
/// Result is bit-identical for any Options::threads — tested for 1/2/8.
///
/// Soundness caveats (docs/MODELCHECK.md "Liveness checking"):
///  * Sleep sets prune *orderings*, which is exactly what fairness
///    predicates observe — check_liveness therefore refuses
///    options.sleep_sets with Result::config_error rather than silently
///    returning an unsound verdict.
///  * The verdict is a proof only when the graph was built to the end:
///    paths_truncated == 0 (no state hit max_depth unexpanded) and
///    !budget_exhausted. Otherwise it is a bounded-liveness statement:
///    no fair hungry cycle within the explored radius.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "sim/simulator.hpp"

namespace ekbd::mc {

/// A World that additionally exposes the semantic identity the liveness
/// engine needs: a tick-free state key, the hungry set, and stable
/// fingerprints for its timers and scheduled choices.
class LivenessWorld : public World {
 public:
  /// Append this world's semantic state: actor state machines, harness
  /// counters (bounded! cap anything that can grow), pending scheduled
  /// *intents*. Must be a pure function of semantic state — never include
  /// now(), event ids, or unbounded history like the trace.
  virtual void state_key(std::vector<std::uint64_t>& out) const = 0;

  /// Bit p set iff process p currently waits for the resource (hungry and
  /// live for dining; thirsty for drinking). A violation is a fair cycle
  /// on whose every state some common bit stays set.
  [[nodiscard]] virtual std::uint64_t hungry_mask() const = 0;

  /// Semantic label of a pending timer or scheduled event (messages are
  /// labeled by their channel; this is never called for them). Must be
  /// distinct among simultaneously pending events, stable across
  /// revisits of the same semantic state, and < 2^60.
  [[nodiscard]] virtual std::uint64_t event_fingerprint(
      const ekbd::sim::PendingEvent& ev) const = 0;
};

using LivenessWorldFactory = std::function<std::unique_ptr<LivenessWorld>()>;

/// Machine-checkable refusal messages (Result::config_error).
inline constexpr const char* kLivenessSleepSetRefusal =
    "config: sleep sets prune orderings and are unsound for liveness checking";
inline constexpr const char* kLivenessRandomWalkRefusal =
    "config: liveness checking is exhaustive; random_walks is unsupported";

/// Violation message prefix for a fair hungry cycle (the full message
/// names the starving process and the fairness predicate).
inline constexpr const char* kLivenessViolationPrefix = "liveness:";

/// Build the semantic state graph of `factory`'s world and search it for
/// fair hungry-forever cycles (and, along the way, safety violations and
/// deadlocks). On violation, Result::counterexample holds a replayable
/// stem+cycle event-id path (stem_length / cycle_length give the split);
/// safety violations win over lassos when both exist, each chosen
/// lexicographically least. Certification (the P3/P4 proof) additionally
/// requires paths_truncated == 0 and !budget_exhausted.
Result check_liveness(const LivenessWorldFactory& factory, const Options& options);

/// Outcome of re-driving a lasso counterexample for `laps` cycle laps.
struct LassoReplay {
  bool valid = false;         ///< stem and every lap replayed legally
  std::size_t laps_closed = 0;  ///< laps after which the state key matched
  /// First non-empty World::check() along the replay (safety lassos).
  std::string violation;
  /// Every event id fired, in order (stem, then laps — fresh ids per lap).
  std::vector<std::uint64_t> fired;
  /// The world after the final lap — hand its trace to the post-hoc
  /// checkers (check_wait_freedom, overtake_census) for the cross-check.
  std::unique_ptr<LivenessWorld> world;
};

/// Replay a check_liveness lasso through a fresh world: the stem and
/// first lap by recorded event ids, laps >= 2 by semantic label (ids are
/// fresh each lap). After every lap the state key is compared against the
/// cycle entry — `laps_closed == laps` is the mechanical proof that the
/// counterexample really is a cycle, i.e. extends to an infinite run.
LassoReplay unroll_lasso(const LivenessWorldFactory& factory, const Result& result,
                         std::size_t laps, const Options& options);

}  // namespace ekbd::mc
