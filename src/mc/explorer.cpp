#include "mc/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "mc/pool.hpp"
#include "mc/sleep_sets.hpp"
#include "sim/rng.hpp"

namespace ekbd::mc {

using ekbd::sim::PendingEvent;

namespace {

constexpr const char* kDeadlock = "deadlock: no eligible events but goal not reached";
constexpr const char* kDiverged = "non-deterministic factory: replay diverged";

/// The choice set at a node: eligible events, optionally sans timers.
std::vector<PendingEvent> choices(World& world, const Options& opt) {
  std::vector<PendingEvent> evs = world.simulator().eligible_events();
  if (!opt.include_timers) {
    std::erase_if(evs, [](const PendingEvent& ev) {
      return ev.kind == PendingEvent::Kind::kTimer;
    });
  }
  return evs;  // sorted by id (map order) — the canonical sibling order
}

/// Everything the DFS workers share. Counters are node-local sums over a
/// search tree whose shape is a pure function of (factory, options), so
/// their totals are identical for any thread count; the only shared
/// *decision* state is the best-violation record, merged by lexicographic
/// order so the winner is schedule-independent too.
struct Search {
  Search(const WorldFactory& f, const Options& o, WorkStealingPool& p)
      : factory(f), opt(o), pool(p) {}

  const WorldFactory& factory;
  const Options& opt;
  WorkStealingPool& pool;

  std::atomic<std::uint64_t> nodes{0};      // frontier steps (distinct tree edges)
  std::atomic<std::uint64_t> replays{0};    // prefix re-execution overhead
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> truncated{0};
  std::atomic<std::uint64_t> sleep_pruned{0};
  std::atomic<std::size_t> max_depth{0};
  std::atomic<bool> budget_exhausted{false};
  std::atomic<bool> cancelled{false};

  std::mutex violation_mu;
  bool violation_found = false;
  std::string violation;
  std::vector<std::uint64_t> counterexample;

  [[nodiscard]] std::uint64_t spent() const {
    return nodes.load(std::memory_order_relaxed) + replays.load(std::memory_order_relaxed);
  }
};

void note_depth(Search& s, std::size_t depth) {
  std::size_t seen = s.max_depth.load(std::memory_order_relaxed);
  while (depth > seen &&
         !s.max_depth.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

void record_violation(Search& s, std::string message, std::vector<std::uint64_t> path) {
  std::lock_guard<std::mutex> lock(s.violation_mu);
  if (!s.violation_found ||
      std::lexicographical_compare(path.begin(), path.end(), s.counterexample.begin(),
                                   s.counterexample.end())) {
    s.violation_found = true;
    s.violation = std::move(message);
    s.counterexample = std::move(path);
  }
  if (s.opt.fail_fast) s.cancelled.store(true, std::memory_order_relaxed);
}

/// Rebuild a world and replay a prefix. Replayed events count against the
/// budget but not as schedule steps (they revisit known states). Returns
/// nullptr on divergence (recorded as a violation by the caller).
std::unique_ptr<World> rebuild(Search& s, const std::vector<std::uint64_t>& prefix) {
  auto world = s.factory();
  world->simulator().start();
  for (std::uint64_t id : prefix) {
    if (!world->simulator().execute_event(id)) return nullptr;
    s.replays.fetch_add(1, std::memory_order_relaxed);
  }
  return world;
}

/// Execute one frontier event, charging the budget. False means "stop":
/// either the budget tripped (flagged) or replay diverged (recorded).
bool fire(Search& s, World& world, const std::vector<std::uint64_t>& prefix, std::uint64_t id) {
  if (s.spent() >= s.opt.max_nodes) {
    s.budget_exhausted.store(true, std::memory_order_relaxed);
    s.cancelled.store(true, std::memory_order_relaxed);
    return false;
  }
  if (!world.simulator().execute_event(id)) {
    auto path = prefix;
    path.push_back(id);
    record_violation(s, kDiverged, std::move(path));
    return false;
  }
  s.nodes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void explore_node(Search& s, std::unique_ptr<World> world, std::vector<std::uint64_t> path,
                  SleepSet sleep);

/// Fire `child` on a world positioned at `prefix`, check, and descend.
void step_into(Search& s, std::unique_ptr<World> world, std::vector<std::uint64_t> prefix,
               std::uint64_t child, SleepSet sleep) {
  if (!fire(s, *world, prefix, child)) return;
  prefix.push_back(child);
  std::string err = world->check();
  if (!err.empty()) {
    // A violating step ends its schedule; siblings keep exploring so the
    // merged counterexample is the lexicographically least one.
    note_depth(s, prefix.size());
    record_violation(s, std::move(err), std::move(prefix));
    return;
  }
  explore_node(s, std::move(world), std::move(prefix), std::move(sleep));
}

/// Hand a subtree to the pool: the job replays the prefix in a private
/// world instance, then steps into the child. Forking costs one replay —
/// exactly what exploring the non-final sibling inline would cost — so the
/// explorer forks whenever workers are starving.
void fork_subtree(Search& s, std::vector<std::uint64_t> prefix, std::uint64_t child,
                  SleepSet sleep) {
  s.pool.submit([&s, prefix = std::move(prefix), child, sleep = std::move(sleep)]() mutable {
    if (s.cancelled.load(std::memory_order_relaxed)) return;
    auto world = rebuild(s, prefix);
    if (!world) {
      record_violation(s, kDiverged, std::move(prefix));
      return;
    }
    step_into(s, std::move(world), std::move(prefix), child, std::move(sleep));
  });
}

/// Core DFS. `world` is positioned at `path`'s state (already checked).
/// The final sibling reuses `world` in place (tail loop, no replay); the
/// others replay — either inline or, when workers are starving, as a
/// forked job. Which siblings fork affects wall-clock only: both routes
/// replay the same prefix, so every counter stays schedule-independent.
void explore_node(Search& s, std::unique_ptr<World> world, std::vector<std::uint64_t> path,
                  SleepSet sleep) {
  for (;;) {
    if (s.cancelled.load(std::memory_order_relaxed)) return;
    note_depth(s, path.size());

    const std::vector<PendingEvent> eligible = choices(*world, s.opt);
    if (eligible.empty()) {
      if (world->done()) {
        s.completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        record_violation(s, kDeadlock, path);
      }
      return;
    }
    if (path.size() >= s.opt.max_depth) {
      s.truncated.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    std::vector<PendingEvent> runnable;
    runnable.reserve(eligible.size());
    for (const PendingEvent& ev : eligible) {
      if (!s.opt.sleep_sets || !sleeping(sleep, ev.id)) runnable.push_back(ev);
    }
    s.sleep_pruned.fetch_add(eligible.size() - runnable.size(), std::memory_order_relaxed);
    if (runnable.empty()) return;  // every continuation covered by a sibling subtree

    std::vector<PendingEvent> explored;  // prior siblings, canonical id order
    explored.reserve(runnable.size() - 1);
    for (std::size_t i = 0; i + 1 < runnable.size(); ++i) {
      if (s.cancelled.load(std::memory_order_relaxed)) return;
      const PendingEvent& c = runnable[i];
      SleepSet child_sleep =
          s.opt.sleep_sets ? child_sleep_set(eligible, sleep, explored, c) : SleepSet{};
      if (s.pool.size() > 1 && s.pool.hungry()) {
        fork_subtree(s, path, c.id, std::move(child_sleep));
      } else {
        auto sibling = rebuild(s, path);
        if (!sibling) {
          record_violation(s, kDiverged, path);
          return;
        }
        step_into(s, std::move(sibling), path, c.id, std::move(child_sleep));
      }
      explored.push_back(c);
    }

    // Final sibling: descend in place.
    const PendingEvent& last = runnable.back();
    SleepSet last_sleep =
        s.opt.sleep_sets ? child_sleep_set(eligible, sleep, explored, last) : SleepSet{};
    if (!fire(s, *world, path, last.id)) return;
    path.push_back(last.id);
    std::string err = world->check();
    if (!err.empty()) {
      note_depth(s, path.size());
      record_violation(s, std::move(err), std::move(path));
      return;
    }
    sleep = std::move(last_sleep);
  }
}

Result run_dfs(const WorldFactory& factory, const Options& opt, WorkStealingPool& pool) {
  Search s{factory, opt, pool};
  pool.submit([&s] {
    auto world = s.factory();
    world->simulator().start();
    explore_node(s, std::move(world), {}, {});
  });
  pool.wait_idle();

  Result result;
  result.nodes_executed = s.nodes.load();
  result.replayed_events = s.replays.load();
  result.paths_completed = s.completed.load();
  result.paths_truncated = s.truncated.load();
  result.sleep_pruned = s.sleep_pruned.load();
  result.max_depth_seen = s.max_depth.load();
  result.budget_exhausted = s.budget_exhausted.load();
  result.violation_found = s.violation_found;
  result.violation = std::move(s.violation);
  result.counterexample = std::move(s.counterexample);
  return result;
}

// ---------------------------------------------------------- random walks --

/// Walk shards are a pure function of the options — a fixed shard count,
/// per-shard seeds forked from opt.seed and per-shard slices of the walk
/// and node budgets — so S shards produce the same merged Result whether
/// one worker runs them all or eight run them concurrently.
struct WalkShard {
  std::uint64_t walks = 0;
  std::uint64_t seed = 0;
  std::uint64_t node_budget = 0;
  Result result;
};

void run_walk_shard(const WorldFactory& factory, const Options& opt, WalkShard& shard,
                    const std::atomic<bool>& cancelled) {
  ekbd::sim::Rng rng(shard.seed);
  Result& r = shard.result;
  for (std::uint64_t walk = 0; walk < shard.walks; ++walk) {
    if (r.violation_found || cancelled.load(std::memory_order_relaxed)) return;
    auto world = factory();
    world->simulator().start();
    std::vector<std::uint64_t> path;
    while (path.size() < opt.max_depth) {
      if (r.nodes_executed >= shard.node_budget) {
        r.budget_exhausted = true;
        return;
      }
      const auto evs = choices(*world, opt);
      if (evs.empty()) break;
      const std::uint64_t id = evs[rng.index(evs.size())].id;
      if (!world->simulator().execute_event(id)) break;
      ++r.nodes_executed;
      path.push_back(id);
      r.max_depth_seen = std::max(r.max_depth_seen, path.size());
      std::string err = world->check();
      if (!err.empty()) {
        r.violation_found = true;
        r.violation = std::move(err);
        r.counterexample = path;
        return;
      }
    }
    if (choices(*world, opt).empty()) {
      if (world->done()) {
        ++r.paths_completed;
      } else {
        r.violation_found = true;
        r.violation = kDeadlock;
        r.counterexample = path;
        return;
      }
    } else {
      ++r.paths_truncated;
    }
  }
}

Result run_walks(const WorldFactory& factory, const Options& opt, WorkStealingPool& pool) {
  const std::uint64_t shard_count = std::min<std::uint64_t>(opt.random_walks, 64);
  std::vector<WalkShard> shards(shard_count);
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    shards[i].walks = opt.random_walks / shard_count + (i < opt.random_walks % shard_count);
    shards[i].seed = ekbd::sim::Rng(opt.seed).fork(i + 1).u64();
    shards[i].node_budget = opt.max_nodes / shard_count + (i < opt.max_nodes % shard_count);
  }
  std::atomic<bool> cancelled{false};
  for (WalkShard& shard : shards) {
    pool.submit([&factory, &opt, &shard, &cancelled] {
      run_walk_shard(factory, opt, shard, cancelled);
      if (shard.result.violation_found && opt.fail_fast) {
        cancelled.store(true, std::memory_order_relaxed);
      }
    });
  }
  pool.wait_idle();

  // Deterministic merge: counters sum; the lowest-indexed violating shard
  // supplies the counterexample (without fail_fast every shard runs to its
  // own conclusion, so the winner is thread-count-independent).
  Result merged;
  for (const WalkShard& shard : shards) {
    const Result& r = shard.result;
    merged.nodes_executed += r.nodes_executed;
    merged.paths_completed += r.paths_completed;
    merged.paths_truncated += r.paths_truncated;
    merged.max_depth_seen = std::max(merged.max_depth_seen, r.max_depth_seen);
    merged.budget_exhausted = merged.budget_exhausted || r.budget_exhausted;
    if (r.violation_found && !merged.violation_found) {
      merged.violation_found = true;
      merged.violation = r.violation;
      merged.counterexample = r.counterexample;
    }
  }
  return merged;
}

}  // namespace

Result explore(const WorldFactory& factory, const Options& options) {
  const auto t0 = std::chrono::steady_clock::now();
  WorkStealingPool pool(WorkStealingPool::resolve(options.threads));
  Result result = options.random_walks > 0 ? run_walks(factory, options, pool)
                                           : run_dfs(factory, options, pool);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

ReplayOutcome replay_counterexample(const WorldFactory& factory,
                                    const std::vector<std::uint64_t>& path,
                                    const Options& options) {
  ReplayOutcome outcome;
  auto world = factory();
  world->simulator().start();
  for (std::uint64_t id : path) {
    if (!world->simulator().execute_event(id)) return outcome;  // illegal id: invalid
    ++outcome.fired;
    std::string err = world->check();
    if (!err.empty() && outcome.violation.empty()) outcome.violation = std::move(err);
  }
  outcome.valid = true;
  if (outcome.violation.empty() && choices(*world, options).empty() && !world->done()) {
    outcome.violation = kDeadlock;
  }
  return outcome;
}

}  // namespace ekbd::mc
