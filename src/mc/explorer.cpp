#include "mc/explorer.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace ekbd::mc {

using ekbd::sim::PendingEvent;

namespace {

/// The choice set at a node: eligible event ids, optionally sans timers.
std::vector<std::uint64_t> choices(World& world, const Options& opt) {
  std::vector<std::uint64_t> ids;
  for (const PendingEvent& ev : world.simulator().eligible_events()) {
    if (!opt.include_timers && ev.kind == PendingEvent::Kind::kTimer) continue;
    ids.push_back(ev.id);
  }
  return ids;
}

/// Rebuild a world and replay a prefix of event ids. Returns nullptr if
/// replay diverged (should not happen with a deterministic factory).
std::unique_ptr<World> replay(const WorldFactory& factory, const std::vector<std::uint64_t>& path,
                              Result& result) {
  auto world = factory();
  world->simulator().start();
  for (std::uint64_t id : path) {
    if (!world->simulator().execute_event(id)) return nullptr;
    ++result.nodes_executed;
  }
  return world;
}

void dfs(const WorldFactory& factory, const Options& opt, std::vector<std::uint64_t>& path,
         Result& result) {
  if (result.violation_found || result.budget_exhausted) return;
  if (result.nodes_executed >= opt.max_nodes) {
    result.budget_exhausted = true;
    return;
  }

  auto world = replay(factory, path, result);
  if (!world) {
    result.violation_found = true;
    result.violation = "non-deterministic factory: replay diverged";
    result.counterexample = path;
    return;
  }
  result.max_depth_seen = std::max(result.max_depth_seen, path.size());

  const auto ids = choices(*world, opt);
  if (ids.empty()) {
    if (world->done()) {
      ++result.paths_completed;
    } else {
      result.violation_found = true;
      result.violation = "deadlock: no eligible events but goal not reached";
      result.counterexample = path;
    }
    return;
  }
  if (path.size() >= opt.max_depth) {
    ++result.paths_truncated;
    return;
  }

  for (std::uint64_t id : ids) {
    if (result.violation_found || result.budget_exhausted) return;
    // Execute this child on the already-replayed world the first time;
    // for simplicity and strict statelessness we re-replay per child.
    auto child = replay(factory, path, result);
    if (!child) continue;
    if (!child->simulator().execute_event(id)) continue;
    ++result.nodes_executed;
    const std::string err = child->check();
    if (!err.empty()) {
      result.violation_found = true;
      result.violation = err;
      result.counterexample = path;
      result.counterexample.push_back(id);
      return;
    }
    path.push_back(id);
    dfs(factory, opt, path, result);
    path.pop_back();
  }
}

void random_walks(const WorldFactory& factory, const Options& opt, Result& result) {
  ekbd::sim::Rng rng(opt.seed);
  for (std::uint64_t walk = 0; walk < opt.random_walks; ++walk) {
    if (result.violation_found || result.nodes_executed >= opt.max_nodes) {
      result.budget_exhausted = result.nodes_executed >= opt.max_nodes;
      return;
    }
    auto world = factory();
    world->simulator().start();
    std::vector<std::uint64_t> path;
    while (path.size() < opt.max_depth) {
      const auto ids = choices(*world, opt);
      if (ids.empty()) break;
      const std::uint64_t id = ids[rng.index(ids.size())];
      if (!world->simulator().execute_event(id)) break;
      ++result.nodes_executed;
      path.push_back(id);
      result.max_depth_seen = std::max(result.max_depth_seen, path.size());
      const std::string err = world->check();
      if (!err.empty()) {
        result.violation_found = true;
        result.violation = err;
        result.counterexample = path;
        return;
      }
    }
    if (choices(*world, opt).empty()) {
      if (world->done()) {
        ++result.paths_completed;
      } else {
        result.violation_found = true;
        result.violation = "deadlock: no eligible events but goal not reached";
        result.counterexample = path;
        return;
      }
    } else {
      ++result.paths_truncated;
    }
  }
}

}  // namespace

Result explore(const WorldFactory& factory, const Options& options) {
  Result result;
  if (options.random_walks > 0) {
    random_walks(factory, options, result);
  } else {
    std::vector<std::uint64_t> path;
    dfs(factory, options, path, result);
  }
  return result;
}

}  // namespace ekbd::mc
