/// \file pool.hpp
/// Work-stealing thread pool for embarrassingly-forkable exploration work.
///
/// Built for the stateless explorer's needs (and reused by the scenario
/// sweep runner): tasks may spawn further tasks, so completion is tracked
/// transitively — `wait_idle()` returns only when every submitted task,
/// including everything spawned from inside other tasks, has finished.
///
/// Design: one mutex-guarded deque per worker. A worker pops from the
/// *back* of its own deque (LIFO — keeps its working set hot and the
/// search depth-first) and steals from the *front* of a victim's deque
/// (FIFO — steals the shallowest, i.e. largest, subtree). Mutex-per-deque
/// rather than a lock-free Chase-Lev deque: exploration tasks are
/// coarse (a subtree replay is thousands of simulator events), so queue
/// overhead is noise, and the mutexes make the pool trivially clean under
/// ThreadSanitizer — which the CI sanitizer matrix enforces on every push.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ekbd::mc {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// Spawns exactly `threads` workers (callers resolve 0 via `resolve`).
  explicit WorkStealingPool(std::size_t threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue a task; callable from the owner thread or from inside a
  /// running task (nested spawns land on the spawning worker's own deque).
  void submit(Task task);

  /// Block until every task — including transitively spawned ones — has
  /// completed. The pool stays usable afterwards.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Starvation hint: true when the queues hold fewer tasks than there
  /// are workers. Used by the explorer to decide whether forking off a
  /// subtree is worth the replay it costs.
  [[nodiscard]] bool hungry() const { return queued_.load(std::memory_order_relaxed) < workers_.size(); }

  /// Map a user-facing thread-count option to a worker count
  /// (0 → hardware concurrency, never less than 1).
  [[nodiscard]] static std::size_t resolve(std::size_t requested);

 private:
  struct Shard {
    std::mutex mu;
    std::deque<Task> q;
  };

  void worker(std::size_t me);
  bool next_task(std::size_t me, Task& out);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::mutex mu_;  // pairs with work_cv_/idle_cv_; guards stop_
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> pending_{0};  ///< submitted, not yet finished
  std::atomic<std::size_t> queued_{0};   ///< sitting in a deque right now
  std::atomic<std::size_t> rr_{0};       ///< round-robin for external submits
  bool stop_ = false;
};

}  // namespace ekbd::mc
