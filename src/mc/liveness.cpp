#include "mc/liveness.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iterator>
#include <set>
#include <unordered_map>
#include <utility>

#include "mc/pool.hpp"

namespace ekbd::mc {

using ekbd::sim::PendingEvent;
using ekbd::sim::ProcessId;

namespace {

// Same literals as explorer.cpp so replay_counterexample round-trips see
// identical messages.
constexpr const char* kDeadlock = "deadlock: no eligible events but goal not reached";
constexpr const char* kDiverged = "non-deterministic factory: replay diverged";
constexpr const char* kAmbiguous =
    "config: ambiguous event fingerprints (two eligible events share a label)";

constexpr std::uint32_t kNoState = 0xFFFFFFFFu;
constexpr std::uint64_t kMessageLabelBit = 1ULL << 63;

using Labels = std::vector<std::uint64_t>;

/// Semantic label of one eligible event. Messages are identified by their
/// directed channel (per-channel FIFO: at most one eligible per channel);
/// timers and scheduled closures by the world's fingerprint, tagged by
/// kind so a world may reuse small role codes across kinds.
std::uint64_t label_of(const LivenessWorld& w, const PendingEvent& ev) {
  if (ev.kind == PendingEvent::Kind::kMessage) return kMessageLabelBit | ev.channel();
  const std::uint64_t tag = ev.kind == PendingEvent::Kind::kTimer ? 1 : 2;
  return (tag << 60) | (w.event_fingerprint(ev) & ((1ULL << 60) - 1));
}

/// The process an event *activates* (runs a handler of) — the unit the
/// per-actor and k-bounded daemon predicates count. Scheduled closures
/// are harness choices, not process activations.
ProcessId actor_of(const PendingEvent& ev) {
  switch (ev.kind) {
    case PendingEvent::Kind::kMessage:
      return ev.to;
    case PendingEvent::Kind::kTimer:
      return ev.owner;
    case PendingEvent::Kind::kScheduled:
      return ekbd::sim::kNoProcess;
  }
  return ekbd::sim::kNoProcess;
}

/// Eligible events honoring Options::include_timers (mirrors explorer.cpp).
std::vector<PendingEvent> choices(LivenessWorld& world, const Options& opt) {
  std::vector<PendingEvent> evs = world.simulator().eligible_events();
  if (!opt.include_timers) {
    std::erase_if(evs,
                  [](const PendingEvent& ev) { return ev.kind == PendingEvent::Kind::kTimer; });
  }
  return evs;
}

/// Tick-free semantic fingerprint: world state + simulator state + the
/// sorted labels of pending non-message events (the simulator reports
/// only their count; the labels disambiguate e.g. a pending crash choice
/// from a pending re-hungry choice).
void build_key(LivenessWorld& world, std::vector<std::uint64_t>& out) {
  out.clear();
  world.state_key(out);
  world.simulator().controlled_state_key(out);
  Labels fps;
  for (const PendingEvent& ev : world.simulator().eligible_events()) {
    if (ev.kind != PendingEvent::Kind::kMessage) fps.push_back(label_of(world, ev));
  }
  std::sort(fps.begin(), fps.end());
  out.insert(out.end(), fps.begin(), fps.end());
}

struct KeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& k) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint64_t w : k) {
      h ^= w;
      h *= 1099511628211ULL;
      h ^= h >> 29;
    }
    return static_cast<std::size_t>(h);
  }
};

/// One state of the semantic graph. Edges are aligned triples
/// (elig_labels[i], elig_actors[i], succ[i]); succ is kNoState when the
/// edge ended its schedule (violation) instead of reaching a state. The
/// key itself lives only in the dedup index — it is never needed again
/// once the state has an id. Witness paths are stored as BFS-tree parent
/// pointers carrying both the semantic label (for counterexamples and
/// fairness) and the concrete event id: deterministic factories allocate
/// identical ids on identical prefixes, so a recorded id is valid in any
/// fresh world and replays skip eligible-set scans entirely.
struct StateRec {
  std::uint64_t hungry = 0;
  std::uint32_t parent = kNoState;
  std::uint64_t parent_label = 0;
  std::uint64_t parent_event = 0;  ///< event id fired at parent to get here
  std::uint32_t depth = 0;
  Labels elig_labels;
  std::vector<ProcessId> elig_actors;
  std::vector<std::uint32_t> succ;
  bool terminal_done = false;
  bool horizon = false;
};

struct EdgeOut {
  std::uint64_t label = 0;
  std::uint64_t event_id = 0;  ///< replay-stable id of the fired event
  ProcessId actor = ekbd::sim::kNoProcess;
  std::vector<std::uint64_t> key;  ///< successor fingerprint (violation: unused)
  std::uint64_t hungry = 0;
  std::string violation;  ///< non-empty: check() failed, edge ends its schedule
};

struct Expansion {
  bool terminal = false;
  bool done = false;
  bool budget_stopped = false;
  std::string error;  ///< kDiverged or kAmbiguous
  std::vector<EdgeOut> edges;
};

/// Budget shared by all expansion jobs (same accounting as explorer.cpp:
/// frontier fires are nodes, witness re-execution is replays).
struct Budget {
  explicit Budget(std::uint64_t cap) : max_nodes(cap) {}
  const std::uint64_t max_nodes;
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<std::uint64_t> replays{0};
  std::atomic<bool> exhausted{false};

  [[nodiscard]] bool spend(std::atomic<std::uint64_t>& counter) {
    if (nodes.load(std::memory_order_relaxed) + replays.load(std::memory_order_relaxed) >=
        max_nodes) {
      exhausted.store(true, std::memory_order_relaxed);
      return false;
    }
    counter.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
};

/// Witness label path of a state: walk the BFS tree to the root.
Labels witness_labels(const std::vector<StateRec>& states, std::uint32_t id) {
  Labels out;
  for (std::uint32_t s = id; states[s].parent != kNoState; s = states[s].parent) {
    out.push_back(states[s].parent_label);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

/// Witness event-id path of a state — the replay-fast form (see StateRec).
std::vector<std::uint64_t> witness_ids(const std::vector<StateRec>& states, std::uint32_t id) {
  std::vector<std::uint64_t> out;
  for (std::uint32_t s = id; states[s].parent != kNoState; s = states[s].parent) {
    out.push_back(states[s].parent_event);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

/// Rebuild a world and re-fire a recorded event-id path. Returns nullptr
/// if an id is not eligible (divergence) or the budget ran out (flagged).
std::unique_ptr<LivenessWorld> replay_ids(const LivenessWorldFactory& factory,
                                          const std::vector<std::uint64_t>& ids, Budget& budget,
                                          bool* stopped) {
  auto world = factory();
  world->simulator().start();
  for (std::uint64_t id : ids) {
    if (!budget.spend(budget.replays)) {
      if (stopped != nullptr) *stopped = true;
      return nullptr;
    }
    if (!world->simulator().execute_event(id)) return nullptr;
  }
  return world;
}

/// Expand one state: rebuild at its witness, fire every eligible choice
/// (label order), fingerprint each successor. Stateless like the DFS
/// explorer — siblings replay the witness in private worlds; the last
/// sibling reuses the expansion world in place.
Expansion expand(const LivenessWorldFactory& factory, const Options& opt,
                 const std::vector<std::uint64_t>& witness, Budget& budget) {
  Expansion ex;
  bool stopped = false;
  auto world = replay_ids(factory, witness, budget, &stopped);
  if (world == nullptr) {
    if (stopped) {
      ex.budget_stopped = true;
    } else {
      ex.error = kDiverged;
    }
    return ex;
  }

  std::vector<PendingEvent> evs = choices(*world, opt);
  std::vector<std::pair<std::uint64_t, PendingEvent>> labeled;
  labeled.reserve(evs.size());
  for (const PendingEvent& ev : evs) labeled.emplace_back(label_of(*world, ev), ev);
  std::sort(labeled.begin(), labeled.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i + 1 < labeled.size(); ++i) {
    if (labeled[i].first == labeled[i + 1].first) {
      ex.error = kAmbiguous;
      return ex;
    }
  }

  if (labeled.empty()) {
    ex.terminal = true;
    ex.done = world->done();
    return ex;
  }

  ex.edges.reserve(labeled.size());
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    std::unique_ptr<LivenessWorld> w;
    if (i + 1 < labeled.size()) {
      w = replay_ids(factory, witness, budget, &stopped);
      if (w == nullptr) {
        if (stopped) {
          ex.budget_stopped = true;
        } else {
          ex.error = kDiverged;
        }
        return ex;
      }
    } else {
      w = std::move(world);
    }
    if (!budget.spend(budget.nodes)) {
      ex.budget_stopped = true;
      return ex;
    }
    EdgeOut edge;
    edge.label = labeled[i].first;
    edge.event_id = labeled[i].second.id;
    edge.actor = actor_of(labeled[i].second);
    // Deterministic factories allocate identical event ids on identical
    // prefixes, so the id observed in the expansion world is valid in the
    // sibling rebuild too.
    if (!w->simulator().execute_event(labeled[i].second.id)) {
      ex.error = kDiverged;
      return ex;
    }
    edge.violation = w->check();
    if (edge.violation.empty()) {
      edge.hungry = w->hungry_mask();
      build_key(*w, edge.key);
    }
    ex.edges.push_back(std::move(edge));
  }
  return ex;
}

// ------------------------------------------------------------------ SCCs --

/// Iterative Tarjan over the explicit graph. Returns per-state component
/// ids; components are numbered in reverse topological order, but the
/// analysis below only uses membership, so the numbering is irrelevant
/// (and deterministic either way).
std::vector<std::uint32_t> tarjan(const std::vector<StateRec>& states) {
  const std::size_t n = states.size();
  std::vector<std::uint32_t> comp(n, kNoState);
  std::vector<std::uint32_t> index(n, kNoState);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;
  std::uint32_t next_comp = 0;

  struct Frame {
    std::uint32_t v;
    std::size_t edge;
  };
  std::vector<Frame> call;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kNoState) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      const std::uint32_t v = f.v;
      if (f.edge == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.edge < states[v].succ.size()) {
        const std::uint32_t w = states[v].succ[f.edge];
        ++f.edge;
        if (w == kNoState) continue;
        if (index[w] == kNoState) {
          call.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      call.pop_back();
      if (!call.empty()) {
        const std::uint32_t parent = call.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  return comp;
}

/// Everything known about one candidate SCC.
struct Component {
  std::vector<std::uint32_t> members;  ///< state ids, ascending
  bool nontrivial = false;             ///< contains a cycle
  std::uint64_t hungry_core = 0;       ///< processes hungry at every state
};

/// BFS a label path from `from` to `to` using only edges internal to the
/// component. Deterministic: states expand in member order, edges in
/// label order. Returns the labels; empty when from == to.
Labels route(const std::vector<StateRec>& states, const std::set<std::uint32_t>& scc,
             std::uint32_t from, std::uint32_t to) {
  if (from == to) return {};
  std::unordered_map<std::uint32_t, std::pair<std::uint32_t, std::uint64_t>> pred;
  std::deque<std::uint32_t> queue{from};
  pred[from] = {kNoState, 0};
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    const StateRec& s = states[v];
    for (std::size_t i = 0; i < s.succ.size(); ++i) {
      const std::uint32_t w = s.succ[i];
      if (w == kNoState || scc.count(w) == 0 || pred.count(w) != 0) continue;
      pred[w] = {v, s.elig_labels[i]};
      if (w == to) {
        Labels out;
        for (std::uint32_t x = to; x != from; x = pred[x].first) out.push_back(pred[x].second);
        std::reverse(out.begin(), out.end());
        return out;
      }
      queue.push_back(w);
    }
  }
  assert(false && "SCC not strongly connected");
  return {};
}

/// Walk a label path inside the component, returning the end state.
std::uint32_t walk(const std::vector<StateRec>& states, std::uint32_t from,
                   const Labels& labels) {
  std::uint32_t cur = from;
  for (std::uint64_t lbl : labels) {
    const StateRec& s = states[cur];
    const auto it = std::lower_bound(s.elig_labels.begin(), s.elig_labels.end(), lbl);
    assert(it != s.elig_labels.end() && *it == lbl);
    cur = s.succ[static_cast<std::size_t>(it - s.elig_labels.begin())];
  }
  return cur;
}

/// Construct the witness cycle for a fair hungry component: a closed
/// label walk from its minimal state that fires every internally-firable
/// label at least once — the "fairest possible" schedule confined to the
/// component. Under kWeakEvent/kKBounded the fired set covers every
/// always-eligible label (that is what the fairness check established),
/// so repeating this cycle forever is a genuine weakly-fair infinite run.
Labels witness_cycle(const std::vector<StateRec>& states, const Component& c,
                     const std::set<std::uint64_t>& internally_fired) {
  const std::set<std::uint32_t> scc(c.members.begin(), c.members.end());
  std::set<std::uint64_t> required = internally_fired;

  const std::uint32_t home = c.members.front();
  std::uint32_t cur = home;
  Labels cycle;
  auto advance = [&](const Labels& seg) {
    for (std::uint64_t lbl : seg) required.erase(lbl);
    cycle.insert(cycle.end(), seg.begin(), seg.end());
    cur = walk(states, cur, seg);
  };

  while (!required.empty()) {
    const std::uint64_t lbl = *required.begin();
    // The firing site: the least member state with an internal edge
    // labeled lbl (fairness evaluation guaranteed one exists).
    std::uint32_t site = kNoState;
    for (std::uint32_t v : c.members) {
      const StateRec& s = states[v];
      const auto it = std::lower_bound(s.elig_labels.begin(), s.elig_labels.end(), lbl);
      if (it != s.elig_labels.end() && *it == lbl) {
        const std::uint32_t w = s.succ[static_cast<std::size_t>(it - s.elig_labels.begin())];
        if (w != kNoState && scc.count(w) != 0) {
          site = v;
          break;
        }
      }
    }
    assert(site != kNoState && "fair component lost its firing site");
    advance(route(states, scc, cur, site));
    advance({lbl});
  }
  advance(route(states, scc, cur, home));
  assert(cur == home && !cycle.empty());
  return cycle;
}

/// Does the witness cycle admit a k-bounded daemon? For every pair of
/// processes activated in (or continuously activatable during) the
/// cycle: between consecutive activations of p, q is activated at most k
/// times — evaluated cyclically, i.e. over the infinite repetition.
bool cycle_is_k_bounded(const std::vector<StateRec>& states, const Component& c,
                        const Labels& cycle, int k) {
  // Processes with an eligible event at every component state: the
  // daemon owes them activations.
  std::set<ProcessId> owed;
  bool first = true;
  for (std::uint32_t v : c.members) {
    std::set<ProcessId> here;
    for (ProcessId a : states[v].elig_actors) {
      if (a != ekbd::sim::kNoProcess) here.insert(a);
    }
    if (first) {
      owed = std::move(here);
      first = false;
    } else {
      std::set<ProcessId> inter;
      std::set_intersection(owed.begin(), owed.end(), here.begin(), here.end(),
                            std::inserter(inter, inter.begin()));
      owed = std::move(inter);
    }
  }

  // Activation sequence of one lap.
  std::vector<ProcessId> acts;
  std::uint32_t cur = c.members.front();
  for (std::uint64_t lbl : cycle) {
    const StateRec& s = states[cur];
    const auto it = std::lower_bound(s.elig_labels.begin(), s.elig_labels.end(), lbl);
    const auto idx = static_cast<std::size_t>(it - s.elig_labels.begin());
    if (s.elig_actors[idx] != ekbd::sim::kNoProcess) acts.push_back(s.elig_actors[idx]);
    cur = s.succ[idx];
  }

  for (ProcessId p : owed) {
    if (std::find(acts.begin(), acts.end(), p) == acts.end()) return false;  // starved outright
  }
  // Doubled lap covers every wrap-around window between p-activations.
  std::vector<ProcessId> doubled = acts;
  doubled.insert(doubled.end(), acts.begin(), acts.end());
  for (ProcessId p : owed) {
    std::unordered_map<ProcessId, int> between;
    bool seen_p = false;
    for (ProcessId a : doubled) {
      if (a == p) {
        seen_p = true;
        between.clear();
        continue;
      }
      if (!seen_p) continue;
      if (++between[a] > k) return false;
    }
  }
  return true;
}

/// A recorded safety/deadlock candidate, merged lexicographically least.
struct SafetyCandidate {
  bool found = false;
  std::string message;
  Labels path;
};

void offer_safety(SafetyCandidate& best, std::string message, Labels path) {
  if (!best.found || std::lexicographical_compare(path.begin(), path.end(), best.path.begin(),
                                                  best.path.end())) {
    best.found = true;
    best.message = std::move(message);
    best.path = std::move(path);
  }
}

const char* fairness_name(Fairness f) {
  switch (f) {
    case Fairness::kNone:
      return "any-cycle";
    case Fairness::kWeakActor:
      return "weak-fairness(actor)";
    case Fairness::kWeakEvent:
      return "weak-fairness(event)";
    case Fairness::kKBounded:
      return "k-bounded-daemon";
  }
  return "?";
}

}  // namespace

Result check_liveness(const LivenessWorldFactory& factory, const Options& options) {
  const auto t0 = std::chrono::steady_clock::now();
  Result result;
  if (options.sleep_sets) {
    result.config_error = kLivenessSleepSetRefusal;
    return result;
  }
  if (options.random_walks > 0) {
    result.config_error = kLivenessRandomWalkRefusal;
    return result;
  }

  WorkStealingPool pool(WorkStealingPool::resolve(options.threads));
  Budget budget(options.max_nodes);
  std::vector<StateRec> states;
  std::unordered_map<std::vector<std::uint64_t>, std::uint32_t, KeyHash> index;
  SafetyCandidate safety;
  std::uint64_t completed = 0;
  std::uint64_t truncated = 0;

  {
    auto world = factory();
    world->simulator().start();
    StateRec root;
    std::vector<std::uint64_t> root_key;
    build_key(*world, root_key);
    root.hungry = world->hungry_mask();
    index.emplace(std::move(root_key), 0);
    states.push_back(std::move(root));
  }

  std::vector<std::uint32_t> frontier{0};
  while (!frontier.empty() && !budget.exhausted.load(std::memory_order_relaxed) &&
         result.config_error.empty() && !(options.fail_fast && safety.found)) {
    std::vector<Expansion> expansions(frontier.size());
    std::vector<std::vector<std::uint64_t>> witnesses(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      witnesses[i] = witness_ids(states, frontier[i]);
    }
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      pool.submit([&factory, &options, &budget, &expansions, &witnesses, i] {
        expansions[i] = expand(factory, options, witnesses[i], budget);
      });
    }
    pool.wait_idle();

    // Sequential deterministic merge, frontier order then label order —
    // state ids, parents and witnesses are thread-count-independent.
    std::vector<std::uint32_t> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::uint32_t v = frontier[i];
      Expansion& ex = expansions[i];
      if (ex.budget_stopped) continue;  // flagged; counters now best-effort
      if (ex.error == kAmbiguous) {
        result.config_error = kAmbiguous;
        break;
      }
      if (!ex.error.empty()) {
        offer_safety(safety, ex.error, witnesses[i]);
        continue;
      }
      if (ex.terminal) {
        states[v].terminal_done = ex.done;
        if (ex.done) {
          ++completed;
        } else {
          offer_safety(safety, kDeadlock, witnesses[i]);
        }
        continue;
      }
      states[v].elig_labels.reserve(ex.edges.size());
      states[v].elig_actors.reserve(ex.edges.size());
      states[v].succ.reserve(ex.edges.size());
      for (EdgeOut& edge : ex.edges) {
        states[v].elig_labels.push_back(edge.label);
        states[v].elig_actors.push_back(edge.actor);
        if (!edge.violation.empty()) {
          // Safety candidate paths are event-id paths, directly replayable.
          Labels path = witnesses[i];
          path.push_back(edge.event_id);
          offer_safety(safety, std::move(edge.violation), std::move(path));
          states[v].succ.push_back(kNoState);
          continue;
        }
        auto [it, inserted] =
            index.emplace(std::move(edge.key), static_cast<std::uint32_t>(states.size()));
        if (inserted) {
          StateRec s;
          s.hungry = edge.hungry;
          s.parent = v;
          s.parent_label = edge.label;
          s.parent_event = edge.event_id;
          s.depth = states[v].depth + 1;
          if (s.depth >= options.max_depth) {
            s.horizon = true;
            ++truncated;
          } else {
            next.push_back(it->second);
          }
          states.push_back(std::move(s));
        }
        states[v].succ.push_back(it->second);
      }
    }
    frontier = std::move(next);
  }

  result.nodes_executed = budget.nodes.load();
  result.replayed_events = budget.replays.load();
  result.budget_exhausted = budget.exhausted.load();
  result.unique_states = states.size();
  result.paths_completed = completed;
  result.paths_truncated = truncated;
  for (const StateRec& s : states) {
    result.max_depth_seen = std::max<std::size_t>(result.max_depth_seen, s.depth);
  }

  // ---- cycle analysis (on whatever portion of the graph was built:
  // every reported cycle uses only real, fully-expanded edges, so a
  // violation found under a tripped budget is still a true violation;
  // only the *absence* of one requires the complete graph).
  Labels best_stem;
  std::vector<std::uint64_t> best_stem_ids;
  Labels best_cycle;
  std::uint64_t best_hungry = 0;
  if (result.config_error.empty()) {
    const std::vector<std::uint32_t> comp = tarjan(states);
    std::uint32_t ncomp = 0;
    for (std::uint32_t c : comp) {
      if (c != kNoState) ncomp = std::max(ncomp, c + 1);
    }
    std::vector<Component> comps(ncomp);
    for (std::uint32_t v = 0; v < states.size(); ++v) comps[comp[v]].members.push_back(v);
    for (Component& c : comps) {
      c.hungry_core = ~0ULL;
      for (std::uint32_t v : c.members) {
        c.hungry_core &= states[v].hungry;
        if (!c.nontrivial) {
          const StateRec& s = states[v];
          for (std::size_t e = 0; e < s.succ.size(); ++e) {
            if (s.succ[e] != kNoState && comp[s.succ[e]] == comp[v] &&
                (c.members.size() > 1 || s.succ[e] == v)) {
              c.nontrivial = true;
              break;
            }
          }
        }
      }
      if (c.members.size() > 1) c.nontrivial = true;
    }

    for (const Component& c : comps) {
      if (!c.nontrivial) continue;
      ++result.scc_count;
      if (c.hungry_core == 0) continue;

      // Fairness: which labels/actors does a run confined to this
      // component owe, and are they all served by internal edges?
      // (Eligibility is monotonic — an unserved always-eligible event
      // stays eligible forever — so this test is exact, not heuristic.)
      std::set<std::uint64_t> union_labels;
      std::set<std::uint64_t> fired_labels;
      std::set<ProcessId> union_actors;
      std::set<ProcessId> fired_actors;
      const std::set<std::uint32_t> members(c.members.begin(), c.members.end());
      for (std::uint32_t v : c.members) {
        const StateRec& s = states[v];
        for (std::size_t e = 0; e < s.succ.size(); ++e) {
          union_labels.insert(s.elig_labels[e]);
          if (s.elig_actors[e] != ekbd::sim::kNoProcess) union_actors.insert(s.elig_actors[e]);
          if (s.succ[e] != kNoState && members.count(s.succ[e]) != 0) {
            fired_labels.insert(s.elig_labels[e]);
            if (s.elig_actors[e] != ekbd::sim::kNoProcess) fired_actors.insert(s.elig_actors[e]);
          }
        }
      }
      bool fair = true;
      switch (options.fairness) {
        case Fairness::kNone:
          break;
        case Fairness::kWeakActor:
          fair = std::includes(fired_actors.begin(), fired_actors.end(), union_actors.begin(),
                               union_actors.end());
          break;
        case Fairness::kWeakEvent:
        case Fairness::kKBounded:
          fair = std::includes(fired_labels.begin(), fired_labels.end(), union_labels.begin(),
                               union_labels.end());
          break;
      }
      if (!fair) continue;

      Labels cycle = witness_cycle(states, c, fired_labels);
      if (options.fairness == Fairness::kKBounded &&
          !cycle_is_k_bounded(states, c, cycle, options.fairness_k)) {
        continue;
      }
      ++result.fair_cycles;

      Labels stem = witness_labels(states, c.members.front());
      Labels full = stem;
      full.insert(full.end(), cycle.begin(), cycle.end());
      Labels best_full = best_stem;
      best_full.insert(best_full.end(), best_cycle.begin(), best_cycle.end());
      if (best_cycle.empty() || std::lexicographical_compare(full.begin(), full.end(),
                                                             best_full.begin(), best_full.end())) {
        best_stem = std::move(stem);
        best_stem_ids = witness_ids(states, c.members.front());
        best_cycle = std::move(cycle);
        best_hungry = c.hungry_core;
      }
    }
  }

  // ---- verdict: safety first (a broken invariant trumps starvation),
  // else the lex-least fair lasso. Safety paths already are event-id
  // paths; for a lasso the stem ids are recorded and the cycle labels are
  // converted to ids by one short replay.
  if (result.config_error.empty() && (safety.found || !best_cycle.empty())) {
    result.violation_found = true;
    if (safety.found) {
      result.violation = safety.message;
      result.counterexample = std::move(safety.path);
    } else {
      ProcessId starving = 0;
      while ((best_hungry & (1ULL << starving)) == 0) ++starving;
      result.violation = std::string(kLivenessViolationPrefix) + " process " +
                         std::to_string(starving) + " stays hungry forever (fair cycle, " +
                         fairness_name(options.fairness) + ")";
      result.stem_length = best_stem_ids.size();
      result.cycle_length = best_cycle.size();
      auto world = factory();
      world->simulator().start();
      for (std::uint64_t id : best_stem_ids) {
        const bool fired = world->simulator().execute_event(id);
        assert(fired && "winning stem must replay");
        (void)fired;
      }
      result.counterexample = std::move(best_stem_ids);
      for (std::uint64_t lbl : best_cycle) {
        bool fired = false;
        for (const PendingEvent& ev : choices(*world, options)) {
          if (label_of(*world, ev) == lbl) {
            result.counterexample.push_back(ev.id);
            fired = world->simulator().execute_event(ev.id);
            break;
          }
        }
        assert(fired && "winning cycle must replay");
        (void)fired;
      }
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

LassoReplay unroll_lasso(const LivenessWorldFactory& factory, const Result& result,
                         std::size_t laps, const Options& options) {
  LassoReplay out;
  const std::size_t total = result.counterexample.size();
  if (result.cycle_length == 0 || result.stem_length + result.cycle_length != total) return out;

  auto world = factory();
  world->simulator().start();
  auto note_check = [&] {
    std::string err = world->check();
    if (!err.empty() && out.violation.empty()) out.violation = std::move(err);
  };
  for (std::size_t i = 0; i < result.stem_length; ++i) {
    if (!world->simulator().execute_event(result.counterexample[i])) return out;
    out.fired.push_back(result.counterexample[i]);
    note_check();
  }

  std::vector<std::uint64_t> entry_key;
  build_key(*world, entry_key);
  Labels cycle_labels;

  std::vector<std::uint64_t> key;
  for (std::size_t lap = 0; lap < laps; ++lap) {
    for (std::size_t i = 0; i < result.cycle_length; ++i) {
      std::uint64_t id = 0;
      bool resolved = false;
      if (lap == 0) {
        // First lap by recorded id; learn the semantic labels as we go.
        id = result.counterexample[result.stem_length + i];
        for (const PendingEvent& ev : choices(*world, options)) {
          if (ev.id == id) {
            cycle_labels.push_back(label_of(*world, ev));
            resolved = true;
            break;
          }
        }
      } else {
        // Later laps by label: ids are fresh, semantics are not.
        for (const PendingEvent& ev : choices(*world, options)) {
          if (label_of(*world, ev) == cycle_labels[i]) {
            id = ev.id;
            resolved = true;
            break;
          }
        }
      }
      if (!resolved || !world->simulator().execute_event(id)) return out;
      out.fired.push_back(id);
      note_check();
    }
    build_key(*world, key);
    if (key == entry_key) {
      ++out.laps_closed;
    }
  }
  out.valid = true;
  out.world = std::move(world);
  return out;
}

}  // namespace ekbd::mc
