#include "mc/sleep_sets.hpp"

#include <algorithm>

namespace ekbd::mc {

using sim::PendingEvent;

bool independent(const PendingEvent& a, const PendingEvent& b) {
  if (a.id == b.id) return false;
  // Only message deliveries commute; timers and scheduled callbacks (crash
  // injections, meal endings, re-thirsts) may touch arbitrary world state.
  if (a.kind != PendingEvent::Kind::kMessage || b.kind != PendingEvent::Kind::kMessage) {
    return false;
  }
  // Distinct recipients ⇒ distinct directed channels (FIFO heads cannot
  // block each other) and disjoint handler state (each delivery mutates
  // only its recipient's actor and appends only to channels it sends on).
  return a.to != b.to;
}

bool sleeping(const SleepSet& sleep, std::uint64_t id) {
  return std::binary_search(sleep.begin(), sleep.end(), id);
}

SleepSet child_sleep_set(const std::vector<PendingEvent>& eligible, const SleepSet& parent_sleep,
                         const std::vector<PendingEvent>& explored_siblings,
                         const PendingEvent& chosen) {
  SleepSet child;
  child.reserve(parent_sleep.size() + explored_siblings.size());
  for (std::uint64_t id : parent_sleep) {
    // Sleepers stay pending (never fired below this node), so their
    // descriptors are still in the eligible set; a missing id is dropped,
    // which only widens exploration (safe direction).
    const auto it = std::find_if(eligible.begin(), eligible.end(),
                                 [id](const PendingEvent& ev) { return ev.id == id; });
    if (it != eligible.end() && independent(*it, chosen)) child.push_back(id);
  }
  for (const PendingEvent& sib : explored_siblings) {
    if (independent(sib, chosen)) child.push_back(sib.id);
  }
  std::sort(child.begin(), child.end());
  return child;
}

}  // namespace ekbd::mc
