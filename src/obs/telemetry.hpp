/// \file telemetry.hpp
/// Glue between the instrumented subsystems and the metrics registry.
///
/// Two styles, matching how the sources expose their numbers:
///
///  * **attach** — resolve registry handles once and hand the pointers to
///    the subsystem, which updates them on its own hot path (simulator);
///  * **collect** — snapshot a subsystem's existing books into registry
///    entries on demand (network, transport, event log, mc) — zero cost
///    during the run, called at telemetry-emission points.
///
/// Metric names are dot-namespaced by subsystem ("sim.events",
/// "net.in_transit", "arq.retransmissions", "mc.states_per_sec");
/// per-instance labels are "p3" for a process, "p2-p5" for an undirected
/// pair, "dining"/"transport" for a layer, or "layer/p2-p5" for both.
/// docs/OBSERVABILITY.md is the catalogue.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "sim/event_log.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace ekbd::net {
class ReliableTransport;
}

namespace ekbd::obs {

/// Lower-case layer name ("dining", "detector", "other", "transport").
[[nodiscard]] const char* layer_name(sim::MsgLayer layer);

/// Wire a simulator to a registry: creates "sim.events", "sim.sends",
/// "sim.queue_depth", "sim.slab_live" and installs the handles via
/// Simulator::set_metrics. The registry must outlive the simulator's use
/// of it (detach with `sim.set_metrics({})`).
void attach_simulator_metrics(sim::Simulator& sim, MetricsRegistry& reg);

/// Snapshot the event log's shape: "log.events", "log.dropped".
void collect_event_log_metrics(const sim::EventLog& log, MetricsRegistry& reg);

/// Snapshot the network books: per-layer "net.sent" counters (logical
/// layers vs. the physical kTransport layer is exactly the logical/
/// physical split), and per-pair "net.in_transit" gauges whose high-water
/// mark is the §7-bounded maximum.
void collect_network_metrics(const sim::Network& net, MetricsRegistry& reg);

/// Snapshot the ARQ shim: "arq.logical_sends", "arq.physical_data_sends",
/// "arq.retransmissions", "arq.dup_suppressed", "arq.abandoned",
/// "arq.backoff_peak" (highest RTO the backoff reached), "arq.in_flight".
void collect_transport_metrics(const net::ReliableTransport& transport,
                               MetricsRegistry& reg);

/// Snapshot a model-checking run: "mc.nodes_executed", "mc.sleep_pruned",
/// "mc.states_per_sec" (0 when `wall_seconds` <= 0) and
/// "mc.sleep_hit_rate_pct" (pruned / offered, in percent). Takes plain
/// numbers so the obs layer needs no mc dependency.
void collect_mc_metrics(std::uint64_t nodes_executed, std::uint64_t sleep_pruned,
                        double wall_seconds, MetricsRegistry& reg);

}  // namespace ekbd::obs
