/// \file metrics.hpp
/// Metrics registry: counters, gauges and fixed-bucket histograms
/// addressable by (name, label).
///
/// Design rules, in order of importance:
///
///  1. **Zero-cost when detached.** Instrumented subsystems hold plain
///     pointers to Counter/Gauge handles, null by default — the same
///     null-pointer-check discipline as `sim::EventLog`. A detached run
///     pays one branch per instrumentation point and nothing else (the
///     E21 perf gate enforces this).
///  2. **Pointer-stable handles.** `counter()` / `gauge()` /
///     `histogram()` are get-or-create and the returned references stay
///     valid for the registry's lifetime (node-based storage), so hot
///     paths resolve a handle once and increment through the pointer
///     forever after.
///  3. **Deterministic snapshots.** Iteration and JSON output are sorted
///     by (name, label), so two runs of the same seed serialize
///     byte-identically.
///
/// The registry is deliberately single-threaded, like the simulator it
/// instruments: one registry per Scenario/Simulator, never shared across
/// sweep workers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ekbd::obs {

/// Monotone event count. `inc()` is the hot-path operation: one add.
struct Counter {
  std::uint64_t value = 0;

  void inc(std::uint64_t delta = 1) { value += delta; }
  [[nodiscard]] std::uint64_t get() const { return value; }
};

/// Instantaneous level with a built-in high-water mark (the §7 bounds are
/// claims about maxima, so every gauge tracks its own).
struct Gauge {
  std::int64_t value = 0;
  std::int64_t high_water = 0;

  void set(std::int64_t v) {
    value = v;
    if (v > high_water) high_water = v;
  }
  void add(std::int64_t delta) { set(value + delta); }
  [[nodiscard]] std::int64_t get() const { return value; }
  [[nodiscard]] std::int64_t max() const { return high_water; }
};

/// Fixed-bucket histogram over [lo, hi): `bins` equal-width buckets;
/// out-of-range samples are clamped into the first/last bucket (the
/// count/sum stay exact, so the mean is unaffected by clamping) and
/// additionally counted in `under()` / `over()` so a misconfigured range
/// is visible instead of silently skewing the edge buckets. The buckets
/// always sum to `count()`; under/over are an overlay, not extra bins.
///
/// Distinct from util::Histogram (a print-only sparkline helper): this
/// one is a mergeable, serializable telemetry value — sweep shards merge
/// per-run histograms and the JSONL snapshot round-trips through
/// `to_json` / `histogram_from_json`.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bins() const { return buckets_.size(); }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Samples below lo() / at-or-above hi(). They are *also* in the edge
  /// buckets (clamped), so buckets() still sums to count().
  [[nodiscard]] std::uint64_t under() const { return under_; }
  [[nodiscard]] std::uint64_t over() const { return over_; }

  /// Approximate quantile (q in [0, 1]) from the bucket counts: walks to
  /// the bucket holding the ceil(q·count)-th sample and returns its
  /// midpoint. 0 when empty. Accuracy is one bucket width — good enough
  /// for p50/p99/p999 telemetry, not for exact ranking.
  [[nodiscard]] double quantile(double q) const;

  /// Inclusive-exclusive bounds of bucket `i` (the last bucket absorbs
  /// everything >= its lower bound, clamping included).
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Merge `other` into this histogram. Identical shapes (lo, hi, bins)
  /// merge exactly — bucket-wise sums — and return true. Mismatched
  /// shapes resample: each of `other`'s buckets lands at its midpoint in
  /// this histogram's own buckets (count and sum stay exact; placement
  /// accuracy is one source-bucket width, under/over are re-derived from
  /// the midpoints) and the call returns false to flag the loss.
  bool merge(const Histogram& other);

  /// `{"lo":..,"hi":..,"count":..,"sum":..,"under":..,"over":..,"buckets":[..]}`
  [[nodiscard]] std::string to_json() const;

 private:
  friend std::optional<Histogram> histogram_from_json(const std::string& text);

  /// `k` samples at value `x`: bucket/under/over/count bookkeeping without
  /// touching sum_ (merge adds the source's exact sum wholesale).
  void add_bulk(double x, std::uint64_t k);

  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
};

/// Inverse of Histogram::to_json (accepts exactly the shape it emits).
/// std::nullopt on malformed input.
[[nodiscard]] std::optional<Histogram> histogram_from_json(const std::string& text);

/// The registry. Handles are keyed by (name, label): `name` identifies
/// the instrument ("net.in_transit_max"), `label` the instance it
/// measures ("p2-p5" for an edge, "p7" for a process, "" for a global).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& label = "");
  Gauge& gauge(const std::string& name, const std::string& label = "");
  /// Get-or-create; the (lo, hi, bins) shape is fixed by whoever creates
  /// the handle first.
  Histogram& histogram(const std::string& name, const std::string& label, double lo,
                       double hi, std::size_t bins);

  /// Lookup without creation (snapshot readers, tests).
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const std::string& label = "") const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const std::string& label = "") const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                const std::string& label = "") const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Whole-registry snapshot, sorted by (name, label):
  /// `{"counters":[...],"gauges":[...],"histograms":[...]}`.
  [[nodiscard]] std::string to_json() const;

 private:
  using Key = std::pair<std::string, std::string>;
  // std::map: node-stable references (rule 2) and sorted iteration
  // (rule 3) in one container.
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace ekbd::obs
