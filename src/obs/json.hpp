/// \file json.hpp
/// Minimal JSON reader/writer helpers for the telemetry layer.
///
/// The repository's export formats (metrics snapshots, JSONL telemetry,
/// Chrome trace events) are all JSON; this header supplies the three
/// things they need and nothing more: string escaping, deterministic
/// number formatting, and a small recursive-descent parser used by the
/// round-trip paths (histogram_from_json, tests, analyze_trace). No
/// third-party dependency — the grammar is tiny and the inputs are our
/// own outputs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ekbd::obs::json {

/// A parsed JSON value. Object members keep their textual order (our
/// writers emit deterministic order, so round-trips are byte-stable).
struct Value {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup (objects only); nullptr when absent.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// `find(key)->number` with a default for absent/non-number members.
  [[nodiscard]] double num_or(const std::string& key, double fallback) const;
};

/// Parse one JSON document (surrounding whitespace allowed). Rejects
/// trailing garbage. std::nullopt on any syntax error.
[[nodiscard]] std::optional<Value> parse(const std::string& text);

/// `s` as a quoted JSON string literal (quotes included).
[[nodiscard]] std::string quote(const std::string& s);

/// Shortest decimal form of `v` that parses back to the same double —
/// deterministic across runs, no locale involvement. Integral values
/// print without a fraction ("3", not "3.0").
[[nodiscard]] std::string format_double(double v);

}  // namespace ekbd::obs::json
