#include "obs/perfetto.hpp"

#include <cstdio>
#include <map>
#include <set>

#include "obs/json.hpp"

namespace ekbd::obs {

namespace {

/// One emitter for every trace-event record: the format repeats the same
/// (ph, ts, pid, tid, name) envelope, so build it in one place.
class Emitter {
 public:
  void event(const char* ph, sim::Time ts, sim::ProcessId tid, const std::string& name,
             const char* cat, const std::string& extra) {
    if (!out_.empty()) out_ += ',';
    char buf[160];
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"%s\",\"ts\":%lld,\"pid\":0,\"tid\":%d", ph,
                  static_cast<long long>(ts), tid);
    out_ += buf;
    out_ += ",\"name\":" + json::quote(name);
    out_ += ",\"cat\":\"";
    out_ += cat;
    out_ += '"';
    if (!extra.empty()) {
      out_ += ',';
      out_ += extra;
    }
    out_ += '}';
    if (tid >= 0) seen_tid(tid);
  }

  void span(sim::Time ts, sim::Time dur, sim::ProcessId tid, const std::string& name,
            const char* cat) {
    event("X", ts, tid, name, cat, "\"dur\":" + std::to_string(dur < 1 ? 1 : dur));
  }

  void instant(sim::Time ts, sim::ProcessId tid, const std::string& name, const char* cat) {
    event("i", ts, tid, name, cat, "\"s\":\"t\"");
  }

  void flow(const char* ph, sim::Time ts, sim::ProcessId tid, const std::string& name,
            std::uint64_t id) {
    std::string extra = "\"id\":" + std::to_string(id);
    if (ph[0] == 'f') extra += ",\"bp\":\"e\"";
    event(ph, ts, tid, name, "msg", extra);
  }

  void seen_tid(sim::ProcessId tid) {
    if (tid >= 0) tids_.insert(tid);
  }

  [[nodiscard]] std::string finish() const {
    // Thread-name metadata gives every process a labeled track.
    std::string meta;
    for (const sim::ProcessId tid : tids_) {
      if (!meta.empty()) meta += ',';
      meta += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
              ",\"name\":\"thread_name\",\"args\":{\"name\":\"p" + std::to_string(tid) +
              "\"}}";
    }
    std::string doc = "{\"traceEvents\":[";
    doc += meta;
    if (!meta.empty() && !out_.empty()) doc += ',';
    doc += out_;
    doc += "]}";
    return doc;
  }

 private:
  std::string out_;
  std::set<sim::ProcessId> tids_;
};

std::string msg_name(const sim::LoggedEvent& ev) {
  const std::string n = ev.payload_name();
  return n.empty() ? std::string("msg") : n;
}

void render_log(const sim::EventLog& log, Emitter& em) {
  for (const sim::LoggedEvent& ev : log.events()) {
    switch (ev.kind) {
      case sim::LoggedEvent::Kind::kSend:
        em.span(ev.at, 1, ev.from, "send " + msg_name(ev), "msg");
        em.flow("s", ev.at, ev.from, msg_name(ev), ev.seq);
        break;
      case sim::LoggedEvent::Kind::kDeliver:
        em.span(ev.at, 1, ev.to, "recv " + msg_name(ev), "msg");
        em.flow("f", ev.at, ev.to, msg_name(ev), ev.seq);
        break;
      case sim::LoggedEvent::Kind::kDrop:
        em.instant(ev.at, ev.to, "drop " + msg_name(ev), "fault");
        break;
      case sim::LoggedEvent::Kind::kLoss:
        em.instant(ev.at, ev.to, "loss " + msg_name(ev), "fault");
        break;
      case sim::LoggedEvent::Kind::kPartitionLoss:
        em.instant(ev.at, ev.to, "cut " + msg_name(ev), "fault");
        break;
      case sim::LoggedEvent::Kind::kDuplicate:
        em.instant(ev.at, ev.from, "dup " + msg_name(ev), "fault");
        break;
      case sim::LoggedEvent::Kind::kTimer:
        break;  // timers would drown everything else; sessions carry the story
      case sim::LoggedEvent::Kind::kCrash:
        em.instant(ev.at, ev.from, "CRASH", "crash");
        break;
      case sim::LoggedEvent::Kind::kRecover:
        em.instant(ev.at, ev.from, "RECOVER", "crash");
        break;
    }
  }
}

void render_sessions(const dining::Trace& trace, Emitter& em) {
  std::map<sim::ProcessId, sim::Time> hungry_since;
  std::map<sim::ProcessId, sim::Time> eating_since;
  for (const dining::TraceEvent& ev : trace.events()) {
    switch (ev.kind) {
      case dining::TraceEventKind::kBecameHungry:
        hungry_since[ev.process] = ev.at;
        em.seen_tid(ev.process);
        break;
      case dining::TraceEventKind::kStartEating: {
        const auto it = hungry_since.find(ev.process);
        if (it != hungry_since.end()) {
          em.span(it->second, ev.at - it->second, ev.process, "hungry", "session");
          hungry_since.erase(it);
        }
        eating_since[ev.process] = ev.at;
        break;
      }
      case dining::TraceEventKind::kStopEating: {
        const auto it = eating_since.find(ev.process);
        if (it != eating_since.end()) {
          em.span(it->second, ev.at - it->second, ev.process, "eat", "session");
          eating_since.erase(it);
        }
        break;
      }
      case dining::TraceEventKind::kCrashed: {
        em.instant(ev.at, ev.process, "CRASH", "crash");
        // A crash cuts any open episode short at the crash time.
        auto h = hungry_since.find(ev.process);
        if (h != hungry_since.end()) {
          em.span(h->second, ev.at - h->second, ev.process, "hungry", "session");
          hungry_since.erase(h);
        }
        auto e = eating_since.find(ev.process);
        if (e != eating_since.end()) {
          em.span(e->second, ev.at - e->second, ev.process, "eat", "session");
          eating_since.erase(e);
        }
        break;
      }
      default:
        break;  // doorway + network-fault records: not session boundaries
    }
  }
  // Clip episodes still open at the horizon.
  const sim::Time horizon = trace.end_time();
  for (const auto& [p, since] : hungry_since) {
    em.span(since, horizon - since, p, "hungry", "session");
  }
  for (const auto& [p, since] : eating_since) {
    em.span(since, horizon - since, p, "eat", "session");
  }
}

void render_counters(const std::vector<CounterSample>& counters, Emitter& em) {
  for (const CounterSample& c : counters) {
    char args[64];
    std::snprintf(args, sizeof(args), "\"args\":{\"value\":%.6g}", c.value);
    em.event("C", c.at, 0, c.track, "counter", args);
  }
}

}  // namespace

std::string chrome_trace_json(const sim::EventLog* log, const dining::Trace* trace,
                              const PerfettoOptions& opts) {
  return chrome_trace_json(log, trace, std::vector<CounterSample>{}, opts);
}

std::string chrome_trace_json(const sim::EventLog* log, const dining::Trace* trace,
                              const std::vector<CounterSample>& counters,
                              const PerfettoOptions& opts) {
  Emitter em;
  if (opts.sessions && trace != nullptr) render_sessions(*trace, em);
  if (opts.message_flows && log != nullptr) render_log(*log, em);
  render_counters(counters, em);
  return em.finish();
}

}  // namespace ekbd::obs
