#include "obs/telemetry.hpp"

#include <string>

#include "net/reliable_transport.hpp"

namespace ekbd::obs {

const char* layer_name(sim::MsgLayer layer) {
  switch (layer) {
    case sim::MsgLayer::kDining: return "dining";
    case sim::MsgLayer::kDetector: return "detector";
    case sim::MsgLayer::kOther: return "other";
    case sim::MsgLayer::kTransport: return "transport";
  }
  return "?";
}

void attach_simulator_metrics(sim::Simulator& sim, MetricsRegistry& reg) {
  sim::SimMetrics m;
  m.events = &reg.counter("sim.events");
  m.sends = &reg.counter("sim.sends");
  m.queue_depth = &reg.gauge("sim.queue_depth");
  m.slab_live = &reg.gauge("sim.slab_live");
  sim.set_metrics(m);
}

void collect_event_log_metrics(const sim::EventLog& log, MetricsRegistry& reg) {
  reg.counter("log.events").value = log.size();
  reg.counter("log.dropped").value = log.dropped();
}

void collect_network_metrics(const sim::Network& net, MetricsRegistry& reg) {
  for (int li = 0; li < sim::kNumMsgLayers; ++li) {
    const auto layer = static_cast<sim::MsgLayer>(li);
    reg.counter("net.sent", layer_name(layer)).value = net.total_sent(layer);
    net.for_each_pair(layer, [&](sim::ProcessId a, sim::ProcessId b,
                                 const sim::ChannelStats& cs) {
      const std::string label = std::string(layer_name(layer)) + "/p" + std::to_string(a) +
                                "-p" + std::to_string(b);
      Gauge& g = reg.gauge("net.in_transit", label);
      g.value = cs.in_transit;
      g.high_water = cs.max_in_transit;
      reg.counter("net.pair_sent", label).value = cs.total;
    });
  }
}

void collect_transport_metrics(const net::ReliableTransport& transport,
                               MetricsRegistry& reg) {
  reg.counter("arq.logical_sends").value = transport.logical_sends();
  reg.counter("arq.logical_deliveries").value = transport.logical_deliveries();
  reg.counter("arq.physical_data_sends").value = transport.physical_data_sends();
  reg.counter("arq.physical_ack_sends").value = transport.physical_ack_sends();
  reg.counter("arq.retransmissions").value = transport.retransmissions();
  reg.counter("arq.dup_suppressed").value = transport.duplicates_suppressed();
  reg.counter("arq.abandoned").value = transport.abandoned_to_dead();
  reg.gauge("arq.in_flight").set(static_cast<std::int64_t>(transport.logical_in_flight()));
  reg.gauge("arq.backoff_peak").set(static_cast<std::int64_t>(transport.max_rto_reached()));
}

void collect_mc_metrics(std::uint64_t nodes_executed, std::uint64_t sleep_pruned,
                        double wall_seconds, MetricsRegistry& reg) {
  reg.counter("mc.nodes_executed").value = nodes_executed;
  reg.counter("mc.sleep_pruned").value = sleep_pruned;
  const double rate = wall_seconds > 0.0 ? static_cast<double>(nodes_executed) / wall_seconds
                                         : 0.0;
  reg.gauge("mc.states_per_sec").set(static_cast<std::int64_t>(rate));
  const std::uint64_t offered = nodes_executed + sleep_pruned;
  const std::int64_t pct =
      offered == 0 ? 0 : static_cast<std::int64_t>(100 * sleep_pruned / offered);
  reg.gauge("mc.sleep_hit_rate_pct").set(pct);
}

}  // namespace ekbd::obs
