#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ekbd::obs::json {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::num_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan; telemetry never should
  // Integral fast path: the overwhelming majority of telemetry numbers
  // (counts, ticks) are integers — print them as such.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest form that round-trips: %.15g first (usually enough), %.17g
  // when it is not.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  bool ok = true;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, lit, n) != 0) return false;
    p += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    Value v;
    if (p >= end) {
      ok = false;
      return v;
    }
    const char c = *p;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (literal("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (literal("null")) return v;
    return parse_number();
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      ok = false;
      return out;
    }
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) {
          ok = false;
          return out;
        }
        const char e = *p++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end - p < 4) {
              ok = false;
              return out;
            }
            char hex[5] = {p[0], p[1], p[2], p[3], 0};
            p += 4;
            const long code = std::strtol(hex, nullptr, 16);
            // Telemetry strings are ASCII; anything else degrades to '?'
            // rather than growing a full UTF-16 decoder here.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            ok = false;
            return out;
        }
      } else {
        out += c;
      }
    }
    if (!consume('"')) ok = false;
    return out;
  }

  Value parse_number() {
    Value v;
    v.kind = Value::Kind::kNumber;
    char* after = nullptr;
    v.number = std::strtod(p, &after);
    if (after == p || after > end) {
      ok = false;
      return v;
    }
    p = after;
    return v;
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.arr.push_back(parse_value());
      if (!ok) return v;
      if (consume(']')) return v;
      if (!consume(',')) {
        ok = false;
        return v;
      }
    }
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (!ok || !consume(':')) {
        ok = false;
        return v;
      }
      v.obj.emplace_back(std::move(key), parse_value());
      if (!ok) return v;
      if (consume('}')) return v;
      if (!consume(',')) {
        ok = false;
        return v;
      }
    }
  }
};

}  // namespace

std::optional<Value> parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  Value v = parser.parse_value();
  parser.skip_ws();
  if (!parser.ok || parser.p != parser.end) return std::nullopt;
  return v;
}

}  // namespace ekbd::obs::json
