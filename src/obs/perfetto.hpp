/// \file perfetto.hpp
/// Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
///
/// Two sources, both optional:
///
///  * the simulator's `EventLog` — every message becomes a pair of tiny
///    slices (send on the sender's track, deliver on the recipient's)
///    connected by a flow arrow keyed on the message's global seq;
///    losses, drops and adversary duplicates become instants;
///  * the dining `Trace` — every hungry→eat session becomes a "hungry"
///    span and every eat→exit episode an "eat" span on the process's
///    track; crashes become instants and cut open spans short.
///
/// One virtual-time tick maps to one trace microsecond (the formats have
/// no "tick" unit); all times are the simulator's virtual clock.
#pragma once

#include <string>
#include <vector>

#include "dining/trace.hpp"
#include "sim/event_log.hpp"

namespace ekbd::obs {

struct PerfettoOptions {
  bool message_flows = true;  ///< render EventLog messages as flow events
  bool sessions = true;       ///< render hungry/eat sessions as spans
};

/// One point on a named counter track ("C"-phase trace event): the live
/// telemetry loop samples per-shard ExecutorStats / latency quantiles at
/// each snapshot and the exporter turns every sample into a step on the
/// track's staircase graph.
struct CounterSample {
  sim::Time at = 0;   ///< tick timestamp (one tick = one trace µs)
  std::string track;  ///< counter track name, e.g. "shard0/runs"
  double value = 0.0;
};

/// Render `log` and/or `trace` (either may be nullptr) as one Chrome
/// trace-event JSON document: `{"traceEvents":[...]}`.
[[nodiscard]] std::string chrome_trace_json(const sim::EventLog* log,
                                            const dining::Trace* trace,
                                            const PerfettoOptions& opts = {});

/// Same, plus counter tracks from periodic samples.
[[nodiscard]] std::string chrome_trace_json(const sim::EventLog* log,
                                            const dining::Trace* trace,
                                            const std::vector<CounterSample>& counters,
                                            const PerfettoOptions& opts = {});

}  // namespace ekbd::obs
