#include "obs/metrics.hpp"

#include <cassert>

#include "obs/json.hpp"

namespace ekbd::obs {

// -------------------------------------------------------------- Histogram --

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)) {
  assert(hi > lo && "histogram range must be non-empty");
  assert(bins > 0 && "histogram needs at least one bucket");
  buckets_.assign(bins == 0 ? 1 : bins, 0);
}

void Histogram::add(double x) {
  ++count_;
  sum_ += x;
  std::size_t i;
  if (x < lo_) {
    i = 0;  // clamp: counts/sum stay exact, only the bucket is approximate
    ++under_;
  } else {
    const auto raw = static_cast<std::size_t>((x - lo_) / width_);
    if (raw >= buckets_.size()) {
      i = buckets_.size() - 1;
      ++over_;
    } else {
      i = raw;
    }
  }
  ++buckets_[i];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The ceil(q·count)-th sample, 1-based; q=0 degenerates to the first.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return (bucket_lo(i) + bucket_hi(i)) / 2.0;
  }
  return (bucket_lo(buckets_.size() - 1) + hi_) / 2.0;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return i + 1 == buckets_.size() ? hi_ : lo_ + width_ * static_cast<double>(i + 1);
}

void Histogram::add_bulk(double x, std::uint64_t k) {
  count_ += k;
  std::size_t i;
  if (x < lo_) {
    i = 0;
    under_ += k;
  } else {
    const auto raw = static_cast<std::size_t>((x - lo_) / width_);
    if (raw >= buckets_.size()) {
      i = buckets_.size() - 1;
      over_ += k;
    } else {
      i = raw;
    }
  }
  buckets_[i] += k;
}

bool Histogram::merge(const Histogram& other) {
  if (lo_ == other.lo_ && hi_ == other.hi_ && buckets_.size() == other.buckets_.size()) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    under_ += other.under_;
    over_ += other.over_;
    return true;
  }
  // Mismatched shapes (shard-local histograms sized independently, or a
  // snapshot from an older config): every source bucket is re-added at
  // its midpoint. Clamped source samples already sit in the source's edge
  // buckets, so their midpoints carry them along.
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    const std::uint64_t k = other.buckets_[i];
    if (k == 0) continue;
    add_bulk(0.5 * (other.bucket_lo(i) + other.bucket_hi(i)), k);
  }
  sum_ += other.sum_;
  return false;
}

std::string Histogram::to_json() const {
  std::string out = "{\"lo\":" + json::format_double(lo_) +
                    ",\"hi\":" + json::format_double(hi_) +
                    ",\"count\":" + std::to_string(count_) +
                    ",\"sum\":" + json::format_double(sum_) +
                    ",\"under\":" + std::to_string(under_) +
                    ",\"over\":" + std::to_string(over_) + ",\"buckets\":[";
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(buckets_[i]);
  }
  out += "]}";
  return out;
}

std::optional<Histogram> histogram_from_json(const std::string& text) {
  const std::optional<json::Value> doc = json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const json::Value* buckets = doc->find("buckets");
  if (buckets == nullptr || !buckets->is_array() || buckets->arr.empty()) {
    return std::nullopt;
  }
  const double lo = doc->num_or("lo", 0.0);
  const double hi = doc->num_or("hi", 0.0);
  if (!(hi > lo)) return std::nullopt;
  Histogram h(lo, hi, buckets->arr.size());
  for (std::size_t i = 0; i < buckets->arr.size(); ++i) {
    if (!buckets->arr[i].is_number()) return std::nullopt;
    h.buckets_[i] = static_cast<std::uint64_t>(buckets->arr[i].number);
  }
  h.count_ = static_cast<std::uint64_t>(doc->num_or("count", 0.0));
  h.sum_ = doc->num_or("sum", 0.0);
  // "under"/"over" default to 0 so pre-existing snapshots still load.
  h.under_ = static_cast<std::uint64_t>(doc->num_or("under", 0.0));
  h.over_ = static_cast<std::uint64_t>(doc->num_or("over", 0.0));
  return h;
}

// -------------------------------------------------------- MetricsRegistry --

Counter& MetricsRegistry::counter(const std::string& name, const std::string& label) {
  return counters_[Key{name, label}];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& label) {
  return gauges_[Key{name, label}];
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& label,
                                      double lo, double hi, std::size_t bins) {
  auto it = histograms_.find(Key{name, label});
  if (it == histograms_.end()) {
    it = histograms_.emplace(Key{name, label}, Histogram(lo, hi, bins)).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const std::string& label) const {
  const auto it = counters_.find(Key{name, label});
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const std::string& label) const {
  const auto it = gauges_.find(Key{name, label});
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const std::string& label) const {
  const auto it = histograms_.find(Key{name, label});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + json::quote(key.first) + ",\"label\":" + json::quote(key.second) +
           ",\"value\":" + std::to_string(c.value) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + json::quote(key.first) + ",\"label\":" + json::quote(key.second) +
           ",\"value\":" + std::to_string(g.value) + ",\"max\":" + std::to_string(g.high_water) +
           "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + json::quote(key.first) + ",\"label\":" + json::quote(key.second) +
           ",\"data\":" + h.to_json() + "}";
  }
  out += "]}";
  return out;
}

}  // namespace ekbd::obs
