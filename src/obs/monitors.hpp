/// \file monitors.hpp
/// Online invariant monitors: streaming observers for the paper's safety
/// and resource properties, running *during* the simulation.
///
/// Each monitor mirrors one post-hoc verdict incrementally:
///
///  * ForkUniquenessMonitor (P1) — at most one fork per undirected edge
///    in transit, from the simulator's event stream (EventSink);
///  * ExclusionMonitor (P2/◇WX) — the exact streaming transcription of
///    dining::check_exclusion, from the scheduling trace (TraceObserver);
///  * ChannelBoundMonitor (P6) — per-edge in-flight occupancy vs. the
///    paper's ≤4 bound, from the network books (NetworkWatch);
///  * QuiescenceMonitor (P7) — last-send times and post-crash sends per
///    target, from the same watch.
///
/// The intended deployment is a MonitorHub wired to a Scenario
/// (Config::observability); `MonitorHub::agreement_failures` then
/// cross-checks every monitor against the post-hoc checkers/books — the
/// fuzz suite runs that comparison on every run, which is what makes the
/// online verdicts trustworthy.
///
/// Monitors observe and never mutate: none of them re-enters the
/// simulator, the network or the trace.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "dining/trace.hpp"
#include "graph/graph.hpp"
#include "sim/event_log.hpp"
#include "sim/network.hpp"

namespace ekbd::obs {

/// P1: per undirected edge, at most one core::Fork in transit. Counts
/// fork sends/deliveries from the logged event stream; a second fork
/// entering a channel that already holds one is a violation.
class ForkUniquenessMonitor final : public sim::EventSink {
 public:
  struct Violation {
    sim::Time at = 0;
    sim::ProcessId a = sim::kNoProcess;
    sim::ProcessId b = sim::kNoProcess;
    int in_transit = 0;  ///< forks in flight on the edge after the send
  };

  void on_event(const sim::LoggedEvent& ev) override;

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  /// Forks currently in transit on the undirected edge {a, b}.
  [[nodiscard]] int in_transit(sim::ProcessId a, sim::ProcessId b) const;
  [[nodiscard]] std::uint64_t fork_sends() const { return fork_sends_; }

 private:
  static std::uint64_t edge_key(sim::ProcessId a, sim::ProcessId b) {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return (lo << 32) | hi;
  }

  std::map<std::uint64_t, int> in_transit_;
  std::vector<Violation> violations_;
  std::uint64_t fork_sends_ = 0;
};

/// P2 (◇WX): streaming transcription of dining::check_exclusion — same
/// state machine, same violation records, fed one trace event at a time.
/// `report()` must equal check_exclusion's output elementwise on the
/// finished trace (the agreement check asserts exactly that).
class ExclusionMonitor final : public dining::TraceObserver {
 public:
  /// `g` is the *initial* graph; edge churn arrives as kEdgeAdded /
  /// kEdgeRemoved trace events and moves the same DynamicAdjacency
  /// overlay check_exclusion uses, so the two stay transcriptions.
  explicit ExclusionMonitor(const graph::ConflictGraph& g) : adj_(g) {}

  void on_trace_event(const dining::TraceEvent& ev) override;

  [[nodiscard]] const std::vector<dining::ExclusionViolation>& violations() const {
    return violations_;
  }
  /// Processes currently eating (monitor's live view).
  [[nodiscard]] std::size_t eating_now() const { return eating_.size(); }

 private:
  dining::DynamicAdjacency adj_;
  std::set<sim::ProcessId> eating_;
  std::vector<dining::ExclusionViolation> violations_;
};

/// P6: per-(layer, undirected pair) in-flight high-water marks, streamed
/// from the network books. Dining-layer pairs exceeding the paper's bound
/// of 4 are recorded as violations with the time the excess first
/// happened — something the post-hoc books cannot reconstruct.
class ChannelBoundMonitor final {
 public:
  struct Violation {
    sim::MsgLayer layer = sim::MsgLayer::kDining;
    sim::ProcessId a = sim::kNoProcess;
    sim::ProcessId b = sim::kNoProcess;
    int in_transit = 0;
    sim::Time at = 0;
  };

  /// The §7 bound for the dining layer.
  static constexpr int kDiningBound = 4;

  void on_high_water(sim::MsgLayer layer, sim::ProcessId from, sim::ProcessId to,
                     int in_transit, sim::Time at);

  /// High-water mark seen for the pair on `layer` (0 if no traffic).
  [[nodiscard]] int max_in_transit(sim::MsgLayer layer, sim::ProcessId a,
                                   sim::ProcessId b) const;
  /// Largest high-water mark over all pairs of `layer`.
  [[nodiscard]] int max_in_transit_any(sim::MsgLayer layer) const;
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }

 private:
  static std::uint64_t edge_key(sim::ProcessId a, sim::ProcessId b) {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return (lo << 32) | hi;
  }

  std::map<std::uint64_t, int> maxima_[sim::kNumMsgLayers];
  std::vector<Violation> violations_;
};

/// P7: streaming mirror of the network's quiescence books — last send
/// time and number of post-crash sends per (layer, target).
class QuiescenceMonitor final {
 public:
  void on_send(sim::MsgLayer layer, sim::ProcessId to, sim::Time at, bool target_crashed);

  [[nodiscard]] sim::Time last_send_to(sim::ProcessId target, sim::MsgLayer layer) const;
  [[nodiscard]] std::uint64_t sends_to_crashed(sim::ProcessId target,
                                               sim::MsgLayer layer) const;

 private:
  struct PerTarget {
    sim::Time last_send = -1;
    std::uint64_t after_crash = 0;
  };
  std::map<sim::ProcessId, PerTarget> per_target_[sim::kNumMsgLayers];
};

/// One object wearing all three observer hats, fanning out to the four
/// monitors. Wire it with:
///
///     sim.set_event_sink(&hub);
///     sim.network().set_watch(&hub);
///     harness.trace().set_observer(&hub);
///
/// (Scenario does exactly this when Config::observability is set.)
class MonitorHub final : public sim::EventSink,
                         public sim::NetworkWatch,
                         public dining::TraceObserver {
 public:
  explicit MonitorHub(const graph::ConflictGraph& g) : exclusion_(g) {}

  // EventSink
  void on_event(const sim::LoggedEvent& ev) override { forks_.on_event(ev); }
  // NetworkWatch
  void on_send(sim::MsgLayer layer, sim::ProcessId from, sim::ProcessId to, sim::Time at,
               bool target_crashed) override {
    (void)from;
    quiescence_.on_send(layer, to, at, target_crashed);
  }
  void on_high_water(sim::MsgLayer layer, sim::ProcessId from, sim::ProcessId to,
                     int in_transit, sim::Time at) override {
    channels_.on_high_water(layer, from, to, in_transit, at);
  }
  // TraceObserver
  void on_trace_event(const dining::TraceEvent& ev) override {
    exclusion_.on_trace_event(ev);
  }

  [[nodiscard]] const ForkUniquenessMonitor& forks() const { return forks_; }
  [[nodiscard]] const ExclusionMonitor& exclusion() const { return exclusion_; }
  [[nodiscard]] const ChannelBoundMonitor& channels() const { return channels_; }
  [[nodiscard]] const QuiescenceMonitor& quiescence() const { return quiescence_; }

  /// True when no monitor holds a violation.
  [[nodiscard]] bool clean() const {
    return forks_.violations().empty() && exclusion_.violations().empty() &&
           channels_.violations().empty();
  }

  /// Cross-check every monitor against the post-hoc sources of truth:
  /// the exclusion monitor against dining::check_exclusion (elementwise),
  /// the channel monitor against the network's per-pair high-water books,
  /// the quiescence monitor against last_send_to / sends_to_crashed, and
  /// fork uniqueness against P1 itself. Returns "" on full agreement,
  /// otherwise a newline-separated description of every mismatch. The
  /// fuzz suite calls this after every run.
  [[nodiscard]] std::string agreement_failures(const dining::Trace& trace,
                                               const graph::ConflictGraph& g,
                                               const sim::Network& net) const;

  /// Compact JSON summary of monitor verdicts for telemetry lines.
  [[nodiscard]] std::string to_json() const;

 private:
  ForkUniquenessMonitor forks_;
  ExclusionMonitor exclusion_;
  ChannelBoundMonitor channels_;
  QuiescenceMonitor quiescence_;
};

}  // namespace ekbd::obs
