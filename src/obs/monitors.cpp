#include "obs/monitors.hpp"

#include <cstdarg>
#include <cstdio>

namespace ekbd::obs {

// -------------------------------------------------- ForkUniquenessMonitor --

void ForkUniquenessMonitor::on_event(const sim::LoggedEvent& ev) {
  if (ev.payload != sim::kPayloadTagOf<core::Fork>) return;
  switch (ev.kind) {
    case sim::LoggedEvent::Kind::kSend:
    case sim::LoggedEvent::Kind::kDuplicate: {
      ++fork_sends_;
      int& n = in_transit_[edge_key(ev.from, ev.to)];
      ++n;
      if (n > 1) violations_.push_back(Violation{ev.at, ev.from, ev.to, n});
      break;
    }
    case sim::LoggedEvent::Kind::kDeliver:
    case sim::LoggedEvent::Kind::kDrop:
    case sim::LoggedEvent::Kind::kLoss:
    case sim::LoggedEvent::Kind::kPartitionLoss:
      --in_transit_[edge_key(ev.from, ev.to)];
      break;
    case sim::LoggedEvent::Kind::kTimer:
    case sim::LoggedEvent::Kind::kCrash:
    case sim::LoggedEvent::Kind::kRecover:
      break;  // no payload travels
  }
}

int ForkUniquenessMonitor::in_transit(sim::ProcessId a, sim::ProcessId b) const {
  const auto it = in_transit_.find(edge_key(a, b));
  return it == in_transit_.end() ? 0 : it->second;
}

// ------------------------------------------------------- ExclusionMonitor --

void ExclusionMonitor::on_trace_event(const dining::TraceEvent& ev) {
  // The exact state machine of dining::check_exclusion, one event at a
  // time — elementwise agreement with the post-hoc checker depends on the
  // two staying transcriptions of each other.
  switch (ev.kind) {
    case dining::TraceEventKind::kStartEating: {
      adj_.for_each_neighbor(ev.process, [&](const sim::ProcessId q) {
        if (eating_.count(q) != 0) {
          violations_.push_back(dining::ExclusionViolation{ev.at, ev.process, q});
        }
      });
      eating_.insert(ev.process);
      break;
    }
    case dining::TraceEventKind::kStopEating:
    case dining::TraceEventKind::kCrashed:
      eating_.erase(ev.process);
      break;
    default:
      adj_.apply(ev);  // edge churn moves the adjacency overlay
      break;
  }
}

// ---------------------------------------------------- ChannelBoundMonitor --

void ChannelBoundMonitor::on_high_water(sim::MsgLayer layer, sim::ProcessId from,
                                        sim::ProcessId to, int in_transit, sim::Time at) {
  maxima_[static_cast<int>(layer)][edge_key(from, to)] = in_transit;
  if (layer == sim::MsgLayer::kDining && in_transit > kDiningBound) {
    violations_.push_back(Violation{layer, from, to, in_transit, at});
  }
}

int ChannelBoundMonitor::max_in_transit(sim::MsgLayer layer, sim::ProcessId a,
                                        sim::ProcessId b) const {
  const auto& m = maxima_[static_cast<int>(layer)];
  const auto it = m.find(edge_key(a, b));
  return it == m.end() ? 0 : it->second;
}

int ChannelBoundMonitor::max_in_transit_any(sim::MsgLayer layer) const {
  int best = 0;
  for (const auto& [key, v] : maxima_[static_cast<int>(layer)]) {
    if (v > best) best = v;
  }
  return best;
}

// ------------------------------------------------------ QuiescenceMonitor --

void QuiescenceMonitor::on_send(sim::MsgLayer layer, sim::ProcessId to, sim::Time at,
                                bool target_crashed) {
  PerTarget& pt = per_target_[static_cast<int>(layer)][to];
  pt.last_send = at;
  if (target_crashed) ++pt.after_crash;
}

sim::Time QuiescenceMonitor::last_send_to(sim::ProcessId target, sim::MsgLayer layer) const {
  const auto& m = per_target_[static_cast<int>(layer)];
  const auto it = m.find(target);
  return it == m.end() ? -1 : it->second.last_send;
}

std::uint64_t QuiescenceMonitor::sends_to_crashed(sim::ProcessId target,
                                                  sim::MsgLayer layer) const {
  const auto& m = per_target_[static_cast<int>(layer)];
  const auto it = m.find(target);
  return it == m.end() ? 0 : it->second.after_crash;
}

// ------------------------------------------------------------- MonitorHub --

namespace {

void fail(std::string& out, const char* fmt, ...) {
  char buf[192];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (!out.empty()) out += '\n';
  out += buf;
}

const char* layer_name(sim::MsgLayer layer) {
  switch (layer) {
    case sim::MsgLayer::kDining: return "dining";
    case sim::MsgLayer::kDetector: return "detector";
    case sim::MsgLayer::kOther: return "other";
    case sim::MsgLayer::kTransport: return "transport";
  }
  return "?";
}

}  // namespace

std::string MonitorHub::agreement_failures(const dining::Trace& trace,
                                           const graph::ConflictGraph& g,
                                           const sim::Network& net) const {
  std::string out;

  // P2: elementwise against the post-hoc checker.
  const dining::ExclusionReport post = dining::check_exclusion(trace, g);
  if (post.violations.size() != exclusion_.violations().size()) {
    fail(out, "P2: monitor saw %zu exclusion violations, checker %zu",
         exclusion_.violations().size(), post.violations.size());
  } else {
    for (std::size_t i = 0; i < post.violations.size(); ++i) {
      const auto& m = exclusion_.violations()[i];
      const auto& c = post.violations[i];
      if (m.at != c.at || m.a != c.a || m.b != c.b) {
        fail(out, "P2: violation %zu differs (monitor t=%lld p%d/p%d, checker t=%lld p%d/p%d)",
             i, static_cast<long long>(m.at), m.a, m.b, static_cast<long long>(c.at), c.a,
             c.b);
      }
    }
  }

  // P6: per-pair high-water marks against the network books, both ways.
  for (int li = 0; li < sim::kNumMsgLayers; ++li) {
    const auto layer = static_cast<sim::MsgLayer>(li);
    net.for_each_pair(layer, [&](sim::ProcessId a, sim::ProcessId b,
                                 const sim::ChannelStats& cs) {
      const int seen = channels_.max_in_transit(layer, a, b);
      if (seen != cs.max_in_transit) {
        fail(out, "P6: %s p%d-p%d max in transit: monitor %d, network %d", layer_name(layer),
             a, b, seen, cs.max_in_transit);
      }
    });
    if (channels_.max_in_transit_any(layer) != net.max_in_transit_any(layer)) {
      fail(out, "P6: %s global max in transit: monitor %d, network %d", layer_name(layer),
           channels_.max_in_transit_any(layer), net.max_in_transit_any(layer));
    }
  }

  // P7: quiescence books per (target, layer).
  for (std::size_t p = 0; p < g.size(); ++p) {
    const auto target = static_cast<sim::ProcessId>(p);
    for (int li = 0; li < sim::kNumMsgLayers; ++li) {
      const auto layer = static_cast<sim::MsgLayer>(li);
      if (quiescence_.last_send_to(target, layer) != net.last_send_to(target, layer)) {
        fail(out, "P7: %s last send to p%d: monitor %lld, network %lld", layer_name(layer),
             target, static_cast<long long>(quiescence_.last_send_to(target, layer)),
             static_cast<long long>(net.last_send_to(target, layer)));
      }
      if (quiescence_.sends_to_crashed(target, layer) != net.sends_to_crashed(target, layer)) {
        fail(out, "P7: %s sends to crashed p%d: monitor %llu, network %llu",
             layer_name(layer), target,
             static_cast<unsigned long long>(quiescence_.sends_to_crashed(target, layer)),
             static_cast<unsigned long long>(net.sends_to_crashed(target, layer)));
      }
    }
  }

  // P1 has no post-hoc counterpart to diff against — the invariant itself
  // is the oracle: under the paper's model (FIFO reliable channels, or the
  // ARQ shim recreating them) no edge ever carries two forks.
  for (const auto& v : forks_.violations()) {
    fail(out, "P1: %d forks in transit on p%d-p%d at t=%lld", v.in_transit, v.a, v.b,
         static_cast<long long>(v.at));
  }

  return out;
}

std::string MonitorHub::to_json() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"p1_violations\":%zu,\"p2_violations\":%zu,\"p6_violations\":%zu,"
                "\"p6_max_dining\":%d,\"fork_sends\":%llu,\"clean\":%s}",
                forks_.violations().size(), exclusion_.violations().size(),
                channels_.violations().size(),
                channels_.max_in_transit_any(sim::MsgLayer::kDining),
                static_cast<unsigned long long>(forks_.fork_sends()),
                clean() ? "true" : "false");
  return buf;
}

}  // namespace ekbd::obs
